"""Setuptools shim.

The environment this reproduction targets has no ``wheel`` package and no
network access, so PEP 517 editable installs are unavailable; this shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
