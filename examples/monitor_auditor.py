"""Monitoring an unenforceable constraint with Flag/Tb (Sections 6.3, 7.1).

Two legacy feeds hold copies of the same value; the CM can subscribe to
their update messages but can write neither.  The best it can do is
*monitor* the copy constraint: the CM-Shell at the application's site keeps
caches plus the auxiliary items ``Flag`` (are the copies believed equal?)
and ``Tb`` (since when?), and offers::

    ((Flag = true) ∧ (Tb = s))@t  =>  (X = Y)@@[s, t - κ]

An auditing application then uses the guarantee the way Section 7.1
describes: given a past query's timestamp, it reads Flag/Tb through the
shell and decides whether the query saw a consistent state or must be
recomputed.

Run:  python examples/monitor_auditor.py
"""

from repro import (
    CMRID,
    ConstraintManager,
    CopyConstraint,
    DataItemRef,
    InterfaceKind,
    Scenario,
    seconds,
)
from repro.apps import AuditorApp
from repro.core.guarantees.monitor import MonitorGuarantee
from repro.core.timebase import format_ticks
from repro.ris.legacy import LegacySystem


def build():
    """Wire both tickers and install the monitor strategy."""
    scenario = Scenario(seed=13)
    cm = ConstraintManager(scenario)

    feed_x = LegacySystem("ticker-x")
    rid_x = (
        CMRID("legacy", "ticker-x")
        .bind("X", key_prefix="px")
        .offer("X", InterfaceKind.NOTIFY, bound_seconds=1.0)
    )
    cm.site("site-x").source(feed_x, rid_x)

    feed_y = LegacySystem("ticker-y")
    rid_y = (
        CMRID("legacy", "ticker-y")
        .bind("Y", key_prefix="py")
        .offer("Y", InterfaceKind.NOTIFY, bound_seconds=1.0)
    )
    cm.site("site-y").source(feed_y, rid_y)

    constraint = cm.declare(CopyConstraint("X", "Y"))
    suggestions = cm.suggest(constraint, rule_delay=seconds(0.5))
    suggestion = suggestions[0]
    guarantee = suggestion.guarantees[0]
    assert isinstance(guarantee, MonitorGuarantee)
    installed = cm.install(constraint, suggestion)
    return cm, installed, guarantee


def build_for_lint():
    """CM-Lint hook: the wired monitor before any feed activity."""
    return build()[0]


def main() -> None:
    cm, installed, guarantee = build()
    scenario = cm.scenario
    print("suggested:", installed.strategy.name)
    print("guarantee:", guarantee)

    # An external replication process keeps Y roughly in sync with X; the
    # CM neither controls nor trusts it — it just watches.
    for index in range(12):
        at = 10 + index * 30
        value = 100.0 + index
        scenario.sim.at(
            seconds(at), lambda v=value: cm.spontaneous_write("X", (), v)
        )
        lag = 20.0 if index == 5 else 0.8  # one long divergence
        scenario.sim.at(
            seconds(at + lag),
            lambda v=value: cm.spontaneous_write("Y", (), v),
        )

    flag_ref = DataItemRef(installed.strategy.metadata["flag_family"])
    tb_ref = DataItemRef(installed.strategy.metadata["tb_family"])
    auditor = AuditorApp(cm.shell("site-y"), flag_ref, tb_ref, guarantee.kappa)
    query_times = [seconds(t) for t in (50, 165, 300)]
    for ask_at, query_time in zip((seconds(60), seconds(175), seconds(320)),
                                  query_times):
        scenario.sim.at(
            ask_at, lambda q=query_time: auditor.audit_query(q)
        )

    cm.run(until=seconds(420))

    print("\naudits (the application's use of the guarantee):")
    for record in auditor.audits:
        print(
            f"  query at {format_ticks(record.query_time)} -> "
            f"{record.verdict.value} (Flag={record.flag}, "
            f"Tb={record.tb if record.tb else '-'})"
        )

    print("\nsoundness of every Flag=true claim over the whole run:")
    print(" ", guarantee.check(scenario.trace))


if __name__ == "__main__":
    main()


#: See e6_monitor: the two monitor rules race on the shared flag by
#: design; either write order is acceptable to the auditor.
LINT_SUPPRESS = ("CM501:monitor_X",)
