"""The paper's Stanford scenario (Section 4.3): four heterogeneous sources.

"The databases include the Stanford 'whois' database, the Computer Science
Department's custom personnel database ('lookup'), the database group's
Sybase database, and a bibliographic database.  There are copy constraints
for different personnel data such as phone numbers, addresses, etc., stored
in the different databases.  We also have referential integrity constraints,
such as one that specifies that every paper authored by a Stanford database
researcher as reported by the bibliographic database must also be mentioned
in the Sybase database."

This example wires up all four source kinds:

- ``whois``        — lookup-only directory (phones): constraints against it
                     can only be managed by polling;
- ``lookup``       — an object store with a change feed (emails): supports a
                     notify interface, so propagation applies;
- ``sybase``       — a relational database holding the group's master copy;
- ``biblio``       — a read-only bibliographic server: the referential
                     constraint against it cannot be *enforced* at all, only
                     monitored — the Section 6.2 fallback.

Run:  python examples/personnel_sync.py
"""

from repro import (
    CMRID,
    ConstraintManager,
    CopyConstraint,
    InterfaceKind,
    ReferentialConstraint,
    Scenario,
    hours,
    seconds,
)
from repro.ris.bibliodb import BiblioDatabase
from repro.ris.objectstore import ObjectStore
from repro.ris.relational import RelationalDatabase
from repro.ris.whois import WhoisDirectory

RESEARCHERS = ["chawathe", "garcia", "widom"]


def build() -> tuple[ConstraintManager, dict]:
    cm = ConstraintManager(Scenario(seed=7))

    whois = WhoisDirectory("stanford-whois")
    for name in RESEARCHERS:
        whois.admin_update(name, phone=f"650-723-{hash(name) % 9000 + 1000}")
    rid_whois = (
        CMRID("whois", "stanford-whois")
        .bind("whois_phone", params=("n",), field="phone")
        .offer("whois_phone", InterfaceKind.READ, bound_seconds=1.0)
    )
    cm.site("whois-site").source(whois, rid_whois)

    lookup = ObjectStore("cs-lookup")
    lookup.define_class("Person", {"login": "str", "email": "str"})
    for name in RESEARCHERS:
        lookup.create("Person", {"login": name, "email": f"{name}@cs"})
    rid_lookup = (
        CMRID("object", "cs-lookup")
        .bind(
            "lookup_email",
            params=("n",),
            class_name="Person",
            attribute="email",
            key_attribute="login",
        )
        .offer("lookup_email", InterfaceKind.NOTIFY, bound_seconds=2.0)
        .offer("lookup_email", InterfaceKind.READ, bound_seconds=1.0)
    )
    cm.site("lookup-site").source(lookup, rid_lookup)

    sybase = RelationalDatabase("dbgroup")
    sybase.execute(
        "CREATE TABLE people (login TEXT PRIMARY KEY, phone TEXT, email TEXT)"
    )
    sybase.execute(
        "CREATE TABLE papers (paperid TEXT PRIMARY KEY, title TEXT)"
    )
    rid_sybase = (
        CMRID("relational", "dbgroup")
        .bind(
            "master_phone",
            params=("n",),
            table="people",
            key_column="login",
            value_column="phone",
        )
        .bind(
            "master_email",
            params=("n",),
            table="people",
            key_column="login",
            value_column="email",
        )
        .bind(
            "group_paper",
            params=("i",),
            table="papers",
            key_column="paperid",
            value_column="title",
        )
        .offer("master_phone", InterfaceKind.WRITE, bound_seconds=2.0)
        .offer("master_phone", InterfaceKind.NO_SPONTANEOUS_WRITE)
        .offer("master_email", InterfaceKind.WRITE, bound_seconds=2.0)
        .offer("master_email", InterfaceKind.NO_SPONTANEOUS_WRITE)
        .offer("group_paper", InterfaceKind.READ, bound_seconds=1.0)
    )
    cm.site("dbgroup-site").source(sybase, rid_sybase)

    biblio = BiblioDatabase("folio")
    rid_biblio = (
        CMRID("bibliographic", "folio")
        .bind("bib_paper", params=("i",), field="title")
        .offer("bib_paper", InterfaceKind.READ, bound_seconds=3.0)
    )
    cm.site("library-site").source(biblio, rid_biblio)

    sources = {
        "whois": whois,
        "lookup": lookup,
        "sybase": sybase,
        "biblio": biblio,
    }
    return cm, sources


def main() -> None:
    cm, sources = build()
    print("interface survey across the federation:")
    print(cm.interfaces().describe())

    # Copy constraint 1: whois phones -> master copy.  whois is lookup-only,
    # so the toolkit can only offer polling.
    phones = cm.declare(
        CopyConstraint("whois_phone", "master_phone", params=("n",))
    )
    phone_suggestions = cm.suggest(phones, polling_period=seconds(30))
    print(f"\nphones: {len(phone_suggestions)} applicable strategies")
    print(f"  chosen: {phone_suggestions[0].strategy.name}")
    cm.install(phones, phone_suggestions[0])

    # Copy constraint 2: lookup emails -> master copy.  The object store has
    # a change feed, so update propagation applies (with guarantee (2)).
    # The fluent chain declares, surveys, picks and installs in one go.
    emails = cm.constraint(
        CopyConstraint("lookup_email", "master_email", params=("n",))
    ).strategy("propagation")
    print(
        f"emails: installed {emails.installed.strategy.name} "
        f"({len(emails.guarantees)} guarantees)"
    )

    # Referential constraint: papers in the bibliographic server must be in
    # the group database.  The library is read-only, so NO strategy can
    # enforce this; the toolkit offers nothing and we fall back to
    # monitoring it, as Section 6.2 prescribes.
    papers = cm.declare(
        ReferentialConstraint("bib_paper", "group_paper", grace=hours(24))
    )
    paper_suggestions = cm.suggest(papers)
    print(
        f"papers: {len(paper_suggestions)} applicable strategies "
        f"(the library is read-only -> monitor only)"
    )

    # --- spontaneous activity across the campus ---------------------------
    sim = cm.scenario.sim
    sim.at(
        seconds(10),
        lambda: cm.spontaneous_write("whois_phone", ("widom",), "650-723-9999"),
    )
    sim.at(
        seconds(25),
        lambda: cm.spontaneous_write(
            "lookup_email", ("chawathe",), "chaw@db.stanford"
        ),
    )
    sim.at(
        seconds(40),
        lambda: cm.spontaneous_write(
            "bib_paper", ("icde96-cm",), "A Toolkit for Constraint Management"
        ),
    )
    # The group database catalogues the paper a little later (spontaneously,
    # by a grad student); until then the referential constraint is violated.
    sim.at(
        seconds(300),
        lambda: sources["sybase"].execute(
            "INSERT INTO papers (paperid, title) VALUES "
            "('icde96-cm', 'A Toolkit for Constraint Management')"
        ),
    )
    cm.run(until=seconds(600))

    print("\nmaster copy after synchronization:")
    for row in sources["sybase"].query(
        "SELECT login, phone, email FROM people ORDER BY login"
    ):
        print(f"  {row}")

    print("\nissued guarantees:")
    for report in cm.check_guarantees().values():
        print(f"  {report}")

    # Monitoring the unenforceable referential constraint from the trace.
    # (The catalogue insert above bypassed the CM entirely — exactly the
    # loosely-coupled reality — so we check existence via direct reads.)
    in_biblio = sources["biblio"].exists("icde96-cm")
    in_group = bool(
        sources["sybase"].query(
            "SELECT paperid FROM papers WHERE paperid = 'icde96-cm'"
        )
    )
    print(
        f"\nreferential monitor: paper in library={in_biblio}, "
        f"in group DB={in_group} -> "
        f"{'consistent' if in_biblio <= in_group else 'VIOLATION (pending)'}"
    )


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: the federation with both copy constraints installed."""
    cm, __ = build()
    phones = cm.declare(
        CopyConstraint("whois_phone", "master_phone", params=("n",))
    )
    cm.install(phones, cm.suggest(phones, polling_period=seconds(30))[0])
    cm.constraint(
        CopyConstraint("lookup_email", "master_email", params=("n",))
    ).strategy("propagation")
    return cm
