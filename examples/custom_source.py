"""Extending the toolkit: a custom source, translator, and DSL strategy.

Section 4.1 of the paper: "the toolkit is extensible and can accommodate
custom interface and strategy descriptions written using our rule language."
This example exercises that path end to end:

1. a **custom raw source** not shipped with the library — a job-queue server
   whose native interface is enqueue/claim/inspect;
2. a **custom CM-Translator** subclass mapping item families onto it
   (the queue depth per job class);
3. a **custom strategy written in the rule DSL** — not taken from the
   catalog menu — that mirrors the queue depth into a relational operations
   dashboard and keeps a shell-private high-water mark:

       N(depth(c), b) -> [2] WR(dashboard_depth(c), b)
       N(depth(c), b) & Highwater(c) != b -> ...

4. hand-issued guarantees, checked against the trace like any menu entry.

Run:  python examples/custom_source.py
"""

from repro import (
    CMRID,
    CMTranslator,
    ConstraintManager,
    DataItemRef,
    InterfaceKind,
    Scenario,
    follows,
    parse_rules,
    seconds,
)
from repro.ris.base import Capability, RawInformationSource
from repro.ris.relational import RelationalDatabase


# --- 1. the custom raw source ------------------------------------------------


class JobQueueServer(RawInformationSource):
    """A queueing system: jobs are enqueued into named classes.

    Its native interface is nothing like a database: enqueue, claim, and a
    depth inspection call.  Listeners can subscribe to depth changes (the
    queue's admin feed).
    """

    kind = "job-queue"

    def __init__(self, name: str):
        super().__init__(name)
        self._queues: dict[str, list[str]] = {}
        self._listeners = []

    def capabilities(self) -> Capability:
        return Capability.READ | Capability.NOTIFY

    def subscribe(self, callback) -> None:
        self._listeners.append(callback)

    def _notify(self, job_class: str) -> None:
        depth = self.depth(job_class)
        for listener in self._listeners:
            listener(job_class, depth)

    def enqueue(self, job_class: str, job_id: str) -> None:
        self._queues.setdefault(job_class, []).append(job_id)
        self._notify(job_class)

    def claim(self, job_class: str) -> str | None:
        queue = self._queues.get(job_class, [])
        if not queue:
            return None
        job = queue.pop(0)
        self._notify(job_class)
        return job

    def depth(self, job_class: str) -> int:
        return len(self._queues.get(job_class, ()))

    def job_classes(self) -> list[str]:
        return sorted(self._queues)


# --- 2. the custom translator --------------------------------------------------


class JobQueueTranslator(CMTranslator):
    """Maps ``depth(c)`` item families onto a JobQueueServer."""

    kind = "job-queue"

    def __init__(self, source, rid, service=None):
        super().__init__(source, rid, service)
        self.queue: JobQueueServer = source

    def _native_read(self, ref: DataItemRef):
        return self.queue.depth(str(ref.args[0]))

    def _native_write(self, ref, value):  # the CM never writes a queue
        raise NotImplementedError("queues are updated by enqueue/claim only")

    def _native_enumerate(self, family: str):
        return [
            DataItemRef(family, (job_class,))
            for job_class in self.queue.job_classes()
        ]

    def _setup_native_notify(self, family: str) -> None:
        def on_depth_change(job_class: str, depth: int) -> None:
            if self._current_spontaneous is None:
                return
            self._deliver_notification(
                DataItemRef(family, (job_class,)),
                depth,
                self._current_spontaneous,
            )

        self.queue.subscribe(on_depth_change)


# --- 3. wire it up with a DSL-written strategy ------------------------------------


def build():
    """Wire the custom source, translator, and DSL strategy."""
    scenario = Scenario(seed=77)
    cm = ConstraintManager(scenario)

    queue = JobQueueServer("batch-queue")
    rid_queue = (
        CMRID("job-queue", "batch-queue")
        .bind("depth", params=("c",))
        .offer("depth", InterfaceKind.NOTIFY, bound_seconds=1.0)
        .offer("depth", InterfaceKind.READ, bound_seconds=1.0)
    )
    # A custom translator is attached directly (bypassing the standard
    # registry): the fluent .translator() registers it with the shell and
    # the location registry in one step.
    translator = JobQueueTranslator(queue, rid_queue)
    cm.site("queue-site").translator(translator)

    dashboard = RelationalDatabase("ops-dashboard")
    dashboard.execute(
        "CREATE TABLE queue_depths (class TEXT PRIMARY KEY, depth INTEGER)"
    )
    rid_dash = (
        CMRID("relational", "ops-dashboard")
        .bind(
            "dash_depth",
            params=("c",),
            table="queue_depths",
            key_column="class",
            value_column="depth",
        )
        .offer("dash_depth", InterfaceKind.WRITE, bound_seconds=1.0)
        .offer("dash_depth", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    cm.site("ops-site").source(dashboard, rid_dash)

    # The custom strategy, written in the rule language (Section 3.2):
    # mirror each depth change to the dashboard, and track a shell-private
    # high-water mark at the ops site.
    rules = parse_rules(
        """
        rule mirror:
            N(depth(c), b) -> [2] WR(dash_depth(c), b)
        rule highwater:
            N(depth(c), b) -> [2] (Highwater(c) == MISSING or b > Highwater(c)) ? W(Highwater(c), b)
        """
    )
    queue_site = cm.site("ops-site").private("Highwater").site("queue-site")
    for rule in rules:
        queue_site.rule(rule)  # installs, routes the RHS, hooks the notify

    # Hand-issued guarantee for the custom strategy: the dashboard only
    # shows depths the queue actually had ("follows").
    guarantee = follows("depth", "dash_depth")
    return cm, queue, translator, dashboard, guarantee


def build_for_lint():
    """CM-Lint hook: the custom wiring, before any queue activity."""
    return build()[0]


def main() -> None:
    cm, queue, translator, dashboard, guarantee = build()
    scenario = cm.scenario

    # Workload: spontaneous enqueue/claim activity.  Queue mutations go
    # through apply_spontaneous_write so the trace sees them; the helper
    # wraps the native calls.
    def spontaneous(operation) -> None:
        ref = DataItemRef("depth", (operation[1],))
        # Record Ws around the native mutation, like any local application.
        old = scenario.trace.current_value(ref)
        translator._current_spontaneous = scenario.trace.record(
            scenario.sim.now,
            "queue-site",
            __import__(
                "repro.core.events", fromlist=["spontaneous_write_desc"]
            ).spontaneous_write_desc(
                ref,
                old,
                queue.depth(operation[1]) + (1 if operation[0] == "enq" else -1),
            ),
        )
        try:
            if operation[0] == "enq":
                queue.enqueue(operation[1], f"job-{scenario.sim.now}")
            else:
                queue.claim(operation[1])
        finally:
            translator._current_spontaneous = None

    activity = [
        (1, ("enq", "reports")),
        (2, ("enq", "reports")),
        (3, ("enq", "billing")),
        (10, ("claim", "reports")),
        (12, ("enq", "billing")),
        (20, ("claim", "billing")),
    ]
    for at, operation in activity:
        scenario.sim.at(seconds(at), lambda op=operation: spontaneous(op))

    cm.run(until=seconds(60))

    print("dashboard after mirroring:")
    for row in dashboard.query(
        "SELECT class, depth FROM queue_depths ORDER BY class"
    ):
        print(f"  {row[0]}: depth {row[1]}")
    print("\nshell-private high-water marks:")
    store = cm.shell("ops-site").store
    for job_class in ("billing", "reports"):
        print(
            f"  {job_class}: "
            f"{store.read_local(DataItemRef('Highwater', (job_class,)))}"
        )
    print("\nhand-issued guarantee, checked like any menu entry:")
    print(" ", guarantee.check(scenario.trace))


if __name__ == "__main__":
    main()
