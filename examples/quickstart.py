"""Quickstart: the paper's Section 4.2 example, end to end.

A company stores personnel data in a San Francisco branch database (A) and
at New York headquarters (B).  The constraint: for each employee n,
``salary1(n) = salary2(n)``.

The script walks the toolkit workflow:

1. stand up the two (simulated) relational databases;
2. describe each database's offered interfaces in a CM-RID;
3. declare the copy constraint and ask the toolkit for applicable
   strategies + guarantees;
4. install the suggested propagation strategy and run a workload;
5. check every issued guarantee against the recorded execution;
6. re-run after the Section 4.2.3 interface change (notify -> read-only),
   which forces a polling strategy and loses guarantee (2).

Run:  python examples/quickstart.py
"""

from repro import (
    CMRID,
    ConstraintManager,
    CopyConstraint,
    InterfaceKind,
    Scenario,
    seconds,
)
from repro.ris.relational import RelationalDatabase
from repro.workloads import UpdateStream
from repro.workloads.generators import random_walk


def build(offer_notify: bool) -> tuple[ConstraintManager, RelationalDatabase]:
    cm = ConstraintManager(Scenario(seed=2024))

    # --- Site A: the branch database --------------------------------------
    branch = RelationalDatabase("branch")
    branch.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_a = CMRID("relational", "branch").bind(
        "salary1",
        params=("n",),
        table="employees",
        key_column="empid",
        value_column="salary",
    )
    if offer_notify:
        # The DBA offers: every spontaneous salary update is pushed to the
        # CM within 2 seconds (implemented via triggers, Section 4.2.1).
        rid_a.offer("salary1", InterfaceKind.NOTIFY, bound_seconds=2.0)
    # Reads are always available, answered within a second.
    rid_a.offer("salary1", InterfaceKind.READ, bound_seconds=1.0)

    # --- Site B: the headquarters database --------------------------------
    hq = RelationalDatabase("hq")
    hq.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_b = (
        CMRID("relational", "hq")
        .bind(
            "salary2",
            params=("n",),
            table="employees",
            key_column="empid",
            value_column="salary",
        )
        .offer("salary2", InterfaceKind.WRITE, bound_seconds=2.0)
        .offer("salary2", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )

    # One fluent expression wires both sites.
    (cm.site("san-francisco").source(branch, rid_a)
       .site("new-york").source(hq, rid_b))
    return cm, hq


def demo(offer_notify: bool) -> None:
    label = "notify interface" if offer_notify else "read interface only"
    print(f"--- salary1 offers a {label} ---")
    cm, hq = build(offer_notify)

    print("offered interfaces:")
    print(cm.interfaces().describe())

    constraint = cm.declare(
        CopyConstraint("salary1", "salary2", params=("n",))
    )
    suggestions = cm.suggest(constraint, polling_period=seconds(10))
    print(f"\nthe toolkit suggests {len(suggestions)} strategies:")
    for suggestion in suggestions:
        print(f"  * {suggestion}")

    chosen = suggestions[0]
    print(f"\ninstalling: {chosen.strategy.name}")
    cm.install(constraint, chosen)

    # Local applications at the branch update salaries, unaware of the CM.
    UpdateStream(
        cm,
        "salary1",
        ["alice", "bob", "carol"],
        rate=0.5,
        duration=seconds(120),
        value_model=random_walk(step=2_000.0, start=100_000.0),
    )
    cm.run(until=seconds(180))

    print("\nheadquarters now sees:")
    for empid, salary in hq.query(
        "SELECT empid, salary FROM employees ORDER BY empid"
    ):
        print(f"  {empid}: {salary:,.2f}")

    print("\nguarantee check against the recorded execution:")
    for report in cm.check_guarantees().values():
        print(f"  {report}")

    totals = cm.stats()["total"]
    print(
        f"\ndispatch: {totals['events_processed']} events, "
        f"{totals['candidates_considered']} candidate rules considered, "
        f"{totals['rules_fired']} fired"
    )
    print()


def main() -> None:
    demo(offer_notify=True)
    # Section 4.2.3: the administrator withdraws the notify interface; the
    # toolkit must fall back to polling, and guarantee (2) disappears from
    # the offered list — exactly the paper's point about weakened
    # consistency being explicit.
    demo(offer_notify=False)


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: both interface generations, wired and installed."""
    managers = []
    for offer_notify in (True, False):
        cm, __ = build(offer_notify)
        constraint = cm.declare(
            CopyConstraint("salary1", "salary2", params=("n",))
        )
        suggestions = cm.suggest(constraint, polling_period=seconds(10))
        cm.install(constraint, suggestions[0])
        managers.append(cm)
    return managers
