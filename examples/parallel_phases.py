"""Certified parallel phases and the race sanitizer (CM-Par).

A trading-desk hub ingests postings, quotes, and fills from a legacy
front-office system.  With ``Scenario(dispatch_shards=4,
parallel_phases=True)`` the shell asks the static effect analysis
(:mod:`repro.analysis.effects` / :mod:`repro.analysis.parplan`) to
partition its rules into **certified parallel phases** — groups whose
condition evaluations provably commute — and CM-Lint surfaces everything
that *limits* the certification:

======  =====================================================================
CM701   ``post_journal`` / ``post_trades`` both overwrite the private
        ``BookTotal`` marker and their trigger families land on the same
        dispatch shard: the pair stays serial.
CM702   ``mirror_all`` writes through a family-wildcard template; its
        footprint is unbounded, so nothing can be certified against it.
CM703   ``audit_requests`` cannot be compiled (its RHS emits an ``N``
        event); its effect summary is the AST fallback.
CM704   ``push_rate`` fires across the network; sends must follow trace
        order, so the rule is pinned to the serial barrier phase.
CM705   ``scan_positions`` performs an enumerating read over the whole
        ``position`` family, which ``record_fill`` writes.
======  =====================================================================

``sanitize=True`` additionally attaches the dynamic race sanitizer: every
store access during the run is checked against the plan's independence
claims.  A clean run prints ``races: 0`` — the analysis' soundness held.

Run:  python examples/parallel_phases.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import (
    CMRID,
    ConstraintManager,
    InterfaceKind,
    Scenario,
    parse_rule,
    seconds,
)
from repro.core.events import EventKind
from repro.core.rules import RhsStep
from repro.core.templates import Template
from repro.core.terms import FAMILY_WILDCARD, ItemPattern, Var
from repro.ris.legacy import LegacySystem


def _wildcard_mirror_rule():
    """``Ws(intake(n), a, b) -> [0] W(*(n), b)`` — the unbounded-footprint
    rule (CM702).  The DSL cannot spell a wildcard *write* family, so the
    step template is built directly."""
    base = parse_rule(
        "Ws(intake(n), a, b) -> [0] W(Shadow, b)", name="mirror_all"
    )
    wildcard_write = Template(
        EventKind.WRITE,
        ItemPattern(FAMILY_WILDCARD, (Var("n"),)),
        (Var("b"),),
    )
    return replace(base, steps=(RhsStep(wildcard_write),))


def build():
    """Wire the desk: a hub shell with six strategy rules, an annex shell
    owning the downstream rate store."""
    scenario = Scenario(
        seed=11,
        batch_max=8,
        dispatch_shards=4,
        parallel_phases=True,
        sanitize=True,
    )
    cm = ConstraintManager(scenario)

    front = LegacySystem("front-office")
    rid_front = (
        CMRID("legacy", "front-office")
        .bind("journal", params=("n",), key_prefix="j:")
        .offer("journal", InterfaceKind.NOTIFY, bound_seconds=1.0)
        .bind("trades", params=("n",), key_prefix="t:")
        .offer("trades", InterfaceKind.NOTIFY, bound_seconds=1.0)
        .bind("quote", params=("n",), key_prefix="q:")
        .offer("quote", InterfaceKind.NOTIFY, bound_seconds=1.0)
        .bind("fill", params=("n",), key_prefix="f:")
        .offer("fill", InterfaceKind.NOTIFY, bound_seconds=1.0)
        .bind("rate", params=("n",), key_prefix="r:")
        .offer("rate", InterfaceKind.NOTIFY, bound_seconds=1.0)
        .bind("audit_req", params=("n",), key_prefix="a:")
        .offer("audit_req", InterfaceKind.NOTIFY, bound_seconds=1.0)
        .bind("position", params=("n",), key_prefix="p:")
        .offer("position", InterfaceKind.READ, bound_seconds=1.0)
        .offer("position", InterfaceKind.WRITE, bound_seconds=1.0)
    )
    cm.site("hub").source(front, rid_front)

    rates = LegacySystem("rate-store")
    rid_rates = (
        CMRID("legacy", "rate-store")
        .bind("remote_rate", params=("n",), key_prefix="rr:")
        .offer("remote_rate", InterfaceKind.WRITE, bound_seconds=1.0)
        .offer("remote_rate", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    cm.site("annex").source(rates, rid_rates)

    hub = cm.site("hub").private("BookTotal", "LastQuote")
    # The CM701 pair: journal and trades hash to the same dispatch shard
    # and both blind-write the shared last-posting marker.
    hub.rule("N(journal(n), b) -> [0] W(BookTotal, b)", name="post_journal")
    hub.rule("N(trades(n), b) -> [0] W(BookTotal, b)", name="post_trades")
    # Commutes with everything open: keyed private writes (certified).
    hub.rule("N(quote(n), b) -> [0] W(LastQuote(n), b)", name="mark_quote")
    # Enumerating read over the whole position family (CM705 vs
    # record_fill's writes).
    hub.rule("N(quote(n), b) -> [0] RR(position(x))", name="scan_positions")
    hub.rule("N(fill(n), b) -> [0] WR(position(n), b)", name="record_fill")
    # Cross-site send: the RHS executes at the annex (CM704).
    hub.rule(
        "N(rate(n), b) -> [0] WR(remote_rate(n), b)",
        "annex",
        name="push_rate",
    )
    hub.rule(_wildcard_mirror_rule())
    # Interpreted fallback: an N emission the compiler rejects (CM703);
    # the desk never writes audit_req, so the rule never fires.
    hub.rule(
        "N(audit_req(n), b) -> [0] N(audit_echo(n), b)",
        name="audit_requests",
    )
    return cm


def build_for_lint():
    """CM-Lint hook: the wired desk (lints with every CM7xx code)."""
    return build()


def main() -> None:
    cm = build()
    scenario = cm.scenario

    feed = [
        ("fill", "ibm", 300.0),
        ("fill", "dec", 120.0),
        ("journal", "posting-1", 410.0),
        ("trades", "trade-7", 385.0),
        ("quote", "ibm", 101.5),
        ("rate", "usd", 1.07),
        ("journal", "posting-2", 425.0),
        ("quote", "dec", 55.25),
    ]
    for index, (family, key, value) in enumerate(feed):
        scenario.sim.at(
            seconds(5 + index * 10),
            lambda f=family, k=key, v=value: cm.spontaneous_write(
                f, (k,), v
            ),
        )
    cm.run(until=seconds(120))

    hub = cm.shell("hub")
    stats = hub.parallelism_stats()
    plan = stats["plan"]
    print("certified parallel plan for site 'hub':")
    for index, phase in enumerate(plan["phases"]):
        kind = "barrier" if phase["barrier"] else "open"
        print(f"  phase {index} ({kind}): {', '.join(phase['rules'])}")
    print("certified pairs:", plan["certified_pairs"])
    print("barrier reasons:", plan["barrier_reasons"])
    print("hoisted conditions this run:", stats["hoisted_conditions"])

    report = scenario.sanitizer.report()
    print(
        f"sanitizer: races: {report['race_count']}  "
        f"(reads={report['reads']}, writes={report['writes']}, "
        f"predicted conflicts serialized by the plan="
        f"{report['predicted_conflicts']})"
    )

    from repro.analysis import lint_manager

    findings = lint_manager(cm)
    codes = sorted(d.code for d in findings.diagnostics)
    print("CM-Lint findings:", ", ".join(codes))


if __name__ == "__main__":
    main()
