"""The old-fashioned bank of Section 6.4: periodic guarantees.

All branch transactions happen between 9 a.m. and 5 p.m.; the branch offers
an interface promising *no updates between 5 p.m. and 8 a.m.*  One batch
propagation at 5 p.m. (taking under 15 minutes) then buys a **periodic
guarantee**: branch and head-office balances are equal every day from
5:15 p.m. until 8 a.m. — so the head office's nightly analysis can run with
full confidence, without the branch ever supporting distributed
transactions.

Run:  python examples/banking_eod.py
"""

from repro import CMRID, ConstraintManager, CopyConstraint, InterfaceKind, Scenario
from repro.apps import AnalystApp
from repro.core.timebase import DAY, clock_time, format_ticks
from repro.ris.relational import RelationalDatabase
from repro.workloads import BankingWorkload

SIMULATED_DAYS = 3


def build():
    """Wire the two ledgers and install the end-of-day batch strategy."""
    scenario = Scenario(seed=31)
    cm = ConstraintManager(scenario)

    branch_db = RelationalDatabase("branch-ledger")
    branch_db.execute(
        "CREATE TABLE accounts (acct TEXT PRIMARY KEY, balance REAL)"
    )
    rid_branch = (
        CMRID("relational", "branch-ledger")
        .bind(
            "balance1",
            params=("n",),
            table="accounts",
            key_column="acct",
            value_column="balance",
        )
        .offer("balance1", InterfaceKind.READ, bound_seconds=2.0)
        .offer(
            "balance1",
            InterfaceKind.UPDATE_WINDOW,
            window=(clock_time(17), clock_time(8)),
        )
    )
    cm.site("branch").source(branch_db, rid_branch)

    hq_db = RelationalDatabase("ho-ledger")
    hq_db.execute(
        "CREATE TABLE accounts (acct TEXT PRIMARY KEY, balance REAL)"
    )
    rid_hq = (
        CMRID("relational", "ho-ledger")
        .bind(
            "balance2",
            params=("n",),
            table="accounts",
            key_column="acct",
            value_column="balance",
        )
        .offer("balance2", InterfaceKind.WRITE, bound_seconds=2.0)
        .offer("balance2", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    cm.site("head-office").source(hq_db, rid_hq)

    constraint = cm.declare(
        CopyConstraint("balance1", "balance2", params=("n",))
    )
    suggestions = cm.suggest(constraint, eod_fire_at=clock_time(17))
    eod = next(s for s in suggestions if s.strategy.kind == "eod-batch")
    cm.install(constraint, eod)
    return cm, eod


def build_for_lint():
    """CM-Lint hook: the wired bank, before any transactions."""
    return build()[0]


def main() -> None:
    cm, eod = build()
    print("installing:", eod.strategy.name)
    for guarantee in eod.guarantees:
        print("  guarantees:", guarantee)

    workload = BankingWorkload(
        cm, account_count=8, days=SIMULATED_DAYS, rate=0.02
    )
    analyst = AnalystApp(
        cm, "balance1", "balance2", run_at=clock_time(22), days=SIMULATED_DAYS
    )
    cm.run(until=SIMULATED_DAYS * DAY)

    print(f"\n{workload.updates_scheduled} business-hours transactions")
    print("\nnightly analysis at 22:00 (inside the guaranteed window):")
    for report in analyst.reports():
        status = "consistent" if report.consistent else "INCONSISTENT"
        print(
            f"  {format_ticks(report.run_at)}: head-office total "
            f"{report.copy_total:,.2f}, branch truth "
            f"{report.branch_total:,.2f} -> {status}"
        )

    print("\nperiodic guarantee over the whole run:")
    for report in cm.check_guarantees().values():
        print(f"  {report}")


if __name__ == "__main__":
    main()
