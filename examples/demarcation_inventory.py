"""The Demarcation Protocol on an inventory constraint (Section 6.1).

A storefront's committed orders ``X`` must never exceed the warehouse's
stock ``Y`` — ``X <= Y`` with the two counters in different databases.  The
Demarcation Protocol maintains local limits so that both sites can keep
accepting updates *without distributed transactions*, while the inequality
provably holds at every instant, even mid-handshake.

The example installs the protocol via the toolkit's catalog, drives sales
and warehouse adjustments, and reports the protocol statistics plus the
continuously-checked invariant.

Run:  python examples/demarcation_inventory.py
"""

from repro import (
    CMRID,
    ConstraintManager,
    InequalityConstraint,
    InterfaceKind,
    Scenario,
    seconds,
)
from repro.protocols.demarcation import SlackPolicy
from repro.ris.relational import RelationalDatabase
from repro.workloads import InventoryWorkload


def build():
    """Wire both counters and install the demarcation protocol."""
    scenario = Scenario(seed=99)
    cm = ConstraintManager(scenario)

    orders_db = RelationalDatabase("orders")
    orders_db.execute(
        "CREATE TABLE counters (name TEXT PRIMARY KEY, val REAL)"
    )
    rid_orders = (
        CMRID("relational", "orders")
        .bind(
            "committed",
            table="counters",
            key_column="name",
            value_column="val",
            key="committed",
        )
        .offer("committed", InterfaceKind.READ, bound_seconds=1.0)
        .offer("committed", InterfaceKind.WRITE, bound_seconds=1.0)
    )
    cm.site("storefront").source(orders_db, rid_orders)

    stock_db = RelationalDatabase("stock")
    stock_db.execute(
        "CREATE TABLE counters (name TEXT PRIMARY KEY, val REAL)"
    )
    rid_stock = (
        CMRID("relational", "stock")
        .bind(
            "stock",
            table="counters",
            key_column="name",
            value_column="val",
            key="stock",
        )
        .offer("stock", InterfaceKind.READ, bound_seconds=1.0)
        .offer("stock", InterfaceKind.WRITE, bound_seconds=1.0)
    )
    cm.site("warehouse").source(stock_db, rid_stock)

    # Declare + survey + install in one fluent chain; the demarcation
    # protocol's construction arguments travel in ``native``.
    demarcation = cm.constraint(
        InequalityConstraint("committed", "stock")
    ).strategy(
        demarcation_policy=SlackPolicy.SPLIT,
        native=dict(initial_x=0.0, initial_y=1000.0, initial_limit=100.0),
    )
    return cm, demarcation


def build_for_lint():
    """CM-Lint hook: the wired inventory before any sales."""
    return build()[0]


def main() -> None:
    cm, demarcation = build()
    scenario = cm.scenario
    print("installed:", demarcation.installed.strategy.name)
    for guarantee in demarcation.guarantees:
        print("  guarantees:", guarantee)

    protocol = demarcation.native_protocol

    InventoryWorkload(
        scenario.sim,
        scenario.rngs,
        protocol,
        duration=seconds(600),
        x_rate=0.5,
        y_rate=0.2,
    )
    cm.run(until=seconds(700))

    x_stats = protocol.x_agent.stats
    y_stats = protocol.y_agent.stats
    print(
        f"\nstorefront: {x_stats.updates_applied}/"
        f"{x_stats.updates_attempted} sales applied, "
        f"{x_stats.requests_sent} limit handshakes"
    )
    print(
        f"warehouse:  {y_stats.updates_applied}/"
        f"{y_stats.updates_attempted} adjustments applied"
    )
    print(
        f"final state: committed={protocol.x_agent.value:.2f} "
        f"(limit {protocol.x_agent.limit:.2f})  "
        f"stock={protocol.y_agent.value:.2f} "
        f"(limit {protocol.y_agent.limit:.2f})"
    )
    print("\ncontinuous invariant check over the whole run:")
    for report in cm.check_guarantees().values():
        print(f"  {report}")


if __name__ == "__main__":
    main()
