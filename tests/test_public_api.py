"""Snapshot of the package's public surface.

``repro.__all__`` is the contract scenario authors import against; this
test pins it so that additions are deliberate (update the snapshot here)
and removals are loud.  Every listed name must also resolve to a real
attribute — a stale re-export fails at import, not at a user's site.
"""

import repro

EXPECTED_ALL = [
    # toolkit façade and wiring
    "ConstraintManager",
    "CMManager",
    "Scenario",
    "SiteBuilder",
    "ConstraintBuilder",
    "InstalledConstraint",
    "CMRID",
    "CMShell",
    "CMTranslator",
    "ServiceModel",
    "FailureNotice",
    "GuaranteeStatusBoard",
    "verify",
    # constraints
    "Constraint",
    "CopyConstraint",
    "InequalityConstraint",
    "ReferentialConstraint",
    "ArithmeticConstraint",
    # rule / guarantee languages
    "parse_rule",
    "parse_rules",
    "parse_condition",
    "parse_event_template",
    "parse_guarantee",
    "FormulaChecker",
    # guarantee checkers
    "Guarantee",
    "GuaranteeReport",
    "follows",
    "leads",
    "strictly_follows",
    "invariant",
    "periodic",
    "referential_within",
    "monitor_window",
    # observability
    "Instrumentation",
    "MetricsRegistry",
    "Tracer",
    "SpanTree",
    "SpanContext",
    "FlightRecorder",
    "TelemetryBus",
    "JsonlSink",
    "PrometheusExporter",
    "RunReport",
    # runtimes (sim kernel and wire/asyncio)
    "Runtime",
    "SimRuntime",
    "AsyncRuntime",
    "RunConfig",
    "ChannelFaults",
    "WireFaultPlan",
    "resolve_runtime",
    "run_equivalence",
    # substrate
    "Simulator",
    "InterfaceKind",
    "MISSING",
    "DataItemRef",
    "seconds",
    "minutes",
    "hours",
    "days",
    "to_seconds",
]


def test_all_matches_snapshot():
    assert list(repro.__all__) == EXPECTED_ALL


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_runtime_surface_is_usable():
    # The runtime seam's key types come straight off the package root.
    config = repro.RunConfig(runtime="sim", seed=7)
    assert config.resolve_seed(0) == 7
    runtime = repro.resolve_runtime(config.runtime_spec())
    assert runtime.name == "sim"
    assert isinstance(runtime, repro.SimRuntime)
    assert repro.resolve_runtime("async").name == "async"
    faults = repro.ChannelFaults(dup=0.1)
    assert repro.WireFaultPlan(default=faults).for_channel("a", "b").dup == 0.1
