"""Tests for the workload generators."""

from cm_helpers_root import two_site  # noqa: F401  (fixture import)

from repro.core.events import EventKind
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import DAY, Ticks, clock_time, seconds, time_of_day
from repro.workloads import (
    BankingWorkload,
    BurstStream,
    ChurnStream,
    PersonnelWorkload,
    UpdateStream,
)
from repro.workloads.generators import (
    duplicate_heavy,
    random_walk,
    uniform_values,
)


class TestUpdateStream:
    def test_poisson_count_is_plausible(self, two_site):
        cm, *_ = two_site
        stream = UpdateStream(
            cm, "salary1", ["e1"], rate=1.0, duration=seconds(200)
        )
        cm.run(until=seconds(210))
        # Poisson(200): within 5 sigma of the mean.
        assert 130 <= stream.stats.updates <= 270

    def test_deterministic_given_seed(self):
        from cm_helpers_root import build_two_site

        counts = []
        for __ in range(2):
            cm, *_ = build_two_site(seed=123)
            stream = UpdateStream(
                cm, "salary1", ["e1", "e2"], rate=2.0, duration=seconds(50)
            )
            cm.run(until=seconds(60))
            values = [
                e.written_value
                for e in cm.scenario.trace.events
                if e.desc.kind is EventKind.SPONTANEOUS_WRITE
            ]
            counts.append(values)
        assert counts[0] == counts[1]

    def test_updates_confined_to_window(self, two_site):
        cm, *_ = two_site
        UpdateStream(
            cm, "salary1", ["e1"], rate=5.0,
            duration=seconds(50), start=seconds(100),
        )
        cm.run(until=seconds(300))
        times = [
            e.time for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.SPONTANEOUS_WRITE
        ]
        assert times and all(seconds(100) <= t < seconds(150) for t in times)


class TestValueModels:
    class FakeStream:
        def __init__(self):
            import random

            self.rng = random.Random(0)

    def test_uniform_bounds(self):
        model = uniform_values(10, 20)
        stream = self.FakeStream()
        assert all(10 <= model(stream, "k") <= 20 for __ in range(50))

    def test_random_walk_is_per_key(self):
        model = random_walk(step=1.0, start=100.0)
        stream = self.FakeStream()
        a_values = [model(stream, "a") for __ in range(5)]
        b_first = model(stream, "b")
        # Key b starts fresh from 100 +/- 1 even after a's walk moved.
        assert abs(b_first - 100.0) <= 1.0
        assert all(abs(x - y) <= 1.0 for x, y in zip(a_values, a_values[1:]))

    def test_duplicate_heavy_repeats(self):
        model = duplicate_heavy(values=(1, 2, 3), repeat_probability=1.0)
        stream = self.FakeStream()
        first = model(stream, "k")
        assert all(model(stream, "k") == first for __ in range(10))


class TestBurstStream:
    def test_burst_shape(self, two_site):
        cm, *_ = two_site
        BurstStream(
            cm,
            "salary1",
            "e1",
            burst_times=[seconds(10), seconds(50)],
            burst_size=3,
            intra_gap=seconds(0.5),
        )
        cm.run(until=seconds(60))
        times = [
            e.time for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.SPONTANEOUS_WRITE
        ]
        assert len(times) == 6
        assert times[0:3] == [seconds(10), seconds(10.5), seconds(11)]


class TestChurnStream:
    def test_inserts_and_deletes(self, two_site):
        cm, *_ = two_site
        churn = ChurnStream(
            cm, "salary1", rate=2.0, duration=seconds(100),
            delete_probability=0.4,
        )
        cm.run(until=seconds(120))
        assert churn.stats.updates > 0
        assert churn.stats.deletes > 0
        # Live keys exist; deleted ones are MISSING.
        for key in churn.live_keys:
            assert cm.scenario.trace.current_value(
                DataItemRef("salary1", (key,))
            ) is not MISSING


class TestPersonnelWorkload:
    def test_roster_then_updates(self, two_site):
        cm, *_ = two_site
        workload = PersonnelWorkload(
            cm, employee_count=5, rate=1.0, duration=seconds(60)
        )
        cm.run(until=seconds(70))
        assert len(workload.employees) == 5
        for employee in workload.employees:
            value = cm.scenario.trace.current_value(
                DataItemRef("salary1", (employee,))
            )
            assert value is not MISSING


class TestBankingWorkload:
    def test_updates_only_in_business_hours(self):
        from cm_helpers_root import build_banking_site

        cm = build_banking_site()
        workload = BankingWorkload(cm, account_count=3, days=2, rate=0.05)
        cm.run(until=2 * DAY)
        update_times = [
            e.time
            for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.SPONTANEOUS_WRITE and e.time > 0
        ]
        assert workload.updates_scheduled > 0
        for time in update_times:
            tod = time_of_day(time)
            assert clock_time(9) <= tod < clock_time(17)
