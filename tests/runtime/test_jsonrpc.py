"""Tests for the JSON-RPC 2.0 message layer of the wire runtime."""

import pytest

from repro.runtime.jsonrpc import (
    INVALID_PARAMS,
    JSONRPC_VERSION,
    ErrorResponse,
    Notification,
    ProtocolError,
    Request,
    Response,
    parse_message,
)


class TestRoundTrip:
    def test_request(self):
        message = Request("cm.hello", {"src": "a", "dst": "b"}, id=7)
        parsed = parse_message(message.to_wire())
        assert parsed == message

    def test_notification(self):
        message = Notification("cm.deliver", {"seq": 0})
        parsed = parse_message(message.to_wire())
        assert parsed == message
        assert not hasattr(parsed, "id")

    def test_response(self):
        parsed = parse_message(Response(id=7, result={"ok": True}).to_wire())
        assert parsed == Response(id=7, result={"ok": True})

    def test_error_response(self):
        message = ErrorResponse(id=7, code=-32600, message="bad", data=[1])
        parsed = parse_message(message.to_wire())
        assert parsed == message

    def test_error_without_data_omits_key(self):
        wire = ErrorResponse(id=1, code=-32600, message="bad").to_wire()
        assert "data" not in wire["error"]

    def test_version_stamped(self):
        assert Request("m").to_wire()["jsonrpc"] == JSONRPC_VERSION


class TestStrictParsing:
    @pytest.mark.parametrize(
        "raw",
        [
            "not an object",
            {"method": "m"},  # missing jsonrpc version
            {"jsonrpc": "1.0", "method": "m"},
            {"jsonrpc": "2.0", "method": 42},
            {"jsonrpc": "2.0"},  # neither request nor response
            {"jsonrpc": "2.0", "result": 1},  # response without id
            {"jsonrpc": "2.0", "error": "boom"},  # malformed error object
            {"jsonrpc": "2.0", "error": {"message": "no code"}},
        ],
    )
    def test_malformed_rejected(self, raw):
        with pytest.raises(ProtocolError):
            parse_message(raw)

    def test_non_object_params_rejected_with_code(self):
        with pytest.raises(ProtocolError) as exc:
            parse_message({"jsonrpc": "2.0", "method": "m", "params": [1]})
        assert exc.value.code == INVALID_PARAMS

    def test_id_presence_distinguishes_request_from_notification(self):
        with_id = parse_message({"jsonrpc": "2.0", "method": "m", "id": 0})
        without = parse_message({"jsonrpc": "2.0", "method": "m"})
        assert isinstance(with_id, Request)
        assert isinstance(without, Notification)
