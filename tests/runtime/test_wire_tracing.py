"""Acceptance: distributed tracing and the flight recorder over the wire.

The issue's bar: a wire-runtime (``runtime="async"``) failure-injection
run must produce a *connected* cross-shell SpanTree — reconnected from
the trace contexts carried in ``cm.deliver`` frames, not from shared
Python objects — whose ``end_to_end()`` is validated against the metric
guarantee's kappa; and a guarantee violation must dump a flight-recorder
digest into the run report.
"""

from repro.cm.failures import FailureNotice
from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario
from repro.runtime import AsyncRuntime, ChannelFaults, WireFaultPlan
from repro.sim.failures import FailureKind

#: Socket-level fault injection: every frame duplicated and held for
#: reordering — noise the channel layer must absorb without breaking
#: span reconnection.
HOSTILE = WireFaultPlan(default=ChannelFaults(dup=1.0, reorder=1.0))


def run_traced_wire(faults=HOSTILE, fail_site=None):
    salary = build_salary_scenario(
        "propagation",
        runtime=lambda: AsyncRuntime(time_scale=20.0, faults=faults),
    )
    cm = salary.cm
    cm.scenario.obs.enable_tracing()
    flight = cm.scenario.obs.enable_flight()
    cm.spontaneous_write("salary1", ("emp1",), 64_000.0)
    cm.scenario.sim.at(
        seconds(5),
        lambda: cm.spontaneous_write("salary1", ("emp2",), 71_000.0),
    )
    if fail_site is not None:
        notice = FailureNotice(
            site=fail_site,
            source_name="hq",
            kind=FailureKind.LOGICAL,
            time=seconds(12),
            detail="injected outage",
        )
        cm.scenario.sim.at(
            seconds(12), lambda: cm.shell(fail_site).report_failure(notice)
        )
    cm.run(until=seconds(30))
    return salary, cm, flight


class TestWireSpanReconnection:
    def test_cross_shell_trees_reconnect_and_respect_kappa(self):
        salary, cm, __ = run_traced_wire()
        metric = [g for g in salary.installed.guarantees if g.metric]
        assert metric, "scenario should issue a metric follows-guarantee"
        kappa = metric[0].within

        trees = list(cm.scenario.obs.tracer.trees())
        cross_site = [t for t in trees if len(t.sites) > 1]
        assert len(cross_site) == 2  # one chain per spontaneous write
        for tree in cross_site:
            # Connected despite the socket hop: the remote spans joined
            # the tree by the ids shipped in the frame's trace field.
            assert tree.connected, tree.render()
            assert tree.sites == ["sf", "ny"]
            (send,) = tree.find("net.send")
            (fire,) = tree.find("shell.fire")
            assert fire.parent_id == send.span_id
            assert send.site == "sf" and fire.site == "ny"
            # The reconnected chain's end-to-end extent is what the
            # metric guarantee bounds.
            assert 0 < tree.end_to_end() <= kappa, tree.render()

    def test_faults_actually_happened(self):
        __, cm, __ = run_traced_wire()
        stats = cm.scenario.network.channel_stats()
        # reorder=1.0 always holds a channel's first frame back; dup only
        # strikes frames that are not already held, so on a two-frame run
        # either counter proves the transport was genuinely hostile.
        injected = sum(
            s["frames_duplicated"] + s["frames_reordered"]
            for s in stats.values()
        )
        assert injected >= 1, stats

    def test_flight_rings_fill_on_both_shells(self):
        __, __, flight = run_traced_wire()
        assert set(flight.sites) == {"sf", "ny"}
        kinds = {row["kind"] for row in flight.digest()}
        assert {"event", "net.send", "net.recv", "fire"} <= kinds


class TestGuaranteeViolationDumps:
    def test_violation_dumps_flight_digest_into_run_report(self):
        salary, cm, flight = run_traced_wire(fail_site="ny")
        report = cm.run_report()

        # The logical failure took the guarantees down ...
        assert report.failures["logical"] == 1
        down = [g for g in report.guarantees if not g["standing"]]
        assert down, "a logical failure must invalidate the guarantees"

        # ... and both the failure intake and the report builder froze
        # the rings: one dump for the notice, one per violated guarantee.
        reasons = [dump["reason"] for dump in report.flight["dumps"]]
        assert any(r.startswith("failure:ny:hq:") for r in reasons)
        for entry in down:
            assert f"guarantee:{entry['name']}" in reasons
        for dump in report.flight["dumps"]:
            assert dump["records"], "dumps carry the last-N digest"
        assert report.flight == flight.to_dict()
        assert "flight:" in report.render()

    def test_healthy_run_report_has_no_dumps(self):
        __, cm, __ = run_traced_wire()
        report = cm.run_report()
        assert report.flight["dumps"] == []
        assert all(g["standing"] for g in report.guarantees)
