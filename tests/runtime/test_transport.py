"""Tests for length-prefixed JSON-RPC framing over asyncio streams."""

import asyncio
import struct

import pytest

from repro.runtime.jsonrpc import Notification, ProtocolError, Request, Response
from repro.runtime.transport import (
    MAX_FRAME_BYTES,
    FrameStream,
    encode_frame,
    read_frame,
)


def fed_reader(*chunks: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    return reader


class TestFraming:
    def test_frame_is_length_prefixed(self):
        frame = encode_frame(Notification("m"))
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_round_trip(self):
        message = Request("cm.hello", {"src": "a", "dst": "b"}, id=3)

        async def scenario():
            return await read_frame(fed_reader(encode_frame(message)))

        assert asyncio.run(scenario()) == message

    def test_two_frames_read_back_to_back(self):
        first = Notification("cm.deliver", {"seq": 0})
        second = Notification("cm.deliver", {"seq": 1})

        async def scenario():
            reader = fed_reader(encode_frame(first), encode_frame(second))
            return await read_frame(reader), await read_frame(reader)

        assert asyncio.run(scenario()) == (first, second)

    def test_clean_eof_returns_none(self):
        async def scenario():
            return await read_frame(fed_reader())

        assert asyncio.run(scenario()) is None

    def test_eof_mid_frame_returns_none(self):
        async def scenario():
            truncated = encode_frame(Notification("m"))[:-2]
            return await read_frame(fed_reader(truncated))

        assert asyncio.run(scenario()) is None

    def test_oversized_declared_length_rejected(self):
        async def scenario():
            header = struct.pack(">I", MAX_FRAME_BYTES + 1)
            await read_frame(fed_reader(header))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())

    def test_undecodable_body_rejected(self):
        async def scenario():
            body = b"\xff\xfe not json"
            await read_frame(fed_reader(struct.pack(">I", len(body)) + body))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())


class TestFrameStream:
    def test_send_and_recv_over_real_socket(self):
        async def scenario():
            received = []

            async def serve(reader, writer):
                stream = FrameStream(reader, writer)
                message = await stream.recv()
                received.append(message)
                await stream.send(Response(id=message.id, result="ok"))
                await stream.close()

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await FrameStream.open("127.0.0.1", port)
            await client.send(Request("cm.hello", {"src": "a"}, id=9))
            reply = await client.recv()
            await client.close()
            server.close()
            await server.wait_closed()
            return received, reply

        received, reply = asyncio.run(scenario())
        assert received == [Request("cm.hello", {"src": "a"}, id=9)]
        assert reply == Response(id=9, result="ok")
