"""End-to-end tests for the socket-backed wire runtime.

These run real scenarios: CM-Shells exchanging length-prefixed JSON-RPC
frames over loopback TCP, paced by the scaled wall clock.  Time scales
are set high so virtual minutes cost wall milliseconds.
"""

from repro.cm import ConstraintManager, Scenario
from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario
from repro.runtime import AsyncRuntime, ChannelFaults, WireFaultPlan
from repro.runtime.gateway import WireNetwork


def wire(time_scale=1000.0, faults=None):
    return AsyncRuntime(time_scale=time_scale, faults=faults)


class TestWireScenario:
    def test_salary_sync_crosses_real_sockets(self):
        salary = build_salary_scenario(
            strategy_kind="propagation", seed=0, runtime=wire()
        )
        cm = salary.cm
        assert isinstance(cm.scenario.network, WireNetwork)
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 50_000.0)
        )
        cm.run(until=seconds(30))
        assert salary.hq_db.query(
            "SELECT empid, salary FROM employees"
        ) == [("e1", 50000.0)]
        network = cm.scenario.network
        assert network.messages_delivered >= 1
        # Frames really crossed the loopback socket.
        stats = network.channel_stats()
        assert sum(s["frames_written"] for s in stats.values()) >= 1
        # Real milliseconds were recorded next to the virtual-tick series.
        hist = network.obs.metrics.get("wire_latency_ms", src="sf", dst="ny")
        assert hist is not None and hist.count >= 1

    def test_repeated_runs_resume_where_the_last_stopped(self):
        # run / reconfigure / run must behave like the simulator's repeated
        # run(until=...): sockets are rebuilt, channel sequences carry over.
        salary = build_salary_scenario(
            strategy_kind="propagation", seed=1, runtime=wire()
        )
        cm = salary.cm
        for t, value in ((1, 1.0), (35, 2.0)):
            cm.scenario.sim.at(
                seconds(t),
                lambda v=value: cm.spontaneous_write("salary1", ("e1",), v),
            )
        cm.run(until=seconds(30))
        assert salary.hq_db.query("SELECT salary FROM employees") == [(1.0,)]
        cm.run(until=seconds(60))
        assert salary.hq_db.query("SELECT salary FROM employees") == [(2.0,)]
        assert cm.scenario.sim.now == seconds(60)

    def test_guarantees_hold_over_the_wire(self):
        salary = build_salary_scenario(
            strategy_kind="propagation", seed=2, runtime=wire()
        )
        cm = salary.cm
        for t in (1, 3, 5):
            cm.scenario.sim.at(
                seconds(t),
                lambda v=float(t): cm.spontaneous_write("salary1", ("e1",), v),
            )
        cm.run(until=seconds(40))
        reports = cm.check_guarantees()
        assert reports, "no guarantees derived"
        assert all(report.valid for report in reports.values()), {
            name: report.valid for name, report in reports.items()
        }


class TestSocketFaults:
    def test_drop_fault_loses_the_message_at_the_sender(self):
        # drop is sender-side (a lost datagram): no frame is written, the
        # wire_fault_drops counter ticks, send() reports the loss as None —
        # all observable without opening a single socket.
        plan = WireFaultPlan().set("a", "b", ChannelFaults(drop=1.0))
        scenario = Scenario(seed=0, runtime=wire(faults=plan))
        network = scenario.network
        network.register_site("a", lambda m: None)
        network.register_site("b", lambda m: None)
        assert network.send("a", "b", "lost") is None
        assert network.messages_dropped == 1
        assert network.obs.metrics.value("wire_fault_drops", src="a", dst="b") == 1
        assert network.outstanding == 0

    def test_dup_and_reorder_healed_by_resequencer(self):
        # Every frame duplicated and held back: the receiver must still
        # hand the shell each message exactly once, in order.
        plan = WireFaultPlan(default=ChannelFaults(dup=1.0, reorder=1.0))
        cm = ConstraintManager(Scenario(seed=3, runtime=wire(faults=plan)))
        cm.add_site("a")
        cm.add_site("b")
        received = []
        network = cm.scenario.network
        # Replace b's shell handler with a recorder: the payloads below are
        # bare strings, which a real shell would (rightly) reject.
        network._sites["b"].handler = lambda m: received.append(m.payload)
        for t, payload in ((1, "first"), (2, "second"), (3, "third")):
            cm.scenario.sim.at(
                seconds(t), lambda p=payload: network.send("a", "b", p)
            )
        cm.run(until=seconds(30))
        assert received == ["first", "second", "third"]
        stats = cm.scenario.network.channel_stats()["a->b"]
        assert stats["frames_duplicated"] >= 1
        assert stats["frames_reordered"] >= 1
        assert stats["duplicates_discarded"] >= 1
