"""Tests for the scaled wall clock behind the wire runtime."""

import asyncio

import pytest

from repro.core.timebase import seconds
from repro.runtime.clock import WallClock

#: Fast enough that a 10-virtual-second test costs ~2ms of wall time.
SCALE = 5000.0


def run(clock: WallClock, until) -> None:
    asyncio.run(clock.run_until(until))


class TestScheduling:
    def test_buffered_schedules_fire_in_order(self):
        clock = WallClock(time_scale=SCALE)
        fired = []
        clock.at(seconds(2), lambda: fired.append("late"))
        clock.at(seconds(1), lambda: fired.append("early"))
        run(clock, seconds(3))
        assert fired == ["early", "late"]
        assert clock.events_processed == 2

    def test_run_until_pins_virtual_time_to_horizon(self):
        clock = WallClock(time_scale=SCALE)
        run(clock, seconds(3))
        assert clock.now == seconds(3)

    def test_unfired_events_survive_into_next_run(self):
        clock = WallClock(time_scale=SCALE)
        fired = []
        # Far past the first horizon: wall-sleep overshoot (OS jitter) must
        # not be able to reach it during the first run.
        clock.at(seconds(500), lambda: fired.append("x"))
        run(clock, seconds(1))
        assert fired == []
        run(clock, seconds(1000))
        assert fired == ["x"]

    def test_cancel_prevents_callback(self):
        clock = WallClock(time_scale=SCALE)
        fired = []
        event = clock.at(seconds(1), lambda: fired.append("x"))
        event.cancel()
        run(clock, seconds(2))
        assert fired == []

    def test_past_schedule_clamped_to_now_not_rejected(self):
        # Wall jitter makes exact-tick schedules impossible; the clock
        # clamps to "now" where the simulator would raise.
        clock = WallClock(time_scale=SCALE)
        run(clock, seconds(5))
        fired = []
        clock.at(seconds(1), lambda: fired.append("x"))
        run(clock, seconds(6))
        assert fired == ["x"]

    def test_after_schedules_relative_to_now(self):
        clock = WallClock(time_scale=SCALE)
        fired = []
        clock.after(seconds(1), lambda: fired.append("x"))
        run(clock, seconds(2))
        assert fired == ["x"]

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError):
            WallClock(time_scale=SCALE).after(-1, lambda: None)

    def test_nonpositive_time_scale_rejected(self):
        with pytest.raises(ValueError):
            WallClock(time_scale=0)

    def test_stop_halts_later_events(self):
        clock = WallClock(time_scale=SCALE)
        fired = []
        clock.at(seconds(1), clock.stop)
        clock.at(seconds(5), lambda: fired.append("never"))
        run(clock, seconds(10))
        assert fired == []


class TestWallPacing:
    def test_wall_delay_is_scaled(self):
        clock = WallClock(time_scale=100.0)
        # 10 virtual seconds at 100x is 0.1 wall seconds.
        assert clock.wall_delay(seconds(10)) == pytest.approx(0.1)

    def test_wall_delay_never_negative(self):
        clock = WallClock(time_scale=SCALE)
        run(clock, seconds(5))
        assert clock.wall_delay(seconds(1)) == 0.0

    def test_now_is_monotonic_across_runs(self):
        clock = WallClock(time_scale=SCALE)
        samples = []
        clock.at(seconds(1), lambda: samples.append(clock.now))
        run(clock, seconds(2))
        samples.append(clock.now)
        run(clock, seconds(4))
        samples.append(clock.now)
        assert samples == sorted(samples)
