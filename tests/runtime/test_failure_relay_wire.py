"""Failure-notice relay over the wire, under injected socket faults.

Mirror of ``tests/cm/test_failure_relay.py`` on the socket path, with the
hostile transport the sim kernel cannot produce: every frame duplicated
and held back for reordering.  The channel layer must still give each
peer shell the paper's property 7 — every notice exactly once, in report
order — and the notices must cross the wire as real JSON, not by the
in-process handle table.
"""

from repro.cm import ConstraintManager, Scenario
from repro.cm.failures import FailureNotice
from repro.core.timebase import seconds
from repro.runtime import AsyncRuntime, ChannelFaults, WireFaultPlan


def make_federation(n_sites=3, faults=None):
    runtime = AsyncRuntime(time_scale=500.0, faults=faults)
    cm = ConstraintManager(Scenario(seed=0, runtime=runtime))
    sites = [f"s{i}" for i in range(n_sites)]
    for site in sites:
        cm.add_site(site)
    return cm, sites


def notice(origin, time, detail, recovered=False):
    return FailureNotice(
        site=origin,
        source_name="src",
        kind="crash",
        time=time,
        detail=detail,
        recovered=recovered,
    )


HOSTILE = WireFaultPlan(default=ChannelFaults(dup=1.0, reorder=1.0))


class TestWireRelayUnderFaults:
    def test_exactly_once_in_order_despite_dup_and_reorder(self):
        cm, sites = make_federation(4, faults=HOSTILE)
        seen = {site: [] for site in sites}
        for site in sites:
            cm.shell(site).on_failure.append(seen[site].append)

        first = notice("s0", seconds(1), "first")
        second = notice("s0", seconds(2), "second")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.shell("s0").report_failure(first)
        )
        cm.scenario.sim.at(
            seconds(2), lambda: cm.shell("s0").report_failure(second)
        )
        cm.run(until=seconds(30))

        for site in sites:
            assert seen[site] == [first, second], site
            assert cm.shell(site).failure_log == [first, second], site

        # The faults actually happened and the resequencer healed them.
        stats = cm.scenario.network.channel_stats()
        assert sum(s["frames_duplicated"] for s in stats.values()) >= 1
        assert sum(s["duplicates_discarded"] for s in stats.values()) >= 1

    def test_notices_cross_as_json_not_by_handle(self):
        cm, sites = make_federation(3, faults=HOSTILE)
        seen = {site: [] for site in sites}
        for site in sites:
            cm.shell(site).on_failure.append(seen[site].append)
        original = notice("s0", seconds(1), "crash")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.shell("s0").report_failure(original)
        )
        cm.run(until=seconds(20))
        for peer in ("s1", "s2"):
            assert len(seen[peer]) == 1, peer
            received = seen[peer][0]
            # Equal but a different object: it was rebuilt from the frame's
            # JSON body, proving real serialization across the socket.
            assert received == original
            assert received is not original

    def test_remote_shells_do_not_reforward(self):
        cm, __ = make_federation(3, faults=HOSTILE)
        cm.scenario.sim.at(
            seconds(1),
            lambda: cm.shell("s0").report_failure(
                notice("s0", seconds(1), "only")
            ),
        )
        cm.run(until=seconds(20))
        # One origin, two peers: exactly two messages enter the network —
        # frame-layer dups are transport noise, not re-forwarding.
        assert cm.scenario.network.messages_sent == 2

    def test_board_records_each_notice_once_despite_fan_in(self):
        cm, __ = make_federation(3, faults=HOSTILE)
        failure = notice("s1", seconds(3), "crash")
        recovery = notice("s1", seconds(6), "back", recovered=True)
        cm.scenario.sim.at(
            seconds(3), lambda: cm.shell("s1").report_failure(failure)
        )
        cm.scenario.sim.at(
            seconds(6), lambda: cm.shell("s1").report_failure(recovery)
        )
        cm.run(until=seconds(30))
        assert cm.board.notices.count(failure) == 1
        assert cm.board.notices.count(recovery) == 1
        report = cm.run_report()
        assert report.failures["total"] == 2
        assert report.failures["recoveries"] == 1
