"""The process runtime: shells as OS processes, held to the sim verdicts.

Three angles:

- **Equivalence**: ``run_equivalence(seed, runtime="proc")`` — every proc
  execution must be Appendix-A valid with guarantee verdicts identical to
  the deterministic kernel's, exactly like the wire runtime's contract.
- **Hostile transport**: the mirror of
  ``tests/runtime/test_failure_relay_wire.py`` with every frame duplicated
  and held for reordering — except the frames now cross *process*
  boundaries, so nothing can lean on shared memory even by accident.
- **Supervision**: SIGKILL one shell process mid-run; the run must
  complete (not hang) and the dead site must surface as a FailureNotice.
"""

import os
import signal

import pytest

from repro.cm import ConstraintManager, Scenario
from repro.cm.failures import FailureNotice
from repro.core.timebase import seconds
from repro.runtime import ChannelFaults, ProcRuntime, WireFaultPlan
from repro.runtime.equivalence import run_equivalence

HOSTILE = WireFaultPlan(default=ChannelFaults(dup=1.0, reorder=1.0))


def federation_bootstrap(n_sites=3, runtime="sim"):
    """Module-level (picklable) bootstrap: n empty sites, fully meshed."""
    cm = ConstraintManager(Scenario(seed=0, runtime=runtime))
    for i in range(n_sites):
        cm.add_site(f"s{i}")
    return cm


def make_federation(n_sites=3, faults=None, time_scale=100.0):
    runtime = ProcRuntime(
        bootstrap=federation_bootstrap,
        bootstrap_kwargs={"n_sites": n_sites},
        time_scale=time_scale,
        faults=faults,
    )
    cm = federation_bootstrap(n_sites, runtime=runtime)
    sites = [f"s{i}" for i in range(n_sites)]
    return cm, sites


def notice(origin, time, detail, recovered=False):
    return FailureNotice(
        site=origin,
        source_name="src",
        kind="crash",
        time=time,
        detail=detail,
        recovered=recovered,
    )


class TestProcEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_proc_matches_sim_verdicts(self, seed):
        report = run_equivalence(seed, runtime="proc")
        assert report.ok, report.render()
        assert report.wire.runtime == "proc"
        # Real work happened in the shell processes, not a silent no-op.
        assert report.wire.events_recorded > 0
        assert report.wire.rules_fired > 0
        assert report.wire.messages_sent > 0


class TestProcRelayUnderFaults:
    def test_exactly_once_in_order_despite_dup_and_reorder(self):
        cm, sites = make_federation(4, faults=HOSTILE)
        try:
            seen = {site: [] for site in sites}
            for site in sites:
                cm.shell(site).on_failure.append(seen[site].append)

            first = notice("s0", seconds(1), "first")
            second = notice("s0", seconds(2), "second")
            cm.scenario.sim.at(
                seconds(1), lambda: cm.shell("s0").report_failure(first)
            )
            cm.scenario.sim.at(
                seconds(2), lambda: cm.shell("s0").report_failure(second)
            )
            cm.run(until=seconds(30))

            for site in sites:
                assert seen[site] == [first, second], site
                assert cm.shell(site).failure_log == [first, second], site

            # The faults actually happened across process boundaries and
            # the resequencers healed them.
            stats = cm.scenario.network.channel_stats()
            assert sum(s["frames_duplicated"] for s in stats.values()) >= 1
            assert sum(s["duplicates_discarded"] for s in stats.values()) >= 1
        finally:
            cm.scenario.shutdown()
            cm.close()

    def test_notices_cross_as_json_not_by_reference(self):
        cm, sites = make_federation(3, faults=HOSTILE)
        try:
            seen = {site: [] for site in sites}
            for site in sites:
                cm.shell(site).on_failure.append(seen[site].append)
            original = notice("s0", seconds(1), "crash")
            cm.scenario.sim.at(
                seconds(1), lambda: cm.shell("s0").report_failure(original)
            )
            cm.run(until=seconds(20))
            for peer in ("s1", "s2"):
                assert len(seen[peer]) == 1, peer
                received = seen[peer][0]
                # Equal but a different object: rebuilt from JSON twice
                # (once across the wire, once at harvest) in a different
                # address space.
                assert received == original
                assert received is not original
        finally:
            cm.scenario.shutdown()
            cm.close()

    def test_remote_shells_do_not_reforward(self):
        cm, __ = make_federation(3, faults=HOSTILE)
        try:
            only = notice("s0", seconds(1), "only")
            cm.scenario.sim.at(
                seconds(1), lambda: cm.shell("s0").report_failure(only)
            )
            cm.run(until=seconds(20))
            # One origin, two peers: exactly two messages enter the wire.
            assert cm.scenario.network.messages_sent == 2
        finally:
            cm.scenario.shutdown()
            cm.close()


class TestProcSupervision:
    def test_killed_shell_becomes_failure_notice_not_hang(self):
        cm, sites = make_federation(3, time_scale=50.0)
        runtime = cm.scenario.runtime_impl
        try:
            cm.run(until=seconds(5))  # spawns and registers the children
            info = runtime.process_info()
            assert sorted(info) == sites
            assert all(entry["alive"] for entry in info.values())
            assert all(entry["pid"] for entry in info.values())

            victim_pid = info["s2"]["pid"]
            cm.scenario.sim.at(
                seconds(10), lambda: os.kill(victim_pid, signal.SIGKILL)
            )
            cm.run(until=seconds(20))  # must complete, not hang

            info = runtime.process_info()
            assert not info["s2"]["alive"]
            assert info["s2"]["exit_code"] == -signal.SIGKILL
            assert info["s0"]["alive"] and info["s1"]["alive"]

            deaths = [
                n
                for n in cm.shell("s2").failure_log
                if n.source_name == "cm-shell-process"
            ]
            assert len(deaths) == 1
            assert deaths[0].site == "s2"
            assert not deaths[0].recovered
            assert "exited" in deaths[0].detail

            report = runtime.process_report()
            assert report["enabled"] is True
            assert report["sites"]["s2"]["alive"] is False
        finally:
            cm.scenario.shutdown()
            cm.close()

    def test_shutdown_harvests_exit_codes(self):
        cm, sites = make_federation(2, time_scale=100.0)
        runtime = cm.scenario.runtime_impl
        cm.run(until=seconds(5))
        pids = {s: runtime.process_info()[s]["pid"] for s in sites}
        cm.scenario.shutdown()
        cm.close()
        info = runtime.process_info()
        for site in sites:
            assert info[site]["alive"] is False
            assert info[site]["exit_code"] == 0, info
            assert info[site]["pid"] == pids[site]
