"""Codec round-trip property: real traces survive by-value encoding.

The firing codec is what crosses every process boundary in the proc
runtime, so the property is checked against *real* executions, not
synthetic descriptors: run the Section 4.2 salary scenario on the
deterministic kernel for each catalog strategy and each seed, then
encode → decode every recorded event and demand the diff be empty —
same time, site, sequence number, descriptor, rule, and trigger
provenance chain (depth-bounded exactly like the wire).
"""

import pytest

from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario
from repro.runtime.codec import (
    MAX_TRIGGER_DEPTH,
    decode_desc,
    decode_event,
    decode_value,
    encode_desc,
    encode_event,
    encode_value,
)
from repro.runtime.proc import trace_rule_resolver
from repro.workloads import PersonnelWorkload

STRATEGIES = ["propagation", "cached-propagation", "polling"]
SEEDS = [0, 1, 2]


def _trace_for(strategy_kind, seed):
    salary = build_salary_scenario(strategy_kind=strategy_kind, seed=seed)
    PersonnelWorkload(
        salary.cm, employee_count=6, rate=0.5, duration=seconds(20)
    )
    salary.cm.run(until=seconds(30))
    # The same resolver the proc runtime's merge uses: installed rules,
    # remote-registered rules, and the translators' interface rules.
    resolve = trace_rule_resolver(salary.cm.shells)
    return salary.scenario.trace, resolve


def _diff(original, decoded, depth=MAX_TRIGGER_DEPTH):
    """Field-level differences between an event and its round-trip."""
    problems = []
    for field in ("time", "site", "seq"):
        a, b = getattr(original, field), getattr(decoded, field)
        if a != b:
            problems.append(f"{field}: {a!r} != {b!r}")
    if original.desc != decoded.desc:
        problems.append(f"desc: {original.desc!r} != {decoded.desc!r}")
    rule_a = original.rule.name if original.rule is not None else None
    rule_b = decoded.rule.name if decoded.rule is not None else None
    if rule_a != rule_b:
        problems.append(f"rule: {rule_a!r} != {rule_b!r}")
    if depth > 0 and original.trigger is not None:
        if decoded.trigger is None:
            problems.append("trigger chain truncated early")
        else:
            problems.extend(
                f"trigger.{p}"
                for p in _diff(original.trigger, decoded.trigger, depth - 1)
            )
    return problems


class TestEventRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("strategy_kind", STRATEGIES)
    def test_trace_diff_is_empty(self, strategy_kind, seed):
        trace, resolve = _trace_for(strategy_kind, seed)
        events = trace.events
        assert events, "scenario produced no events"
        problems = []
        for event in events:
            decoded = decode_event(encode_event(event), resolve)
            problems.extend(
                f"event ({event.site}, {event.seq}): {p}"
                for p in _diff(event, decoded)
            )
        assert not problems, "\n".join(problems[:20])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rule_identity_is_reresolved_not_copied(self, seed):
        trace, resolve = _trace_for("propagation", seed)
        fired = [e for e in trace.events if e.rule is not None]
        assert fired, "no rule firings recorded"
        for event in fired:
            decoded = decode_event(encode_event(event), resolve)
            # The decoded rule must be the *same object* the resolver
            # knows — that is what lets provenance indexes keyed by rule
            # identity keep working after a merge.
            assert decoded.rule is resolve(event.rule.name)
            assert decoded.rule is event.rule

    def test_desc_roundtrip_preserves_descriptor_equality(self):
        trace, _rules = _trace_for("cached-propagation", 0)
        for event in trace.events:
            assert decode_desc(encode_desc(event.desc)) == event.desc

    def test_value_roundtrip_on_observed_values(self):
        trace, _rules = _trace_for("polling", 0)
        seen = 0
        for event in trace.events:
            for value in event.desc.values:
                assert decode_value(encode_value(value)) == value
                seen += 1
        assert seen > 0
