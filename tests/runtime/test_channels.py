"""Tests for channel fault plans, the payload codec, and the resequencer."""

import pytest

from repro.cm.failures import FailureNotice
from repro.core.timebase import seconds
from repro.runtime.channels import (
    ChannelFaults,
    ChannelReceiver,
    WireFaultPlan,
    decode_payload,
    encode_payload,
)
from repro.sim.failures import FailureKind


class TestChannelFaults:
    def test_defaults_are_clean(self):
        faults = ChannelFaults()
        assert not faults.any

    @pytest.mark.parametrize("name", ["drop", "dup", "reorder"])
    def test_probability_bounds_enforced(self, name):
        with pytest.raises(ValueError):
            ChannelFaults(**{name: 1.5})
        with pytest.raises(ValueError):
            ChannelFaults(**{name: -0.1})

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ChannelFaults(delay=-1)

    def test_any_triggers_on_each_knob(self):
        assert ChannelFaults(drop=0.1).any
        assert ChannelFaults(dup=0.1).any
        assert ChannelFaults(reorder=0.1).any
        assert ChannelFaults(delay=5).any

    def test_plan_per_channel_override(self):
        plan = WireFaultPlan(default=ChannelFaults(drop=0.5)).set(
            "a", "b", ChannelFaults(dup=1.0)
        )
        assert plan.for_channel("a", "b").dup == 1.0
        assert plan.for_channel("a", "b").drop == 0.0
        assert plan.for_channel("b", "a").drop == 0.5


class TestPayloadCodec:
    def notice(self, kind):
        return FailureNotice(
            site="sf",
            source_name="branch",
            kind=kind,
            time=seconds(5),
            detail="db wedged",
            recovered=False,
        )

    def test_failure_notice_serializes_fully(self):
        original = self.notice(FailureKind.LOGICAL)
        encoded = encode_payload(original)
        assert encoded["type"] == "failure-notice"
        decoded = decode_payload(encoded)
        # Equal but not identical: the notice really crossed the codec.
        assert decoded == original
        assert decoded is not original
        assert decoded.kind is FailureKind.LOGICAL

    def test_translator_defined_kind_passes_through_as_string(self):
        decoded = decode_payload(encode_payload(self.notice("crash")))
        assert decoded.kind == "crash"

    def test_unencodable_payload_rejected(self):
        # No handle table remains: a payload the by-value codec cannot
        # represent is an error, never an in-process reference.
        from repro.runtime.codec import CodecError

        with pytest.raises(CodecError):
            encode_payload(object())

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            decode_payload({"type": "mystery"})


def frame(seq):
    return {"src": "a", "dst": "b", "seq": seq, "payload": seq}


class TestResequencer:
    def test_in_order_frames_pass_straight_through(self):
        receiver = ChannelReceiver()
        assert receiver.accept(frame(0)) == [frame(0)]
        assert receiver.accept(frame(1)) == [frame(1)]

    def test_gap_buffers_until_filled(self):
        receiver = ChannelReceiver()
        assert receiver.accept(frame(1)) == []
        assert receiver.accept(frame(2)) == []
        assert receiver.accept(frame(0)) == [frame(0), frame(1), frame(2)]
        assert receiver.frames_buffered_high == 3

    def test_duplicates_discarded(self):
        receiver = ChannelReceiver()
        receiver.accept(frame(0))
        assert receiver.accept(frame(0)) == []  # already delivered
        receiver.accept(frame(2))
        assert receiver.accept(frame(2)) == []  # already buffered
        assert receiver.duplicates_discarded == 2

    def test_raw_mode_passes_duplicates_and_reorders(self):
        # in_order=False is the Appendix A ablation: the misbehaviour the
        # resequencer exists to heal reaches the shell unfiltered.
        receiver = ChannelReceiver(in_order=False)
        assert receiver.accept(frame(1)) == [frame(1)]
        assert receiver.accept(frame(0)) == [frame(0)]
        assert receiver.accept(frame(0)) == [frame(0)]
        assert receiver.duplicates_discarded == 0

    def test_batch_consecutive_fast_path(self):
        receiver = ChannelReceiver()
        frames = [frame(0), frame(1), frame(2)]
        assert receiver.accept_batch(frames) == frames
        assert receiver.next_seq == 3
        assert receiver.frames_buffered_high == 0  # never touched the buffer

    def test_batch_with_gap_falls_back_to_per_frame(self):
        receiver = ChannelReceiver()
        # seq 1 arrives inside a batch before seq 0: the batch path must
        # heal exactly like per-frame accept would.
        assert receiver.accept_batch([frame(1), frame(2)]) == []
        assert receiver.accept_batch([frame(0)]) == [
            frame(0),
            frame(1),
            frame(2),
        ]
        assert receiver.next_seq == 3

    def test_batch_duplicates_discarded(self):
        receiver = ChannelReceiver()
        receiver.accept_batch([frame(0), frame(1)])
        assert receiver.accept_batch([frame(1), frame(2)]) == [frame(2)]
        assert receiver.duplicates_discarded == 1

    def test_batch_raw_mode_passes_through(self):
        receiver = ChannelReceiver(in_order=False)
        frames = [frame(1), frame(1), frame(0)]
        assert receiver.accept_batch(frames) == frames
