"""Randomized sim-vs-wire equivalence on seeded scenarios.

The contract is NOT identical interleavings — a wall clock and real
sockets cannot replay the discrete-event kernel tick for tick.  It is:
for the same seeded scenario, the wire runtime produces a *valid*
execution (all seven Appendix A trace properties) with the *same
guarantee verdicts* as the sim kernel, and the same logical work
(updates applied, rules fired, messages sent).
"""

import pytest

from repro.runtime import run_equivalence


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_propagation_scenario_equivalent(seed):
    report = run_equivalence(seed=seed, strategy_kind="propagation")
    assert report.ok, report.render()
    assert report.wire.trace_valid
    assert report.sim.verdicts == report.wire.verdicts
    assert report.sim.updates == report.wire.updates
    assert report.sim.rules_fired == report.wire.rules_fired


def test_polling_scenario_equivalent():
    report = run_equivalence(seed=0, strategy_kind="polling")
    assert report.ok, report.render()


def test_report_serializes_for_artifacts():
    report = run_equivalence(seed=1, duration_seconds=10.0)
    data = report.to_dict()
    assert data["seed"] == 1
    assert data["ok"] is True
    assert set(data["sim"]["verdicts"]) == set(data["wire"]["verdicts"])
