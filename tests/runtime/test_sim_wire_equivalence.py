"""Randomized sim-vs-wire equivalence on seeded scenarios.

The contract is NOT identical interleavings — a wall clock and real
sockets cannot replay the discrete-event kernel tick for tick.  It is:
for the same seeded scenario, the wire runtime produces a *valid*
execution (all seven Appendix A trace properties) with the *same
guarantee verdicts* as the sim kernel, and the same logical work
(updates applied, rules fired, messages sent).
"""

import pytest

from repro.runtime import run_equivalence


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_propagation_scenario_equivalent(seed):
    report = run_equivalence(seed=seed, strategy_kind="propagation")
    assert report.ok, report.render()
    assert report.wire.trace_valid
    assert report.sim.verdicts == report.wire.verdicts
    assert report.sim.updates == report.wire.updates
    assert report.sim.rules_fired == report.wire.rules_fired


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_span_trees_equivalent_across_runtimes(seed):
    """The wire runtime's *reconnected* span trees (trace contexts carried
    in ``cm.deliver`` frames) must reach the same ``end_to_end()``-vs-kappa
    verdicts as the sim kernel's in-process trees — every tree connected,
    every cross-site chain within the metric guarantee's bound."""
    report = run_equivalence(seed=seed, strategy_kind="propagation")
    assert report.spans_match, report.render()
    for obs in (report.sim, report.wire):
        assert obs.span_trees > 0
        assert obs.cross_site_trees > 0, obs.runtime
        assert obs.disconnected_trees == 0, obs.runtime
        assert obs.trees_over_kappa == 0, obs.runtime
        assert obs.spans_valid
    # Same workload on both sides: same number of causal chains, and the
    # same number of them crossed sites.
    assert report.sim.span_trees == report.wire.span_trees
    assert report.sim.cross_site_trees == report.wire.cross_site_trees


def test_polling_scenario_equivalent():
    report = run_equivalence(seed=0, strategy_kind="polling")
    assert report.ok, report.render()


def test_sanitized_equivalence_is_clean_and_observed():
    """With the race sanitizer armed on both sides (and plan-driven
    dispatch live), the equivalence verdict must hold *and* the sanitizer
    must have actually watched the run — a vacuously clean observation
    (zero accesses) would prove nothing about the plan's soundness."""
    report = run_equivalence(seed=0, sanitize=True, parallel_phases=True)
    assert report.ok, report.render()
    for obs in (report.sim, report.wire):
        assert obs.sanitizer_ok, obs.runtime
        assert obs.sanitizer_races == 0
        assert obs.sanitizer_accesses > 0, (
            f"{obs.runtime}: the sanitizer observed nothing"
        )
    data = report.to_dict()
    for side in ("sim", "wire"):
        assert data[side]["sanitizer_ok"] is True


def test_report_serializes_for_artifacts():
    report = run_equivalence(seed=1, duration_seconds=10.0)
    data = report.to_dict()
    assert data["seed"] == 1
    assert data["ok"] is True
    assert set(data["sim"]["verdicts"]) == set(data["wire"]["verdicts"])
    for side in ("sim", "wire"):
        assert data[side]["spans_valid"] is True
        assert data[side]["disconnected_trees"] == 0
        assert data[side]["span_trees"] >= data[side]["cross_site_trees"]
