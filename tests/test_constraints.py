"""Tests for constraint types and the arithmetic decomposition."""

import pytest

from repro.constraints import (
    ArithmeticConstraint,
    CopyConstraint,
    InequalityConstraint,
    ReferentialConstraint,
)
from repro.core.items import Locations
from repro.core.timebase import days


def locations() -> Locations:
    registry = Locations()
    for family, site in (
        ("X", "a"), ("Y", "b"), ("Z", "c"),
        ("Cached_Y", "a"), ("Cached_Z", "a"),
    ):
        registry.register(family, site)
    return registry


class TestBasics:
    def test_copy_families_and_sites(self):
        constraint = CopyConstraint("X", "Y")
        assert constraint.families() == ["X", "Y"]
        assert constraint.sites(locations()) == {"a", "b"}

    def test_parameterized_copy(self):
        constraint = CopyConstraint("X", "Y", params=("n",))
        assert constraint.parameterized

    def test_inequality(self):
        constraint = InequalityConstraint("X", "Y")
        assert "X <= Y" in constraint.name

    def test_referential_default_grace(self):
        constraint = ReferentialConstraint("X", "Y")
        assert constraint.grace == days(1)


class TestArithmeticDecomposition:
    def test_paper_example(self):
        # X = Y + Z at three sites -> X = Yc + Zc locally, plus two copies.
        constraint = ArithmeticConstraint("X", ("Y", "Z"))
        copies, local = constraint.decompose("a")
        assert [c.src_family for c in copies] == ["Y", "Z"]
        assert [c.dst_family for c in copies] == ["Cached_Y", "Cached_Z"]
        assert local.site == "a"
        assert local.formula() == "X = Cached_Y + Cached_Z"

    def test_only_copies_are_distributed(self):
        constraint = ArithmeticConstraint("X", ("Y", "Z"))
        copies, local = constraint.decompose("a")
        # Each distributed copy spans the operand's site and the target's.
        registry = locations()
        assert copies[0].sites(registry) == {"b", "a"}
        assert copies[1].sites(registry) == {"c", "a"}

    def test_needs_two_operands(self):
        with pytest.raises(ValueError):
            ArithmeticConstraint("X", ("Y",))
