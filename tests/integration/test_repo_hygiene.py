"""Repository-consistency checks: docs, benches, and experiments in sync."""

from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


class TestHygiene:
    def test_every_experiment_has_a_benchmark(self):
        from repro.experiments.runner import EXPERIMENTS

        bench_text = "".join(
            path.read_text() for path in (REPO / "benchmarks").glob("bench_*.py")
        )
        for key, (__, run) in EXPERIMENTS.items():
            assert run.__module__ + "" in bench_text or (
                run.__name__ in bench_text
            ), f"experiment {key} ({run.__module__}) has no benchmark"

    def test_every_experiment_is_documented(self):
        experiments_md = (REPO / "EXPERIMENTS.md").read_text()
        for section in (
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
            "E11",
        ):
            assert f"## {section} —" in experiments_md, (
                f"{section} missing from EXPERIMENTS.md"
            )
        assert experiments_md.count("## Ablation") == 3

    def test_every_example_is_in_the_readme(self):
        readme = (REPO / "README.md").read_text()
        for example in (REPO / "examples").glob("*.py"):
            assert example.name in readme, (
                f"{example.name} not mentioned in README.md"
            )

    def test_design_lists_every_experiment(self):
        design = (REPO / "DESIGN.md").read_text()
        for key in ("E1", "E5", "E10", "E11"):
            assert f"| {key} |" in design

    def test_no_experiment_claims_left_unreproduced_in_docs(self):
        experiments_md = (REPO / "EXPERIMENTS.md").read_text()
        assert "NOT REPRODUCED" not in experiments_md
