"""Smoke tests: every example script runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs(example, capsys):
    runpy.run_path(str(example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it did
    assert "VIOLATED" not in out or "monitor" in example.stem
