"""End-to-end integration tests: full toolkit stacks, checked traces.

Each test stands up a complete scenario (sources, translators, shells,
manager, strategy), runs a workload, and asserts both the guarantee-checker
verdicts and the Appendix-A valid-execution properties.
"""

import pytest

from repro.core.events import EventKind
from repro.core.guarantees import leads
from repro.core.timebase import DAY, clock_time, seconds
from repro.core.trace import validate_trace
from repro.experiments.common import build_salary_scenario
from repro.workloads import UpdateStream
from repro.workloads.generators import random_walk


def run_with_workload(salary, rate=1.0, duration=120.0, keys=("e1", "e2")):
    UpdateStream(
        salary.cm,
        "salary1",
        list(keys),
        rate=rate,
        duration=seconds(duration),
        value_model=random_walk(step=100.0, start=1000.0),
    )
    salary.cm.run(until=seconds(duration + 60))
    return salary


class TestPropagationStack:
    def test_all_guarantees_and_trace_valid(self):
        salary = run_with_workload(
            build_salary_scenario("propagation", seed=1)
        )
        reports = salary.cm.check_guarantees()
        assert reports and all(r.valid for r in reports.values())
        violations = validate_trace(
            salary.scenario.trace, list(salary.installed.strategy.rules)
        )
        assert violations == []

    def test_databases_converge(self):
        salary = run_with_workload(
            build_salary_scenario("propagation", seed=2)
        )
        branch_rows = dict(
            salary.branch_db.query("SELECT empid, salary FROM employees")
        )
        hq_rows = dict(
            salary.hq_db.query("SELECT empid, salary FROM employees")
        )
        assert branch_rows == hq_rows

    def test_every_write_at_hq_has_full_provenance(self):
        salary = run_with_workload(
            build_salary_scenario("propagation", seed=3), duration=60
        )
        hq_writes = [
            e
            for e in salary.scenario.trace.events
            if e.desc.kind is EventKind.WRITE and e.site == "ny"
        ]
        assert hq_writes
        for event in hq_writes:
            origin = event
            while origin.trigger is not None:
                origin = origin.trigger
            assert origin.desc.kind is EventKind.SPONTANEOUS_WRITE


class TestPollingStack:
    def test_misses_updates_but_keeps_follows(self):
        salary = build_salary_scenario(
            "polling", seed=4, polling_period=20.0
        )
        # Two quick updates inside one polling interval: one must be missed.
        for offset, value in ((0.0, 111.0), (1.0, 222.0)):
            salary.cm.scenario.sim.at(
                seconds(30 + offset),
                lambda v=value: salary.cm.spontaneous_write(
                    "salary1", ("e1",), v
                ),
            )
        salary.cm.run(until=seconds(120))
        reports = salary.cm.check_guarantees()
        assert all(r.valid for r in reports.values())
        leads_report = leads("salary1", "salary2").check(
            salary.scenario.trace
        )
        assert not leads_report.valid
        assert leads_report.stats["values_missed"] >= 1


class TestCachedStack:
    def test_duplicate_values_produce_no_write_requests(self):
        salary = build_salary_scenario("cached-propagation", seed=5)
        for offset in range(4):
            salary.cm.scenario.sim.at(
                seconds(10 + offset * 10),
                lambda: salary.cm.spontaneous_write(
                    "salary1", ("e1",), 42.0  # always the same value
                ),
            )
        salary.cm.run(until=seconds(120))
        write_requests = [
            e
            for e in salary.scenario.trace.events
            if e.desc.kind is EventKind.WRITE_REQUEST
        ]
        assert len(write_requests) == 1  # only the first one propagates
        reports = salary.cm.check_guarantees()
        assert all(r.valid for r in reports.values())


class TestMultiSiteStack:
    def test_three_site_chain(self):
        """sf -> ny -> eu, two chained copy constraints.

        Hop 1 uses propagation (sf notifies).  Hop 2 cannot: ny's writes are
        CM-originated (W, not Ws), so a notify interface at ny would never
        fire for them — the Ws/W distinction of the formalism.  The catalog
        therefore only offers polling for hop 2, and the chain still
        converges with the follows guarantee at every hop.
        """
        from repro.cm import CMRID, ConstraintManager, Scenario
        from repro.constraints import CopyConstraint
        from repro.core.interfaces import InterfaceKind
        from repro.ris.relational import RelationalDatabase

        scenario = Scenario(seed=6)
        cm = ConstraintManager(scenario)
        databases = {}
        families = {"sf": "copy0", "ny": "copy1", "eu": "copy2"}
        for site, family in families.items():
            cm.add_site(site)
            db = RelationalDatabase(f"db-{site}")
            db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v REAL)")
            databases[site] = db
            rid = CMRID("relational", f"db-{site}").bind(
                family, params=("n",), table="t",
                key_column="k", value_column="v",
            )
            rid.offer(family, InterfaceKind.READ, bound_seconds=1.0)
            if site == "sf":
                rid.offer(family, InterfaceKind.NOTIFY, bound_seconds=2.0)
            else:
                rid.offer(family, InterfaceKind.WRITE, bound_seconds=2.0)
                rid.offer(family, InterfaceKind.NO_SPONTANEOUS_WRITE)
            cm.add_source(site, db, rid)

        hop1 = cm.declare(CopyConstraint("copy0", "copy1", params=("n",)))
        suggestions1 = cm.suggest(hop1)
        assert any(s.strategy.kind == "propagation" for s in suggestions1)
        cm.install(
            hop1,
            next(s for s in suggestions1
                 if s.strategy.kind == "propagation"),
        )

        hop2 = cm.declare(CopyConstraint("copy1", "copy2", params=("n",)))
        suggestions2 = cm.suggest(hop2, polling_period=seconds(5))
        # No notify offered at ny -> only polling applies.
        assert {s.strategy.kind for s in suggestions2} == {"polling"}
        cm.install(hop2, suggestions2[0])

        for offset, value in enumerate((10.0, 20.0, 30.0)):
            cm.scenario.sim.at(
                seconds(5 + offset * 20),
                lambda v=value: cm.spontaneous_write("copy0", ("k",), v),
            )
        cm.run(until=seconds(120))
        assert databases["eu"].query("SELECT v FROM t WHERE k = 'k'") == [
            (30.0,)
        ]
        reports = cm.check_guarantees()
        assert all(r.valid for r in reports.values())
