"""Integration test of the conditional-notify interface (Section 3.1.1).

The paper's example: notify only when the update changes the value by more
than 10%.  The relational translator must evaluate the condition *locally*
(the database filters before anything crosses the network), the filtered
updates must never reach the destination, and the catalog must withhold the
leads guarantee — a conditional feed can legitimately miss values.
"""

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import CopyConstraint
from repro.core.events import EventKind
from repro.core.guarantees import leads
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import seconds
from repro.ris.relational import RelationalDatabase

TEN_PERCENT = "abs(b - a) > a * 0.1"


def build(seed: int = 0):
    scenario = Scenario(seed=seed)
    cm = ConstraintManager(scenario)
    cm.add_site("src")
    cm.add_site("dst")

    src_db = RelationalDatabase("sensor")
    src_db.execute("CREATE TABLE r (k TEXT PRIMARY KEY, v REAL)")
    src_db.execute("INSERT INTO r VALUES ('level', 100.0)")
    rid_src = (
        CMRID("relational", "sensor")
        .bind("level", table="r", key_column="k", value_column="v",
              key="level")
        .offer(
            "level",
            InterfaceKind.CONDITIONAL_NOTIFY,
            bound_seconds=1.0,
            condition=TEN_PERCENT,
        )
    )
    cm.add_source("src", src_db, rid_src)

    dst_db = RelationalDatabase("dashboard")
    dst_db.execute("CREATE TABLE r (k TEXT PRIMARY KEY, v REAL)")
    rid_dst = (
        CMRID("relational", "dashboard")
        .bind("level_copy", table="r", key_column="k", value_column="v",
              key="level")
        .offer("level_copy", InterfaceKind.WRITE, bound_seconds=1.0)
        .offer("level_copy", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    cm.add_source("dst", dst_db, rid_dst)
    return cm, dst_db


class TestConditionalNotify:
    def test_small_changes_filtered_locally(self):
        cm, dst_db = build()
        constraint = cm.declare(CopyConstraint("level", "level_copy"))
        suggestions = cm.suggest(constraint)
        prop = next(
            s for s in suggestions if s.strategy.kind == "propagation"
        )
        assert not any(g.name.startswith("leads(") for g in prop.guarantees)
        assert "conditional" in prop.rationale
        cm.install(constraint, prop)

        updates = [
            (5, 105.0),   # +5%: filtered by the database
            (10, 150.0),  # +43%: notified
            (15, 155.0),  # +3%: filtered
            (20, 70.0),   # -55%: notified
        ]
        for at, value in updates:
            cm.scenario.sim.at(
                seconds(at),
                lambda v=value: cm.spontaneous_write("level", (), v),
            )
        cm.run(until=seconds(60))
        notifications = [
            e.desc.values[0]
            for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.NOTIFY
        ]
        assert notifications == [150.0, 70.0]
        assert dst_db.query("SELECT v FROM r WHERE k = 'level'") == [(70.0,)]

    def test_offered_guarantees_hold_despite_filtering(self):
        cm, __ = build(seed=1)
        constraint = cm.declare(CopyConstraint("level", "level_copy"))
        prop = next(
            s for s in cm.suggest(constraint)
            if s.strategy.kind == "propagation"
        )
        cm.install(constraint, prop)
        rng = cm.scenario.rngs.stream("cond-workload")
        value = 100.0
        for step in range(30):
            value = round(value * rng.uniform(0.8, 1.25), 2)
            cm.scenario.sim.at(
                seconds(5 + step * 5),
                lambda v=value: cm.spontaneous_write("level", (), v),
            )
        cm.run(until=seconds(220))
        for report in cm.check_guarantees().values():
            assert report.valid, report.counterexamples[:2]
        # ...and the *unoffered* leads guarantee is indeed violated, which
        # is exactly why the catalog withheld it.
        leads_report = leads("level", "level_copy").check(cm.scenario.trace)
        assert not leads_report.valid
