"""Integration test of the Section 7.1 arithmetic decomposition.

``X = Y + Z`` across three sites: Y and Z push notifications, caches live at
X's site, and a recompute rule (triggered by rule chaining on the private
cache writes) keeps X current.  The issued guarantees — per-operand cache
copies plus the derived sum-follows — must all verify against the trace.
"""

import pytest

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import ArithmeticConstraint
from repro.core.interfaces import InterfaceKind
from repro.core.items import DataItemRef
from repro.core.timebase import seconds


def build_arithmetic_cm(seed: int = 0):
    from repro.ris.relational import RelationalDatabase

    scenario = Scenario(seed=seed)
    cm = ConstraintManager(scenario)
    databases = {}
    layout = {
        "sx": ("X", (InterfaceKind.WRITE, InterfaceKind.READ)),
        "sy": ("Y", (InterfaceKind.NOTIFY, InterfaceKind.READ)),
        "sz": ("Z", (InterfaceKind.NOTIFY, InterfaceKind.READ)),
    }
    for site, (family, kinds) in layout.items():
        cm.add_site(site)
        db = RelationalDatabase(f"db-{site}")
        db.execute("CREATE TABLE c (k TEXT PRIMARY KEY, v REAL)")
        databases[family] = db
        rid = CMRID("relational", f"db-{site}").bind(
            family, table="c", key_column="k", value_column="v", key=family
        )
        for kind in kinds:
            rid.offer(family, kind, bound_seconds=1.0)
        cm.add_source(site, db, rid)
    constraint = cm.declare(ArithmeticConstraint("X", ("Y", "Z")))
    suggestions = cm.suggest(constraint, rule_delay=seconds(0.5))
    # Both transports apply (operands offer NOTIFY and READ); take the
    # notify-based decomposition, which carries the leads guarantees.
    assert all(s.strategy.kind == "arithmetic" for s in suggestions)
    notify_based = next(
        s for s in suggestions if "notifications" in s.rationale
    )
    installed = cm.install(constraint, notify_based)
    return cm, databases, installed


class TestArithmeticMaintenance:
    def test_x_tracks_the_sum(self):
        cm, databases, __ = build_arithmetic_cm()
        updates = [
            (5, "Y", 10.0),
            (10, "Z", 1.0),
            (20, "Y", 20.0),
            (30, "Z", 2.0),
            (40, "Y", 30.0),
        ]
        for at, family, value in updates:
            cm.scenario.sim.at(
                seconds(at),
                lambda f=family, v=value: cm.spontaneous_write(f, (), v),
            )
        cm.run(until=seconds(90))
        assert databases["X"].query(
            "SELECT v FROM c WHERE k = 'X'"
        ) == [(32.0,)]

    def test_all_issued_guarantees_verify(self):
        cm, __, installed = build_arithmetic_cm(seed=1)
        rng = cm.scenario.rngs.stream("arith-workload")
        time = 5.0
        for __ in range(40):
            family = rng.choice(["Y", "Z"])
            value = round(rng.uniform(0, 100), 1)
            cm.scenario.sim.at(
                seconds(time),
                lambda f=family, v=value: cm.spontaneous_write(f, (), v),
            )
            time += rng.uniform(2.0, 8.0)
        cm.run(until=seconds(time + 60))
        reports = cm.check_guarantees()
        assert len(reports) == 5  # 2 per operand + the sum-follows
        for report in reports.values():
            assert report.valid, str(report.counterexamples[:3])

    def test_no_recompute_until_all_caches_populated(self):
        cm, databases, __ = build_arithmetic_cm(seed=2)
        cm.scenario.sim.at(
            seconds(5), lambda: cm.spontaneous_write("Y", (), 7.0)
        )
        cm.run(until=seconds(30))
        # Z never arrived: the sum is not computable, X must stay untouched.
        assert databases["X"].query("SELECT v FROM c WHERE k = 'X'") == []

    def test_caches_recorded_with_provenance(self):
        cm, __, installed = build_arithmetic_cm(seed=3)
        cm.scenario.sim.at(
            seconds(5), lambda: cm.spontaneous_write("Y", (), 7.0)
        )
        cm.run(until=seconds(30))
        cache_ref = DataItemRef("Cached_Y")
        assert cm.scenario.trace.current_value(cache_ref) == 7.0
        cache_writes = [
            e for e in cm.scenario.trace.events
            if e.desc.item == cache_ref
        ]
        assert cache_writes[0].rule is not None


class TestChainDepthGuard:
    def test_self_triggering_rule_detected(self):
        from repro.core.dsl import parse_rule
        from repro.core.errors import SpecError
        from cm_helpers_root import build_two_site

        cm, *_ = build_two_site()
        # A rule that rewrites the item it triggers on: unbounded chaining.
        rule = parse_rule("W(Loop, b) -> [1] W(Loop, b)", name="loop")
        cm.locations.register("Loop", "sf")
        shell = cm.shell("sf")
        shell.install(rule, "sf")
        kick = parse_rule("N(salary1(n), b) -> [1] W(Loop, b)", name="kick")
        shell.install(kick, "sf")
        shell.translator_for("salary1").setup_notify("salary1")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 1.0)
        )
        with pytest.raises(SpecError, match="chaining"):
            cm.run(until=seconds(10))
