"""Integration test of the periodic-notify interface (Section 3.1.1).

A source that pushes its current value every p seconds (server-side
polling).  The catalog offers propagation without the leads guarantee;
all offered guarantees must verify; and the notification cadence must
actually be periodic.
"""

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import CopyConstraint
from repro.core.events import EventKind
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import seconds
from repro.ris.relational import RelationalDatabase


def build(seed: int = 0):
    scenario = Scenario(seed=seed)
    cm = ConstraintManager(scenario)
    cm.add_site("src")
    cm.add_site("dst")

    src_db = RelationalDatabase("ticker")
    src_db.execute("CREATE TABLE q (k TEXT PRIMARY KEY, v REAL)")
    src_db.execute("INSERT INTO q VALUES ('price', 100.0)")
    rid_src = (
        CMRID("relational", "ticker")
        .bind("price", table="q", key_column="k", value_column="v",
              key="price")
        .offer(
            "price",
            InterfaceKind.PERIODIC_NOTIFY,
            bound_seconds=0.5,
            period_seconds=10.0,
        )
    )
    cm.add_source("src", src_db, rid_src)

    dst_db = RelationalDatabase("mirror")
    dst_db.execute("CREATE TABLE q (k TEXT PRIMARY KEY, v REAL)")
    rid_dst = (
        CMRID("relational", "mirror")
        .bind("price_copy", table="q", key_column="k", value_column="v",
              key="price")
        .offer("price_copy", InterfaceKind.WRITE, bound_seconds=1.0)
        .offer("price_copy", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    cm.add_source("dst", dst_db, rid_dst)
    return cm, src_db, dst_db


class TestPeriodicNotify:
    def test_catalog_offers_propagation_without_leads(self):
        cm, *_ = build()
        constraint = cm.declare(CopyConstraint("price", "price_copy"))
        suggestions = cm.suggest(constraint)
        assert len(suggestions) == 1
        names = [g.name for g in suggestions[0].guarantees]
        assert any(n.startswith("follows(") for n in names)
        assert not any(n.startswith("leads(") for n in names)
        # kappa must include the 10 s period.
        metric = next(n for n in names if "κ=" in n)
        assert "13.5" in metric  # 10 period + 0.5 bound + 1 delay + 1 write + 1 margin

    def test_values_flow_and_guarantees_verify(self):
        cm, src_db, dst_db = build(seed=1)
        constraint = cm.declare(CopyConstraint("price", "price_copy"))
        cm.install(constraint, cm.suggest(constraint)[0])
        for at, value in ((12, 110.0), (35, 120.0)):
            cm.scenario.sim.at(
                seconds(at),
                lambda v=value: cm.spontaneous_write("price", (), v),
            )
        cm.run(until=seconds(60))
        assert dst_db.query("SELECT v FROM q WHERE k = 'price'") == [(120.0,)]
        for report in cm.check_guarantees().values():
            assert report.valid, report.counterexamples[:2]

    def test_notifications_are_periodic(self):
        cm, *_ = build(seed=2)
        constraint = cm.declare(CopyConstraint("price", "price_copy"))
        cm.install(constraint, cm.suggest(constraint)[0])
        cm.run(until=seconds(45))
        p_events = [
            e.time for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.PERIODIC
        ]
        assert p_events == [seconds(10), seconds(20), seconds(30), seconds(40)]
        notifies = [
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.NOTIFY
        ]
        assert len(notifies) == 4
        # Provenance: each N chains to its P event via the interface rule.
        for event in notifies:
            assert event.trigger is not None
            assert event.trigger.desc.kind is EventKind.PERIODIC

    def test_quick_double_update_misses_one(self):
        from repro.core.guarantees import leads

        cm, *_ = build(seed=3)
        constraint = cm.declare(CopyConstraint("price", "price_copy"))
        cm.install(constraint, cm.suggest(constraint)[0])
        # Two updates inside one 10 s period: the first is never pushed.
        cm.scenario.sim.at(
            seconds(12), lambda: cm.spontaneous_write("price", (), 111.0)
        )
        cm.scenario.sim.at(
            seconds(13), lambda: cm.spontaneous_write("price", (), 222.0)
        )
        cm.run(until=seconds(60))
        report = leads("price", "price_copy").check(cm.scenario.trace)
        assert not report.valid
        assert any("111" in ce for ce in report.counterexamples)
