"""Smoke tests: every experiment reproduces its claim at reduced scale.

These are the repository's own regression net for deliverable (d): if a
change breaks the reproduction of a paper claim, a test here fails.
Benchmarks run the full-scale versions; the parameters here are trimmed for
test-suite latency while keeping each claim decidable.
"""

import pytest

from repro.experiments import (
    ablations,
    e1_propagation,
    e2_polling,
    e3_caching,
    e4_demarcation,
    e5_referential,
    e6_monitor,
    e7_periodic,
    e8_failures,
    e9_reconfig,
    e10_scale,
)


class TestExperimentClaims:
    def test_e1_propagation(self):
        result = e1_propagation.run(rates=(1.0,), duration_seconds=120.0)
        assert result.claim_holds, result.render()

    def test_e2_polling(self):
        result = e2_polling.run(
            periods=(1.0, 30.0), duration_seconds=600.0
        )
        assert result.claim_holds, result.render()

    def test_e3_caching(self):
        result = e3_caching.run(
            duplicate_ratios=(0.0, 0.9), duration_seconds=120.0
        )
        assert result.claim_holds, result.render()

    def test_e4_demarcation(self):
        result = e4_demarcation.run(duration_seconds=200.0)
        assert result.claim_holds, result.render()

    def test_e5_referential(self):
        result = e5_referential.run(simulated_days=3, employees_per_day=8)
        assert result.claim_holds, result.render()

    def test_e6_monitor(self):
        result = e6_monitor.run(value_count=40)
        assert result.claim_holds, result.render()

    def test_e7_periodic(self):
        result = e7_periodic.run(simulated_days=2, account_count=5)
        assert result.claim_holds, result.render()

    def test_e8_failures(self):
        result = e8_failures.run()
        assert result.claim_holds, result.render()

    def test_e9_reconfig(self):
        result = e9_reconfig.run(duration=120.0)
        assert result.claim_holds, result.render()

    def test_e10_scale(self):
        result = e10_scale.run(
            replica_counts=(1, 4), duration=60.0
        )
        assert result.claim_holds, result.render()

    def test_e11_arithmetic(self):
        from repro.experiments import e11_arithmetic

        result = e11_arithmetic.run(update_count=30)
        assert result.claim_holds, result.render()

    def test_ablation_in_order(self):
        result = ablations.run_in_order_ablation(updates=150, duration=80.0)
        assert result.claim_holds, result.render()

    def test_ablation_echo(self):
        result = ablations.run_echo_ablation(duration=60.0)
        assert result.claim_holds, result.render()

    def test_ablation_clock_skew(self):
        result = ablations.run_clock_skew_ablation()
        assert result.claim_holds, result.render()


class TestRunnerCli:
    def test_list(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "ablation-order" in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["e99"]) == 2
