"""Integration tests of the Section 5 failure semantics."""

from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario
from repro.sim.failures import FailureKind, FailurePlan, FailureWindow
from repro.workloads import UpdateStream
from repro.workloads.generators import random_walk


def drive(salary, duration=200.0, drain=600.0):
    UpdateStream(
        salary.cm,
        "salary1",
        ["e1", "e2"],
        rate=0.3,
        duration=seconds(duration),
        value_model=random_walk(step=10.0, start=100.0),
    )
    salary.cm.run(until=seconds(duration + drain))
    return salary


class TestMetricFailure:
    def plan(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                site="ny",
                kind=FailureKind.METRIC,
                start=seconds(60),
                end=seconds(100),
                slowdown=500.0,
            )
        )
        return plan

    def test_board_marks_only_metric_guarantees(self):
        salary = drive(
            build_salary_scenario(
                "propagation", seed=20, failure_plan=self.plan()
            )
        )
        board = salary.cm.board
        horizon = salary.scenario.trace.horizon
        for guarantee in board.guarantees():
            invalid = bool(board.invalid_intervals(guarantee, horizon))
            assert invalid == guarantee.metric

    def test_work_is_delayed_not_lost(self):
        salary = drive(
            build_salary_scenario(
                "propagation", seed=21, failure_plan=self.plan()
            )
        )
        reports = salary.cm.check_guarantees()
        nonmetric = [r for n, r in reports.items() if "κ=" not in n]
        assert nonmetric and all(r.valid for r in nonmetric)


class TestLogicalFailure:
    def test_crash_invalidates_all_until_reset(self):
        salary = build_salary_scenario("propagation", seed=22)
        salary.cm.scenario.sim.at(
            seconds(60), lambda: salary.hq_db.set_available(False)
        )
        salary.cm.scenario.sim.at(
            seconds(100), lambda: salary.hq_db.set_available(True)
        )
        drive(salary)
        board = salary.cm.board
        for guarantee in board.guarantees():
            assert not board.is_valid(guarantee)  # sticky until reset
        board.reset_site("ny", salary.scenario.trace.horizon)
        for guarantee in board.guarantees():
            assert board.is_valid(guarantee)

    def test_writes_during_crash_are_lost(self):
        from repro.core.guarantees import leads

        salary = build_salary_scenario("propagation", seed=23)
        salary.cm.scenario.sim.at(
            seconds(60), lambda: salary.hq_db.set_available(False)
        )
        salary.cm.scenario.sim.at(
            seconds(100), lambda: salary.hq_db.set_available(True)
        )
        # One update squarely inside the outage.
        salary.cm.scenario.sim.at(
            seconds(70),
            lambda: salary.cm.spontaneous_write("salary1", ("e1",), 777.0),
        )
        salary.cm.scenario.sim.at(
            seconds(150),
            lambda: salary.cm.spontaneous_write("salary1", ("e1",), 888.0),
        )
        salary.cm.run(until=seconds(400))
        report = leads("salary1", "salary2").check(salary.scenario.trace)
        assert not report.valid
        assert any("777" in ce for ce in report.counterexamples)


class TestSilentLoss:
    def test_undetectable_but_harmful(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                site="sf",
                kind=FailureKind.SILENT_NOTIFY_LOSS,
                start=seconds(60),
                end=seconds(100),
                drop_probability=1.0,
            )
        )
        salary = build_salary_scenario(
            "propagation", seed=24, failure_plan=plan
        )
        salary.cm.scenario.sim.at(
            seconds(70),
            lambda: salary.cm.spontaneous_write("salary1", ("e1",), 777.0),
        )
        salary.cm.scenario.sim.at(
            seconds(150),
            lambda: salary.cm.spontaneous_write("salary1", ("e1",), 888.0),
        )
        salary.cm.run(until=seconds(400))
        # Nothing was detected...
        assert salary.cm.board.notices == []
        # ...but the value was genuinely missed.
        from repro.core.guarantees import leads

        report = leads("salary1", "salary2").check(salary.scenario.trace)
        assert not report.valid
