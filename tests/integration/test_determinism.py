"""Determinism: identical seeds produce byte-identical executions.

Reproducibility is load-bearing for the experiment harness (EXPERIMENTS.md
promises identical tables on re-runs), so it gets its own test: two
independently built scenarios with the same seed must record the same event
sequence, tick for tick, and different seeds must diverge.
"""

from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario
from repro.workloads import UpdateStream
from repro.workloads.generators import random_walk


def run_once(seed: int) -> list[str]:
    salary = build_salary_scenario("propagation", seed=seed)
    UpdateStream(
        salary.cm,
        "salary1",
        ["e1", "e2", "e3"],
        rate=1.0,
        duration=seconds(60),
        value_model=random_walk(step=10.0, start=100.0),
    )
    salary.cm.run(until=seconds(90))
    return [
        f"{e.time}|{e.site}|{e.desc}" for e in salary.scenario.trace.events
    ]


class TestDeterminism:
    def test_same_seed_same_execution(self):
        assert run_once(1234) == run_once(1234)

    def test_different_seeds_diverge(self):
        assert run_once(1) != run_once(2)
