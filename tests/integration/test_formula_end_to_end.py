"""The generic formula checker against a *real* toolkit execution.

The specialized checkers drive the experiments; here the enumerative
formula checker independently verifies the same paper guarantees over an
actual propagation run — the strongest cross-validation the repository has
(different checker, same trace, same verdicts).
"""

from repro.core.formula import FormulaChecker
from repro.core.guarantee_dsl import parse_guarantee
from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario


def run_small_scenario(seed: int = 42, updates: int = 12):
    salary = build_salary_scenario("propagation", seed=seed)
    rng = salary.cm.scenario.rngs.stream("formula-e2e")
    time = 5.0
    for index in range(updates):
        value = float(rng.randint(1, 9) * 1000 + index)
        salary.cm.scenario.sim.at(
            seconds(time),
            lambda v=value: salary.cm.spontaneous_write(
                "salary1", ("e1",), v
            ),
        )
        time += rng.uniform(4.0, 12.0)
    salary.cm.run(until=seconds(time + 30))
    return salary


class TestFormulaOnRealExecution:
    def test_paper_guarantees_hold_generically(self):
        salary = run_small_scenario()
        trace = salary.scenario.trace
        formulas = {
            "g1": "(salary1('e1') = y)@t1 "
                  "=> (salary2('e1') = y)@t0 & t0 <= t1 "
                  "& (salary1('e1') = y)@t2 & t2 < t1",
            "g4": "(salary2('e1') = y)@t1 "
                  "=> (salary1('e1') = y)@t2 & t1 - 6 < t2 & t2 < t1",
        }
        # g4 is the paper's metric guarantee (4) verbatim.
        checker = FormulaChecker(parse_guarantee(formulas["g4"]))
        assert checker.check(trace) == []

    def test_generic_checker_agrees_with_specialized(self):
        from repro.core.guarantees import follows

        salary = run_small_scenario(seed=7)
        trace = salary.scenario.trace
        specialized = follows(
            "salary1", "salary2", within_seconds=6
        ).check(trace)
        generic = FormulaChecker(
            parse_guarantee(
                "(salary2('e1') = y)@t1 => (salary1('e1') = y)@t2 "
                "& t1 - 6 < t2 & t2 < t1"
            )
        ).check(trace)
        assert specialized.valid == (not generic)

    def test_generic_checker_catches_a_broken_run(self):
        salary = run_small_scenario(seed=9)
        # Sabotage the copy *behind the CM's back* after the run: the trace
        # gains a spontaneous write at HQ the strategy never made.
        salary.cm.spontaneous_write("salary2", ("e1",), 123456.0)
        salary.cm.run(until=salary.scenario.sim.now + seconds(5))
        trace = salary.scenario.trace
        generic = FormulaChecker(
            parse_guarantee(
                "(salary2('e1') = y)@t1 => (salary1('e1') = y)@t2 & t2 < t1"
            )
        ).check(trace)
        assert generic
        assert any(v.values.get("y") == 123456.0 for v in generic)
