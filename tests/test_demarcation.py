"""Tests for the Demarcation Protocol, including an adversarial property
test: under arbitrary interleaved update attempts at both sites, the global
invariant X <= Y and the limit invariant Lx <= Ly must hold at every
recorded instant."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import InequalityConstraint
from repro.core.interfaces import InterfaceKind
from repro.core.items import DataItemRef
from repro.core.timebase import seconds
from repro.protocols.demarcation import SlackPolicy
from repro.ris.relational import RelationalDatabase


def build_protocol(policy=SlackPolicy.SPLIT, initial_x=0.0, initial_y=100.0,
                   initial_limit=50.0, seed=0):
    scenario = Scenario(seed=seed)
    cm = ConstraintManager(scenario)
    cm.add_site("sx")
    cm.add_site("sy")
    for site, family in (("sx", "X"), ("sy", "Y")):
        db = RelationalDatabase(f"db-{family}")
        db.execute("CREATE TABLE c (k TEXT PRIMARY KEY, v REAL)")
        rid = (
            CMRID("relational", f"db-{family}")
            .bind(family, table="c", key_column="k", value_column="v",
                  key=family)
            .offer(family, InterfaceKind.READ, bound_seconds=1.0)
            .offer(family, InterfaceKind.WRITE, bound_seconds=1.0)
        )
        cm.add_source(site, db, rid)
    constraint = cm.declare(InequalityConstraint("X", "Y"))
    suggestion = cm.suggest(constraint, demarcation_policy=policy)[0]
    installed = cm.install(
        constraint,
        suggestion,
        initial_x=initial_x,
        initial_y=initial_y,
        initial_limit=initial_limit,
    )
    return cm, installed.native_protocol, installed


def invariant_holds_throughout(cm) -> bool:
    reports = cm.check_guarantees()
    return all(r.valid for r in reports.values())


class TestBasics:
    def test_safe_updates_apply_immediately(self):
        cm, protocol, __ = build_protocol()
        cm.scenario.sim.at(
            seconds(1), lambda: protocol.x_agent.attempt_update(30.0)
        )
        cm.run(until=seconds(5))
        assert protocol.x_agent.value == 30.0
        assert protocol.x_agent.stats.updates_applied == 1

    def test_local_violating_update_is_denied_without_handshake_when_frozen(self):
        cm, protocol, __ = build_protocol(policy=SlackPolicy.FROZEN)
        cm.scenario.sim.at(
            seconds(1), lambda: protocol.x_agent.attempt_update(80.0)
        )
        cm.run(until=seconds(10))
        assert protocol.x_agent.value == 0.0
        assert protocol.x_agent.stats.updates_denied == 1
        assert protocol.x_agent.stats.requests_sent == 0

    def test_handshake_grants_slack(self):
        cm, protocol, __ = build_protocol(policy=SlackPolicy.EXACT)
        cm.scenario.sim.at(
            seconds(1), lambda: protocol.x_agent.attempt_update(80.0)
        )
        cm.run(until=seconds(10))
        assert protocol.x_agent.value == 80.0
        assert protocol.x_agent.limit >= 80.0
        assert protocol.y_agent.limit >= protocol.x_agent.limit

    def test_infeasible_request_is_denied_but_safe(self):
        cm, protocol, __ = build_protocol()
        cm.scenario.sim.at(
            seconds(1), lambda: protocol.x_agent.attempt_update(150.0)
        )
        cm.run(until=seconds(10))
        assert protocol.x_agent.value == 0.0  # denied: Y is only 100
        assert invariant_holds_throughout(cm)

    def test_y_side_lowering_handshake(self):
        cm, protocol, __ = build_protocol(policy=SlackPolicy.EXACT)
        cm.scenario.sim.at(
            seconds(1), lambda: protocol.y_agent.attempt_update(20.0)
        )
        cm.run(until=seconds(10))
        assert protocol.y_agent.value == 20.0
        assert invariant_holds_throughout(cm)

    def test_initial_state_validation(self):
        with pytest.raises(ValueError):
            build_protocol(initial_x=10.0, initial_y=5.0)
        with pytest.raises(ValueError):
            build_protocol(initial_limit=500.0)

    def test_limits_recorded_in_trace(self):
        cm, protocol, __ = build_protocol()
        assert cm.scenario.trace.current_value(
            DataItemRef("Limit_X")
        ) == 50.0


class TestAdversarialProperty:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["x", "y"]),
                st.floats(-50, 150, allow_nan=False),
                st.integers(1, 5),
            ),
            min_size=1,
            max_size=25,
        ),
        st.sampled_from(list(SlackPolicy)),
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants_hold_under_arbitrary_interleavings(
        self, attempts, policy
    ):
        cm, protocol, __ = build_protocol(policy=policy)
        time = 0
        for side, target, gap in attempts:
            time += seconds(gap)
            agent = protocol.x_agent if side == "x" else protocol.y_agent
            cm.scenario.sim.at(
                time, lambda a=agent, t=target: a.attempt_update(t)
            )
        cm.run(until=time + seconds(30))
        assert invariant_holds_throughout(cm)
        # Bookkeeping must reconcile: every attempt either applied or denied
        # (none silently lost), modulo still-pending handshakes at horizon.
        for agent in (protocol.x_agent, protocol.y_agent):
            resolved = (
                agent.stats.updates_applied + agent.stats.updates_denied
            )
            assert resolved + len(agent._pending) == (
                agent.stats.updates_attempted
            )
