"""Scenario helpers importable from root-level test modules."""

from __future__ import annotations

import pytest

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.core.interfaces import InterfaceKind
from repro.ris.relational import RelationalDatabase


def build_two_site(seed: int = 0, offer_notify: bool = True):
    """A minimal sf/ny salary pair (mirrors tests/cm/cm_helpers.py)."""
    scenario = Scenario(seed=seed)
    cm = ConstraintManager(scenario)
    cm.add_site("sf")
    cm.add_site("ny")
    branch = RelationalDatabase("branch")
    branch.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_a = CMRID("relational", "branch").bind(
        "salary1",
        params=("n",),
        table="employees",
        key_column="empid",
        value_column="salary",
    )
    if offer_notify:
        rid_a.offer("salary1", InterfaceKind.NOTIFY, bound_seconds=2.0)
    rid_a.offer("salary1", InterfaceKind.READ, bound_seconds=1.0)
    cm.add_source("sf", branch, rid_a)
    hq = RelationalDatabase("hq")
    hq.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_b = (
        CMRID("relational", "hq")
        .bind(
            "salary2",
            params=("n",),
            table="employees",
            key_column="empid",
            value_column="salary",
        )
        .offer("salary2", InterfaceKind.WRITE, bound_seconds=2.0)
        .offer("salary2", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    cm.add_source("ny", hq, rid_b)
    return cm, branch, hq


def build_banking_site():
    """A single-site balance1 holder for banking-workload tests."""
    scenario = Scenario(seed=0)
    cm = ConstraintManager(scenario)
    cm.add_site("branch")
    db = RelationalDatabase("ledger")
    db.execute("CREATE TABLE accounts (acct TEXT PRIMARY KEY, balance REAL)")
    rid = CMRID("relational", "ledger").bind(
        "balance1",
        params=("n",),
        table="accounts",
        key_column="acct",
        value_column="balance",
    ).offer("balance1", InterfaceKind.READ, bound_seconds=1.0)
    cm.add_source("branch", db, rid)
    return cm


@pytest.fixture
def two_site():
    return build_two_site()
