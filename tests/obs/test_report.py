"""Tests for the structured run report assembled by ``cm.run_report()``."""

from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario


def run_salary(**kwargs):
    salary = build_salary_scenario("propagation", **kwargs)
    cm = salary.cm
    cm.spontaneous_write("salary1", ("e1",), 50_000.0)
    cm.spontaneous_write("salary1", ("e2",), 60_000.0)
    cm.run(seconds(30))
    return salary, cm


class TestRunReport:
    def test_dispatch_section_is_the_stats_adapter(self):
        __, cm = run_salary()
        report = cm.run_report()
        assert report.horizon_s == 30.0
        assert report.dispatch == cm.stats()
        assert report.dispatch["total"]["rules_fired"] >= 2
        # The stats() adapter reads the same registry series that the
        # report and the Prometheus export read.
        registry = cm.scenario.obs.metrics
        for site in ("sf", "ny"):
            assert (
                registry.value("shell_events_processed", site=site)
                == cm.shell(site).stats()["events_processed"]
            )

    def test_constraint_firings_come_from_rule_counters(self):
        __, cm = run_salary()
        report = cm.run_report()
        (entry,) = report.constraints
        assert entry["kind"] == "propagation"
        assert sum(entry["rules_fired"].values()) == (
            report.dispatch["total"]["rules_fired"]
        )

    def test_propagation_network_and_translator_sections(self):
        __, cm = run_salary()
        report = cm.run_report()
        (prop,) = report.propagation
        assert prop["family"] == "salary2"
        assert prop["count"] == 2
        assert 0 < prop["mean_s"] <= prop["max_s"]

        net = report.network
        assert net["messages_sent"] == cm.scenario.network.messages_sent > 0
        assert net["messages_dropped"] == 0
        channels = {entry["channel"] for entry in net["channels"]}
        assert "sf->ny" in channels

        by_source = {entry["source"]: entry for entry in report.translators}
        assert set(by_source) == {"branch", "hq"}
        assert by_source["branch"]["notifications_delivered"] == 2
        assert by_source["hq"]["writes_requested"] == 2
        assert by_source["hq"]["ris_ops"].get("sql_insert", 0) >= 2

    def test_guarantees_failures_and_scheduler(self):
        __, cm = run_salary()
        report = cm.run_report()
        assert report.failures["total"] == 0
        assert report.guarantees
        for entry in report.guarantees:
            assert entry["standing"] is True
            assert 0.0 <= entry["staleness_fraction"] <= 1.0
        assert any(entry["metric"] for entry in report.guarantees)
        assert report.scheduler["callbacks_run"] > 0
        assert report.traces == {}  # tracing was off

    def test_render_and_serialisation_round_trip(self):
        import json

        __, cm = run_salary()
        report = cm.run_report()
        text = report.render()
        assert text.startswith("run report (horizon 30s)")
        assert "constraint" in text and "propagation salary2" in text
        parsed = json.loads(report.to_json())
        assert parsed == json.loads(json.dumps(report.to_dict(), default=str))

    def test_trace_index_counters(self):
        __, cm = run_salary()
        report = cm.run_report()
        index = report.trace_index
        assert index == cm.scenario.trace.stats()
        assert index["events_recorded"] == len(cm.scenario.trace.events)
        assert index["state_versions"] > 0
        assert "trace:" in report.render()
        assert report.to_dict()["trace_index"] == index

    def test_write_to_file(self, tmp_path):
        import json

        __, cm = run_salary()
        path = cm.run_report().write_to(tmp_path / "report.json")
        data = json.loads(path.read_text())
        assert data["horizon_s"] == 30.0
        assert data["dispatch"]["total"]["rules_fired"] >= 2
