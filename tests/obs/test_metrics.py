"""Tests for the metrics registry: counters, gauges, histograms, labels."""

import pytest

from repro.core.timebase import seconds
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BOUNDS,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestRegistryInterning:
    def test_same_labels_return_same_counter(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", site="sf")
        second = registry.counter("hits", site="sf")
        assert first is second
        first.inc()
        assert registry.value("hits", site="sf") == 1

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        one = registry.counter("net", src="a", dst="b")
        other = registry.counter("net", dst="b", src="a")
        assert one is other

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", site="sf").inc(3)
        registry.counter("hits", site="ny").inc(4)
        assert registry.value("hits", site="sf") == 3
        assert registry.value("hits", site="ny") == 4
        assert registry.total("hits") == 7
        assert len(registry.series("hits")) == 2

    def test_name_bound_to_one_instrument_type(self):
        registry = MetricsRegistry()
        registry.counter("mixed", site="sf")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("mixed", site="ny")

    def test_get_returns_none_for_untouched_series(self):
        registry = MetricsRegistry()
        assert registry.get("nothing") is None
        assert registry.value("nothing") == 0

    def test_len_and_iter(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3
        assert {type(i) for i in registry} == {Counter, Gauge, Histogram}


class TestGauge:
    def test_high_watermark(self):
        gauge = Gauge("depth", ())
        gauge.inc()
        gauge.inc()
        gauge.dec()
        gauge.inc()
        assert gauge.value == 2
        assert gauge.high == 2
        gauge.set(7)
        gauge.set(1)
        assert gauge.value == 1
        assert gauge.high == 7


class TestHistogram:
    def test_counts_sum_and_extrema(self):
        hist = Histogram("lat", ())
        for value in (seconds(0.004), seconds(0.4), seconds(2.0)):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == seconds(2.404)
        assert hist.min == seconds(0.004)
        assert hist.max == seconds(2.0)
        assert hist.mean == pytest.approx(seconds(2.404) / 3)

    def test_bucketing_is_cumulative_via_quantile(self):
        hist = Histogram("lat", ())
        for __ in range(99):
            hist.observe(seconds(0.001))
        hist.observe(seconds(100.0))
        assert hist.quantile(0.5) == seconds(0.001)
        assert hist.quantile(0.99) == seconds(0.001)
        assert hist.quantile(1.0) == seconds(300.0)

    def test_observation_beyond_last_bound_uses_exact_max(self):
        hist = Histogram("lat", ())
        hist.observe(seconds(1000.0))
        assert hist.quantile(0.5) == seconds(1000.0)
        assert hist.summary()["max_s"] == 1000.0

    def test_empty_histogram_summary(self):
        hist = Histogram("lat", ())
        assert hist.quantile(0.5) is None
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["min_s"] is None

    def test_custom_bounds(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(seconds(1), seconds(2)))
        assert hist.bounds == (seconds(1), seconds(2))
        default = registry.histogram("other")
        assert default.bounds == DEFAULT_LATENCY_BOUNDS


class TestSnapshot:
    def test_snapshot_groups_by_metric_name(self):
        registry = MetricsRegistry()
        registry.counter("hits", site="sf").inc(2)
        registry.gauge("depth").set(4)
        registry.histogram("lat", family="y").observe(seconds(0.5))
        snap = registry.snapshot()
        assert snap["hits"] == [{"labels": {"site": "sf"}, "value": 2}]
        assert snap["depth"][0]["high"] == 4
        assert snap["lat"][0]["count"] == 1
        assert snap["lat"][0]["labels"] == {"family": "y"}
