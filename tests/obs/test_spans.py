"""Tests for causal spans: tracer stack, binding, and tree queries."""

import pytest

from repro.core.timebase import seconds
from repro.obs.spans import SpanContext, SpanTree, Tracer


def make_chain(tracer: Tracer):
    """root(a) -> child(net) -> grandchild(b), with explicit pushes."""
    root = tracer.start("source.write", "a", seconds(1))
    tracer.push(root)
    child = tracer.start("net.send", "a", seconds(2))
    tracer.finish(child, seconds(3))
    tracer.push(child)
    grandchild = tracer.start("shell.fire", "b", seconds(3))
    tracer.finish(grandchild, seconds(4))
    tracer.pop()
    tracer.pop()
    tracer.finish(root, seconds(2))
    return root, child, grandchild


class TestTracer:
    def test_parenting_follows_activation_stack(self):
        tracer = Tracer()
        root, child, grandchild = make_chain(tracer)
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert {s.root_id for s in (root, child, grandchild)} == {root.span_id}

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        outer = tracer.start("outer", "a", 0)
        tracer.push(outer)
        implicit = tracer.start("implicit", "a", 1)
        assert implicit.parent_id == outer.span_id
        tracer.pop()
        other_root = tracer.start("other", "b", 2)
        explicit = tracer.start("child", "b", 3, parent=other_root)
        assert explicit.parent_id == other_root.span_id
        assert explicit.root_id == other_root.span_id

    def test_bind_reactivates_captured_span_later(self):
        tracer = Tracer()
        root = tracer.start("op", "a", 0)
        tracer.push(root)

        recorded = []

        def completion():
            recorded.append(tracer.current)

        bound = tracer.bind(completion)
        tracer.pop()
        assert tracer.current is None
        bound()
        assert recorded == [root]
        assert tracer.current is None

    def test_bind_without_activation_is_identity(self):
        tracer = Tracer()

        def fn():
            pass

        assert tracer.bind(fn) is fn

    def test_on_finish_streams_finished_spans(self):
        tracer = Tracer()
        seen = []
        tracer.on_finish(seen.append)
        assert tracer.enabled
        span = tracer.start("op", "a", 0)
        tracer.finish(span, seconds(1))
        assert seen == [span]


class TestSpanTree:
    def test_connected_tree_and_queries(self):
        tracer = Tracer()
        root, child, grandchild = make_chain(tracer)
        trees = list(tracer.trees())
        assert len(trees) == 1
        tree = trees[0]
        assert tree.root is root
        assert tree.connected
        assert len(tree) == 3
        assert tree.sites == ["a", "b"]
        assert tree.find("net.send") == [child]
        assert tree.children(root) == [child]

    def test_end_to_end_is_root_start_to_latest_finish(self):
        tracer = Tracer()
        root, __, grandchild = make_chain(tracer)
        tree = tracer.tree(root)
        assert tree.end_to_end() == grandchild.end - root.start == seconds(3)

    def test_multiple_roots_make_multiple_trees(self):
        tracer = Tracer()
        make_chain(tracer)
        make_chain(tracer)
        assert len(list(tracer.trees())) == 2

    def test_render_indents_children(self):
        tracer = Tracer()
        make_chain(tracer)
        text = next(iter(tracer.trees())).render()
        lines = text.splitlines()
        assert lines[0].startswith("source.write@a")
        assert lines[1].startswith("  net.send@a")
        assert lines[2].startswith("    shell.fire@b")

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            SpanTree([])

    def test_span_to_dict(self):
        tracer = Tracer()
        span = tracer.start("op", "a", seconds(1), ref="x")
        tracer.finish(span, seconds(2))
        record = span.to_dict()
        assert record["type"] == "span"
        assert record["start_s"] == 1.0
        assert record["end_s"] == 2.0
        assert record["attrs"] == {"ref": "x"}


class TestSpanContext:
    def test_span_context_carries_trace_and_span_ids(self):
        tracer = Tracer()
        root = tracer.start("source.write", "a", seconds(1))
        tracer.push(root)
        child = tracer.start("net.send", "a", seconds(2))
        context = child.context
        assert context.trace_id == root.span_id
        assert context.span_id == child.span_id
        assert context.root_id == context.trace_id

    def test_wire_round_trip(self):
        context = SpanContext(trace_id=7, span_id=12)
        wire = context.to_wire()
        assert wire == {"trace_id": 7, "span_id": 12}
        assert SpanContext.from_wire(wire) == context

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            "not-a-dict",
            {},
            {"trace_id": 7},
            {"trace_id": "7", "span_id": 12},
            {"trace_id": 7, "span_id": None},
        ],
    )
    def test_from_wire_rejects_malformed_payloads(self, payload):
        assert SpanContext.from_wire(payload) is None

    def test_remote_child_joins_tree_by_context(self):
        """Two tracers on either side of a 'socket': the receiver parents
        its span on the shipped context and the ids line up — the chain
        reconnects when spans are merged by id, without shared objects."""
        sender = Tracer()
        send_span = sender.start("net.send", "a", seconds(1))
        sender.finish(send_span, seconds(2))
        wire = send_span.context.to_wire()

        receiver = Tracer()
        receiver._next_id = sender._next_id  # distinct id space, as on a peer
        context = SpanContext.from_wire(wire)
        receiver.push(context)
        remote = receiver.start("shell.fire", "b", seconds(2))
        receiver.finish(remote, seconds(3))
        receiver.pop()
        assert receiver.current is None
        assert remote.parent_id == send_span.span_id
        assert remote.root_id == send_span.root_id

        tree = SpanTree([send_span, remote])
        assert tree.connected
        assert tree.sites == ["a", "b"]
        assert tree.end_to_end() == seconds(2)

    def test_context_activation_parents_like_a_span(self):
        tracer = Tracer()
        context = SpanContext(trace_id=40, span_id=41)
        tracer.push(context)
        assert tracer.current is context
        child = tracer.start("op", "b", seconds(1))
        assert child.parent_id == 41
        assert child.root_id == 40
