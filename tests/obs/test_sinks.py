"""Tests for the structured sinks: JSONL records and Prometheus text."""

import io
import json

from repro.core.events import spontaneous_write_desc
from repro.core.items import DataItemRef
from repro.core.timebase import seconds
from repro.core.trace import ExecutionTrace
from repro.obs import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import JsonlSink, PrometheusExporter, render_prometheus


def read_jsonl(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestJsonlSink:
    def test_emit_to_path(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"type": "span", "name": "op"})
            sink.emit({"type": "note", "ref": DataItemRef("x", ("k",))})
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"type": "span", "name": "op"}
        assert json.loads(lines[1])["ref"] == "x('k')"
        assert sink.records_written == 2

    def test_emit_event_record(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        trace = ExecutionTrace()
        event = trace.record(
            seconds(5), "sf", spontaneous_write_desc(DataItemRef("x"), 1.0, 2)
        )
        sink.emit_event(event)
        (record,) = read_jsonl(buffer)
        assert record["type"] == "event"
        assert record["site"] == "sf"
        assert record["time_s"] == 5.0
        assert record["kind"] == "Ws"
        assert record["rule"] is None

    def test_emit_metrics_snapshot(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        registry = MetricsRegistry()
        registry.counter("hits", site="sf").inc()
        sink.emit_metrics(registry)
        (record,) = read_jsonl(buffer)
        assert record["type"] == "metrics"
        assert record["metrics"]["hits"][0]["value"] == 1


class TestPrometheus:
    def test_counter_gauge_and_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("shell_events_processed", site="sf").inc(3)
        gauge = registry.gauge("net_in_flight", src="sf", dst="ny")
        gauge.inc(2)
        registry.histogram("propagation_latency", family="y").observe(
            seconds(0.3)
        )
        text = render_prometheus(registry)
        assert "# TYPE shell_events_processed_total counter" in text
        assert 'shell_events_processed_total{site="sf"} 3' in text
        assert 'net_in_flight{dst="ny",src="sf"} 2' in text
        assert "# TYPE propagation_latency histogram" in text
        # The 0.3s observation lands in the 0.5s bucket cumulatively.
        assert 'propagation_latency_bucket{family="y",le="0.5"} 1' in text
        assert 'propagation_latency_bucket{family="y",le="0.25"} 0' in text
        assert 'propagation_latency_bucket{family="y",le="+Inf"} 1' in text
        assert 'propagation_latency_count{family="y"} 1' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("ops", detail='say "hi"').inc()
        text = render_prometheus(registry)
        assert r'detail="say \"hi\""' in text

    def test_backslash_and_newline_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("ops", detail="a\\b\nc").inc()
        text = render_prometheus(registry)
        assert r'detail="a\\b\nc"' in text
        # The exposition stays line-oriented: one sample per line.
        assert 'detail="a\\b' not in text
        for line in text.splitlines():
            if line.startswith("ops_total"):
                assert line.endswith(" 1")

    def test_ms_histogram_renders_le_bounds_in_seconds(self):
        from repro.obs.metrics import WIRE_MS_BOUNDS

        registry = MetricsRegistry()
        hist = registry.histogram(
            "wire_latency_ms", bounds=WIRE_MS_BOUNDS, unit="ms",
            src="sf", dst="ny",
        )
        hist.observe(2.0)  # 2 milliseconds
        text = render_prometheus(registry)
        # Bounds declared in ms expose as seconds, the Prometheus
        # convention: the 2.5ms bound becomes le="0.0025" and the 2ms
        # observation lands in it cumulatively.
        assert (
            'wire_latency_ms_bucket{dst="ny",src="sf",le="0.0025"} 1' in text
        )
        assert (
            'wire_latency_ms_bucket{dst="ny",src="sf",le="0.001"} 0' in text
        )
        assert 'wire_latency_ms_sum{dst="ny",src="sf"} 0.002' in text
        assert 'wire_latency_ms_count{dst="ny",src="sf"} 1' in text

    def test_ns_histogram_renders_le_bounds_in_seconds(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "rule_exec_ns", bounds=(1_000.0, 1_000_000.0), unit="ns",
            rule="r1",
        )
        hist.observe(500.0)  # 500 nanoseconds
        text = render_prometheus(registry)
        assert 'rule_exec_ns_bucket{rule="r1",le="1e-06"} 1' in text
        assert 'rule_exec_ns_sum{rule="r1"} 5e-07' in text

    def test_tick_histograms_still_render_le_in_seconds(self):
        registry = MetricsRegistry()
        registry.histogram("propagation_latency").observe(seconds(0.3))
        text = render_prometheus(registry)
        assert 'propagation_latency_bucket{le="0.5"} 1' in text

    def test_exporter_write_to(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        path = PrometheusExporter(registry).write_to(tmp_path / "metrics.txt")
        assert "hits_total 1" in path.read_text()


class TestInstrumentation:
    def test_disabled_by_default(self):
        obs = Instrumentation()
        assert not obs.enabled
        assert not obs.tracer.enabled
        assert obs.sinks == []

    def test_attach_sink_enables_and_streams_spans(self):
        buffer = io.StringIO()
        obs = Instrumentation()
        obs.attach_jsonl(buffer)
        assert obs.enabled
        span = obs.tracer.start("op", "sf", seconds(1))
        obs.tracer.finish(span, seconds(2))
        obs.flush()
        records = read_jsonl(buffer)
        assert [r["type"] for r in records] == ["span", "metrics"]
        assert records[0]["name"] == "op"

    def test_enable_tracing_without_sink(self):
        obs = Instrumentation()
        obs.enable_tracing()
        assert obs.enabled
        assert obs.sinks == []
        span = obs.tracer.start("op", "sf", 0)
        obs.tracer.finish(span, seconds(1))
        assert len(obs.tracer.spans) == 1
