"""Schema snapshot for ``RunReport.to_dict()``.

The run report's JSON is consumed outside the process — CI artifacts,
the perf-trajectory tooling, anything diffing reports across PRs — so
its key set is a contract.  This snapshot pins the top-level keys
exactly and the key sets of each structured section; adding a field is a
deliberate snapshot update here, and removing or renaming one is loud.
"""

import json

from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario

TOP_LEVEL_KEYS = [
    "horizon_s",
    "dispatch",
    "constraints",
    "propagation",
    "network",
    "translators",
    "failures",
    "guarantees",
    "scheduler",
    "traces",
    "trace_index",
    "lint",
    "rule_profile",
    "flight",
    "batching",
    "parallelism",
    "processes",
]

DISPATCH_TOTAL_KEYS = {
    "events_processed",
    "candidates_considered",
    "rules_fired",
    "rules_installed",
    "rules_compiled",
    "rules_fallback",
    "batches_processed",
    "batch_events",
    "match_hits",
    "match_misses",
}

NETWORK_KEYS = {"messages_sent", "messages_dropped", "channels"}
CHANNEL_KEYS = {
    "channel", "count", "mean_s", "min_s", "max_s", "p50_s", "p99_s",
    "max_in_flight",
}
FAILURES_KEYS = {"total", "metric", "logical", "recoveries", "notices"}
GUARANTEE_KEYS = {
    "name", "metric", "standing", "staleness_s", "staleness_fraction",
}
CONSTRAINT_KEYS = {"constraint", "kind", "strategy", "rules_fired"}
PROPAGATION_KEYS = {
    "family", "count", "mean_s", "min_s", "max_s", "p50_s", "p99_s",
}
TRANSLATOR_KEYS = {
    "source", "site", "kind", "notifications_delivered",
    "notifications_suppressed", "reads_requested", "writes_requested",
    "ris_ops",
}
SCHEDULER_KEYS = {"callbacks_run", "max_queue_depth"}
TRACES_KEYS = {"trees", "spans", "max_end_to_end_s"}
FLIGHT_KEYS = {"capacity", "records_taken", "ring_sizes", "dumps"}
FLIGHT_DUMP_KEYS = {"reason", "time", "time_s", "records"}
FLIGHT_RECORD_KEYS = {"time", "time_s", "site", "kind", "detail"}
RULE_PROFILE_KEYS = {"match_hits", "match_misses", "fired", "exec_ns"}
BATCHING_KEYS = {
    "batches_processed", "batch_events", "batch_size", "shards", "threads",
    "workers", "executor", "events_by_shard", "barrier_events",
}
BATCH_SIZE_KEYS = {"count", "unit", "mean", "min", "max", "p50", "p99"}
PARALLELISM_KEYS = {"enabled", "sites", "sanitizer"}
PARALLELISM_SITE_KEYS = {"enabled", "hoisted_conditions", "plan"}
PARALLELISM_PLAN_KEYS = {
    "site", "phases", "certified_pairs", "barrier_reasons", "conflicts",
    "hoistable", "store_free", "fallback_rules",
}
SANITIZER_KEYS = {
    "enabled", "ok", "races", "race_count", "predicted_conflicts",
    "reads", "writes", "receives", "sites",
}


def build_report():
    salary = build_salary_scenario("propagation", batch_max=32)
    cm = salary.cm
    cm.scenario.obs.enable_tracing()
    flight = cm.scenario.obs.enable_flight()
    cm.scenario.obs.enable_rule_profiling()
    cm.spontaneous_write("salary1", ("e1",), 50_000.0)
    cm.run(seconds(30))
    flight.dump("schema-test", cm.scenario.sim.now)
    return cm.run_report()


class TestRunReportSchema:
    def test_top_level_keys_pinned_in_order(self):
        data = build_report().to_dict()
        assert list(data) == TOP_LEVEL_KEYS

    def test_section_key_sets(self):
        data = build_report().to_dict()
        assert set(data["dispatch"]["total"]) == DISPATCH_TOTAL_KEYS
        for site in ("sf", "ny"):
            assert set(data["dispatch"][site]) == DISPATCH_TOTAL_KEYS
        assert set(data["network"]) == NETWORK_KEYS
        for channel in data["network"]["channels"]:
            assert set(channel) == CHANNEL_KEYS
        assert set(data["failures"]) == FAILURES_KEYS
        for entry in data["guarantees"]:
            assert set(entry) == GUARANTEE_KEYS
        for entry in data["constraints"]:
            assert set(entry) == CONSTRAINT_KEYS
        for entry in data["propagation"]:
            assert set(entry) == PROPAGATION_KEYS
        for entry in data["translators"]:
            assert set(entry) == TRANSLATOR_KEYS
        assert set(data["scheduler"]) == SCHEDULER_KEYS
        assert set(data["traces"]) == TRACES_KEYS

    def test_flight_section_schema(self):
        data = build_report().to_dict()
        flight = data["flight"]
        assert set(flight) == FLIGHT_KEYS
        assert flight["dumps"], "the explicit dump should appear"
        for dump in flight["dumps"]:
            assert set(dump) == FLIGHT_DUMP_KEYS
            for record in dump["records"]:
                assert set(record) == FLIGHT_RECORD_KEYS

    def test_batching_section_schema(self):
        data = build_report().to_dict()
        assert data["batching"], "batching was enabled (batch_max=32)"
        for entry in data["batching"].values():
            assert set(entry) == BATCHING_KEYS
            assert entry["batches_processed"] >= 1
            assert entry["batch_events"] >= 1
            assert set(entry["batch_size"]) == BATCH_SIZE_KEYS
            assert entry["batch_size"]["unit"] == "events"
            assert entry["shards"] == 1
            assert entry["workers"] == 0
            assert entry["executor"] == "serial"
            assert len(entry["events_by_shard"]) == entry["shards"]

    def test_parallelism_section_empty_without_the_features(self):
        data = build_report().to_dict()
        assert data["parallelism"] == {}

    def test_parallelism_section_schema(self):
        salary = build_salary_scenario(
            "propagation",
            batch_max=32,
            dispatch_shards=2,
            parallel_phases=True,
            sanitize=True,
        )
        cm = salary.cm
        cm.spontaneous_write("salary1", ("e1",), 50_000.0)
        cm.run(seconds(30))
        data = cm.run_report().to_dict()
        section = data["parallelism"]
        assert set(section) == PARALLELISM_KEYS
        assert section["enabled"] is True
        assert section["sites"], "parallel phases were enabled"
        for entry in section["sites"].values():
            assert set(entry) == PARALLELISM_SITE_KEYS
            if entry["plan"] is not None:
                assert set(entry["plan"]) == PARALLELISM_PLAN_KEYS
        assert any(
            entry["plan"] is not None
            for entry in section["sites"].values()
        ), "at least one site has rules to plan"
        sanitizer = section["sanitizer"]
        assert set(sanitizer) == SANITIZER_KEYS
        assert sanitizer["enabled"] is True
        assert sanitizer["ok"] is True
        assert sanitizer["races"] == []
        cm.stop()

    def test_processes_section_disabled_on_in_process_runtimes(self):
        data = build_report().to_dict()
        # The sim kernel runs everything in one process; the section is
        # present (the key set is the contract) but explicitly disabled.
        # The proc runtime's populated shape is covered in
        # tests/runtime/test_proc_runtime.py.
        assert data["processes"] == {"enabled": False}

    def test_rule_profile_section_schema(self):
        data = build_report().to_dict()
        assert data["rule_profile"], "profiling was enabled"
        for site_profile in data["rule_profile"].values():
            for entry in site_profile.values():
                assert set(entry) == RULE_PROFILE_KEYS
                assert entry["exec_ns"]["unit"] == "ns"

    def test_whole_report_is_json_round_trippable(self):
        report = build_report()
        parsed = json.loads(report.to_json())
        assert list(parsed) == TOP_LEVEL_KEYS
        assert parsed["flight"]["dumps"][0]["reason"] == "schema-test"
