"""Tests for opt-in per-rule profiling in the dispatch hot path."""

from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario


def run_salary(profiled: bool):
    salary = build_salary_scenario("propagation")
    cm = salary.cm
    if profiled:
        cm.scenario.obs.enable_rule_profiling()
    cm.spontaneous_write("salary1", ("e1",), 50_000.0)
    cm.spontaneous_write("salary1", ("e2",), 60_000.0)
    cm.run(seconds(30))
    return salary, cm


class TestRuleProfiling:
    def test_off_by_default_and_stats_stay_zero(self):
        __, cm = run_salary(profiled=False)
        assert not cm.scenario.obs.rule_profiling
        total = cm.stats()["total"]
        assert total["match_hits"] == 0
        assert total["match_misses"] == 0
        for site in ("sf", "ny"):
            assert cm.shell(site).rule_profile() == {}

    def test_profiled_run_fires_the_same_rules(self):
        __, plain = run_salary(profiled=False)
        __, profiled = run_salary(profiled=True)
        assert (
            plain.stats()["total"]["rules_fired"]
            == profiled.stats()["total"]["rules_fired"]
        )

    def test_profile_counts_hits_misses_and_latency(self):
        __, cm = run_salary(profiled=True)
        profile = cm.shell("sf").rule_profile()
        assert profile, "the LHS shell should have profiled its rules"
        for name, entry in profile.items():
            assert entry["match_hits"] + entry["match_misses"] > 0
            assert entry["fired"] == entry["match_hits"]
        fired = [e for e in profile.values() if e["fired"]]
        assert fired, "the propagation rule should have fired"
        exec_summary = fired[0]["exec_ns"]
        assert exec_summary["unit"] == "ns"
        assert exec_summary["count"] == fired[0]["fired"]
        assert exec_summary["mean"] > 0

    def test_stats_aggregate_matches_per_rule_profile(self):
        __, cm = run_salary(profiled=True)
        for site in ("sf", "ny"):
            stats = cm.shell(site).stats()
            profile = cm.shell(site).rule_profile()
            assert stats["match_hits"] == sum(
                e["match_hits"] for e in profile.values()
            )
            assert stats["match_misses"] == sum(
                e["match_misses"] for e in profile.values()
            )
        total = cm.stats()["total"]
        assert total["match_hits"] == sum(
            cm.shell(site).stats()["match_hits"] for site in ("sf", "ny")
        )
        assert total["match_hits"] >= total["rules_fired"] > 0

    def test_run_report_carries_rule_profiles(self):
        __, cm = run_salary(profiled=True)
        report = cm.run_report()
        assert "sf" in report.rule_profile
        data = report.to_dict()["rule_profile"]
        assert data == report.rule_profile
        entry = next(iter(data["sf"].values()))
        assert {"match_hits", "match_misses", "fired", "exec_ns"} <= set(entry)

    def test_unprofiled_run_report_omits_section(self):
        __, cm = run_salary(profiled=False)
        assert cm.run_report().rule_profile == {}
