"""Tests for the live telemetry dashboard behind ``python -m repro watch``."""

import io

from repro.cm.manager import add_scenario_hook, remove_scenario_hook
from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario
from repro.obs.watch import WatchDashboard, watch_experiment


def run_watched_salary(interval_s=1.0):
    out = io.StringIO()
    dashboard = WatchDashboard(
        experiment="salary", out=out, interval_s=interval_s
    )
    hook = add_scenario_hook(dashboard.attach)
    try:
        salary = build_salary_scenario("propagation")
    finally:
        remove_scenario_hook(hook)
    cm = salary.cm
    cm.spontaneous_write("salary1", ("emp1",), 64_000.0)
    cm.run(seconds(10))
    return dashboard, out, cm


class TestWatchDashboard:
    def test_hook_attaches_bus_and_publish_timer(self):
        dashboard, __, cm = run_watched_salary()
        (bus,) = dashboard.buses
        assert bus.registry is cm.scenario.obs.metrics
        # The per-virtual-second timer published at least once during the
        # 10-virtual-second run and each non-empty diff rendered a frame.
        assert bus.updates_published >= 1
        assert dashboard.frames_rendered == bus.updates_published

    def test_frames_carry_shell_channel_and_rule_rows(self):
        dashboard, out, __ = run_watched_salary()
        text = out.getvalue()
        assert "watch salary" in text
        assert "shells:" in text and "channels:" in text
        assert "sf" in text and "sf->ny" in text
        assert "fired=" in text and "delivered=" in text
        # Non-TTY output appends frames instead of repainting.
        assert "\x1b[" not in text
        assert text.count("watch salary · t=") == dashboard.frames_rendered

    def test_recent_deltas_get_plus_markers(self):
        dashboard, out, __ = run_watched_salary()
        assert "(+" in out.getvalue()

    def test_values_keep_latest_per_series(self):
        dashboard, __, cm = run_watched_salary()
        events = dashboard._value("shell_events_processed", site="sf")
        assert events == cm.shell("sf").stats()["events_processed"] > 0


class TestWatchExperiment:
    def test_unknown_experiment_exits_2(self, capsys):
        assert watch_experiment("nope", out=io.StringIO()) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_watch_runs_an_experiment_to_verdict(self):
        out = io.StringIO()
        code = watch_experiment("e1", interval_s=2.0, out=out)
        text = out.getvalue()
        assert code == 0
        assert "watch e1:" in text
        assert "REPRODUCED" in text
        assert "shells:" in text

    def test_hook_is_removed_after_run(self):
        from repro.cm import manager

        before = list(manager._scenario_hooks)
        watch_experiment("e1", interval_s=5.0, out=io.StringIO())
        assert manager._scenario_hooks == before
