"""Tests for the telemetry bus: registry diffs pushed to subscribers."""

from repro.core.timebase import seconds
from repro.obs.bus import TelemetryBus
from repro.obs.metrics import MetricsRegistry


def make_bus():
    registry = MetricsRegistry()
    bus = TelemetryBus(registry)
    seen = []
    bus.subscribe(seen.append)
    return registry, bus, seen


class TestPublish:
    def test_first_publish_reports_every_live_series(self):
        registry, bus, seen = make_bus()
        registry.counter("hits", site="sf").inc(3)
        registry.gauge("depth").set(2)
        update = bus.publish(seconds(1))
        assert update is not None
        assert update.seq == 1
        assert update.time_s == 1.0
        by_name = {d["name"]: d for d in update.deltas}
        assert by_name["hits"] == {
            "name": "hits",
            "labels": {"site": "sf"},
            "kind": "counter",
            "value": 3,
            "delta": 3,
        }
        assert by_name["depth"]["kind"] == "gauge"
        assert seen == [update]

    def test_second_publish_carries_only_changes(self):
        registry, bus, seen = make_bus()
        counter = registry.counter("hits", site="sf")
        quiet = registry.counter("hits", site="ny")
        counter.inc(3)
        quiet.inc(1)
        bus.publish(seconds(1))
        counter.inc(2)
        update = bus.publish(seconds(2))
        (delta,) = update.deltas
        assert delta["labels"] == {"site": "sf"}
        assert delta["value"] == 5
        assert delta["delta"] == 2

    def test_empty_diff_returns_none_and_skips_subscribers(self):
        registry, bus, seen = make_bus()
        registry.counter("hits").inc()
        bus.publish(seconds(1))
        assert bus.publish(seconds(2)) is None
        assert len(seen) == 1
        assert bus.updates_published == 1

    def test_gauge_deltas_can_be_negative(self):
        registry, bus, __ = make_bus()
        gauge = registry.gauge("in_flight")
        gauge.set(5)
        bus.publish(seconds(1))
        gauge.set(2)
        (delta,) = bus.publish(seconds(2)).deltas
        assert delta["value"] == 2
        assert delta["delta"] == -3

    def test_histogram_deltas_carry_count_sum_and_unit(self):
        registry, bus, __ = make_bus()
        hist = registry.histogram("wire_latency_ms", unit="ms")
        hist.observe(2.0)
        hist.observe(4.0)
        (delta,) = bus.publish(seconds(1)).deltas
        assert delta["kind"] == "histogram"
        assert delta["unit"] == "ms"
        assert delta["value"] == 2  # count
        assert delta["delta"] == 2
        assert delta["sum_delta"] == 6.0
        # A new observation moves count and sum again.
        hist.observe(1.0)
        (delta,) = bus.publish(seconds(2)).deltas
        assert delta["delta"] == 1
        assert delta["sum_delta"] == 1.0

    def test_update_to_dict_is_jsonl_ready(self):
        registry, bus, __ = make_bus()
        registry.counter("hits").inc()
        record = bus.publish(seconds(1)).to_dict()
        assert record["type"] == "telemetry"
        assert record["seq"] == 1
        assert record["time_s"] == 1.0
        assert record["deltas"][0]["name"] == "hits"


class TestSubscription:
    def test_subscribe_unsubscribe(self):
        registry = MetricsRegistry()
        bus = TelemetryBus(registry)
        seen = []
        callback = bus.subscribe(seen.append)
        assert bus.subscriber_count == 1
        registry.counter("hits").inc()
        bus.publish(seconds(1))
        bus.unsubscribe(callback)
        assert bus.subscriber_count == 0
        registry.counter("hits").inc()
        bus.publish(seconds(2))
        assert len(seen) == 1
