"""Tests for the flight recorder: bounded rings, dumps, and shell wiring."""

import pytest

from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario
from repro.obs import Instrumentation
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder


class TestRings:
    def test_record_fills_per_site_rings(self):
        flight = FlightRecorder()
        flight.record("sf", "event", seconds(1), "W(x)")
        flight.record("ny", "fire", seconds(2), "rule-1")
        flight.record("sf", "event", seconds(3), "W(y)")
        assert flight.sites == ["ny", "sf"]
        assert flight.ring_sizes() == {"ny": 1, "sf": 2}
        assert len(flight) == 3
        assert flight.records_taken == 3

    def test_overflow_discards_oldest(self):
        flight = FlightRecorder(capacity=3)
        for i in range(10):
            flight.record("sf", "event", seconds(i), f"e{i}")
        assert len(flight) == 3
        assert flight.records_taken == 10
        details = [row["detail"] for row in flight.digest("sf")]
        assert details == ["e7", "e8", "e9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_iter_yields_time_site_kind_detail(self):
        flight = FlightRecorder()
        flight.record("sf", "event", seconds(1), "x")
        assert list(flight) == [(seconds(1), "sf", "event", "x")]


class TestDigest:
    def test_merged_digest_is_time_ordered_across_sites(self):
        flight = FlightRecorder()
        flight.record("ny", "fire", seconds(2), "late")
        flight.record("sf", "event", seconds(1), "early")
        rows = flight.digest()
        assert [row["site"] for row in rows] == ["sf", "ny"]
        assert rows[0] == {
            "time": seconds(1),
            "time_s": 1.0,
            "site": "sf",
            "kind": "event",
            "detail": "early",
        }

    def test_detail_stringified_only_at_digest_time(self):
        class Loud:
            formatted = 0

            def __str__(self):
                Loud.formatted += 1
                return "loud"

        flight = FlightRecorder()
        flight.record("sf", "event", seconds(1), Loud())
        assert Loud.formatted == 0  # recording never formats
        assert flight.digest()[0]["detail"] == "loud"
        assert Loud.formatted == 1


class TestDump:
    def test_dump_freezes_rings_under_reason(self):
        flight = FlightRecorder()
        flight.record("sf", "event", seconds(1), "before")
        dump = flight.dump("failure:sf:src:logical@100", seconds(2))
        assert dump is not None
        assert dump["reason"] == "failure:sf:src:logical@100"
        assert dump["time_s"] == 2.0
        assert [row["detail"] for row in dump["records"]] == ["before"]
        assert flight.dumps == [dump]

    def test_dump_dedups_by_reason(self):
        flight = FlightRecorder()
        flight.record("sf", "event", seconds(1), "x")
        assert flight.dump("incident", seconds(2)) is not None
        assert flight.dump("incident", seconds(3)) is None
        assert flight.dump("other", seconds(3)) is not None
        assert len(flight.dumps) == 2

    def test_to_dict_is_the_run_report_form(self):
        flight = FlightRecorder(capacity=8)
        flight.record("sf", "event", seconds(1), "x")
        flight.dump("incident", seconds(2))
        data = flight.to_dict()
        assert data["capacity"] == 8
        assert data["records_taken"] == 1
        assert data["ring_sizes"] == {"sf": 1}
        assert [d["reason"] for d in data["dumps"]] == ["incident"]


class TestInstrumentationWiring:
    def test_enable_flight_turns_on_obs_without_tracing(self):
        obs = Instrumentation()
        flight = obs.enable_flight()
        assert obs.enabled
        assert not obs.tracer.enabled  # flight-only: no span retention
        assert flight.capacity == DEFAULT_CAPACITY
        assert obs.enable_flight() is flight  # idempotent

    def test_flight_only_run_records_digests_but_no_spans(self):
        salary = build_salary_scenario("propagation")
        cm = salary.cm
        flight = cm.scenario.obs.enable_flight()
        cm.spontaneous_write("salary1", ("emp1",), 64_000.0)
        cm.run(seconds(30))
        assert cm.scenario.obs.tracer.spans == []
        kinds = {row["kind"] for row in flight.digest()}
        assert {"event", "net.send", "net.recv", "fire"} <= kinds
        assert set(flight.sites) == {"sf", "ny"}
        assert flight.dumps == []  # nothing went wrong
