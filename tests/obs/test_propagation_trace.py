"""Acceptance: one cross-site propagation is one connected span tree.

Enabling tracing on the salary scenario and running a single spontaneous
write must produce a single causal tree spanning shell -> network -> shell
-> translator across both sites, whose end-to-end latency equals the
trace-derived ``W - Ws`` gap, lands in the ``propagation_latency``
histogram, and respects the installed metric guarantee's kappa bound.
"""

from repro.core.events import EventKind
from repro.core.timebase import seconds, to_seconds
from repro.experiments.common import build_salary_scenario


def run_traced_propagation():
    salary = build_salary_scenario("propagation")
    cm = salary.cm
    cm.scenario.obs.enable_tracing()
    cm.spontaneous_write("salary1", ("emp1",), 64_000.0)
    cm.run(seconds(30))
    return salary, cm


class TestPropagationTrace:
    def test_single_connected_tree_spans_both_sites(self):
        __, cm = run_traced_propagation()
        trees = list(cm.scenario.obs.tracer.trees())
        assert len(trees) == 1
        tree = trees[0]
        assert tree.connected
        assert tree.root.name == "source.write"
        assert tree.sites == ["sf", "ny"]
        names = {span.name for span in tree}
        assert {
            "source.write",
            "translator.notify",
            "shell.process",
            "net.send",
            "shell.fire",
            "translator.write",
        } <= names

    def test_causal_chain_orders_shell_network_translator(self):
        __, cm = run_traced_propagation()
        (tree,) = cm.scenario.obs.tracer.trees()
        (send,) = tree.find("net.send")
        (fire,) = tree.find("shell.fire")
        (write,) = tree.find("translator.write")
        # The network hop parents the remote firing, which parents the
        # remote translator write — the cross-site edges of the chain.
        assert fire.parent_id == send.span_id
        assert write in tree.children(fire) or write.root_id == tree.root.span_id
        assert send.site == "sf" and fire.site == "ny" and write.site == "ny"
        assert tree.root.start <= send.start <= fire.start <= write.end

    def test_end_to_end_matches_trace_and_metric_guarantee(self):
        salary, cm = run_traced_propagation()
        (tree,) = cm.scenario.obs.tracer.trees()

        trace = cm.scenario.trace
        (ws,) = trace.events_of_kind(EventKind.SPONTANEOUS_WRITE)
        (w,) = trace.events_of_kind(EventKind.WRITE)
        assert tree.end_to_end() == w.time - ws.time > 0

        # The same latency is what the translator histogram observed ...
        hist = cm.scenario.obs.metrics.get(
            "propagation_latency", family="salary2"
        )
        assert hist is not None
        assert hist.count == 1
        assert hist.max == tree.end_to_end()

        # ... and it must respect the metric guarantee's kappa bound.
        metric = [g for g in salary.installed.guarantees if g.metric]
        assert metric, "scenario should issue a metric follows-guarantee"
        kappa = metric[0].within
        assert tree.end_to_end() <= kappa
        assert "κ=" in metric[0].name

    def test_report_traces_section_reflects_the_tree(self):
        __, cm = run_traced_propagation()
        (tree,) = cm.scenario.obs.tracer.trees()
        report = cm.run_report()
        assert report.traces["trees"] == 1
        assert report.traces["spans"] == len(tree)
        assert report.traces["max_end_to_end_s"] == to_seconds(
            tree.end_to_end()
        )

    def test_tracing_off_means_no_spans(self):
        salary = build_salary_scenario("propagation")
        cm = salary.cm
        cm.spontaneous_write("salary1", ("emp1",), 64_000.0)
        cm.run(seconds(30))
        assert cm.scenario.obs.tracer.spans == []
