"""Tests for the guarantee-consuming applications (Section 7.1)."""

from cm_helpers_root import build_two_site

from repro.apps import AnalystApp, AuditorApp, PlotterApp, TabulatorApp
from repro.apps.auditor import AuditVerdict
from repro.constraints import CopyConstraint
from repro.core.items import DataItemRef
from repro.core.timebase import seconds


def install_propagation(cm, **options):
    constraint = cm.declare(CopyConstraint("salary1", "salary2", params=("n",)))
    suggestion = next(
        s for s in cm.suggest(constraint, **options)
        if s.strategy.kind == "propagation"
    )
    return cm.install(constraint, suggestion)


class TestTabulator:
    def test_tabulation_complete_under_propagation(self):
        cm, *_ = build_two_site()
        install_propagation(cm)
        app = TabulatorApp(
            cm,
            DataItemRef("salary1", ("e1",)),
            DataItemRef("salary2", ("e1",)),
            sample_period=seconds(0.05),
        )
        for index, value in enumerate((10.0, 20.0, 30.0)):
            cm.scenario.sim.at(
                seconds(5 + 10 * index),
                lambda v=value: cm.spontaneous_write("salary1", ("e1",), v),
            )
        cm.run(until=seconds(60))
        audit = app.audit()
        assert audit.complete and audit.truthful
        assert audit.values_tabulated == 3

    def test_missing_value_detected_when_copy_skips(self):
        cm, *_ = build_two_site()
        # No strategy installed at all: the copy never changes.
        app = TabulatorApp(
            cm,
            DataItemRef("salary1", ("e1",)),
            DataItemRef("salary2", ("e1",)),
        )
        cm.scenario.sim.at(
            seconds(5), lambda: cm.spontaneous_write("salary1", ("e1",), 1.0)
        )
        cm.run(until=seconds(20))
        audit = app.audit()
        assert not audit.complete
        assert audit.missing_values == [1.0]


class TestPlotter:
    def test_ordered_path_audits_clean(self):
        cm, *_ = build_two_site()
        install_propagation(cm)
        app = PlotterApp(
            cm,
            DataItemRef("salary1", ("robot",)),
            DataItemRef("salary2", ("robot",)),
        )
        for index in range(5):
            cm.scenario.sim.at(
                seconds(5 + index * 5),
                lambda v=float(index): cm.spontaneous_write(
                    "salary1", ("robot",), v
                ),
            )
        cm.run(until=seconds(60))
        audit = app.audit()
        assert audit.points_plotted == 5
        assert audit.ordered


class TestAuditor:
    def test_inconclusive_when_flag_false(self):
        cm, *_ = build_two_site()
        shell = cm.shell("ny")
        flag = DataItemRef("Flag")
        tb = DataItemRef("Tb")
        auditor = AuditorApp(shell, flag, tb, kappa=seconds(1))
        cm.run(until=seconds(10))
        assert auditor.audit_query(seconds(5)) is AuditVerdict.INCONCLUSIVE

    def test_consistent_inside_certified_interval(self):
        cm, *_ = build_two_site()
        shell = cm.shell("ny")
        flag = DataItemRef("Flag")
        tb = DataItemRef("Tb")
        shell.store.write(tb, seconds(2), 0)
        shell.store.write(flag, True, 0)
        auditor = AuditorApp(shell, flag, tb, kappa=seconds(1))
        cm.run(until=seconds(10))
        assert auditor.audit_query(seconds(5)) is AuditVerdict.CONSISTENT
        # Before Tb: not covered.
        assert auditor.audit_query(seconds(1)) is AuditVerdict.INCONCLUSIVE
        # Inside the kappa blind spot at the end: not covered.
        assert auditor.audit_query(
            seconds(9.5)
        ) is AuditVerdict.INCONCLUSIVE


class TestAnalyst:
    def test_totals_match_under_synchrony(self):
        cm, *_ = build_two_site()
        install_propagation(cm)
        for account, value in (("a1", 10.0), ("a2", 20.0)):
            cm.scenario.sim.at(
                seconds(1),
                lambda k=account, v=value: cm.spontaneous_write(
                    "salary1", (k,), v
                ),
            )
        analyst = AnalystApp(
            cm, "salary1", "salary2", run_at=seconds(30), days=1
        )
        cm.run(until=seconds(60))
        reports = analyst.reports()
        assert len(reports) == 1
        assert reports[0].consistent
        assert reports[0].copy_total == 30.0
