"""Tests for the one-call verification facade."""

from cm_helpers import two_site_relational

from repro.cm.verify import verify
from repro.constraints import CopyConstraint
from repro.core.timebase import seconds
from repro.sim.failures import FailureKind, FailurePlan, FailureWindow


def install_and_drive(cm, updates=((1, 10.0), (5, 20.0))):
    constraint = cm.declare(
        CopyConstraint("salary1", "salary2", params=("n",))
    )
    cm.install(constraint, cm.suggest(constraint)[0])
    for at, value in updates:
        cm.scenario.sim.at(
            seconds(at),
            lambda v=value: cm.spontaneous_write("salary1", ("e1",), v),
        )
    cm.run(until=seconds(60))


class TestVerify:
    def test_clean_run_verifies_ok(self):
        cm, *_ = two_site_relational()
        install_and_drive(cm)
        report = verify(cm)
        assert report.ok, report.render()
        assert report.guarantee_reports
        assert "OK" in report.render()

    def test_trace_stats_surfaced(self):
        cm, *_ = two_site_relational()
        install_and_drive(cm)
        report = verify(cm)
        stats = report.trace_stats
        assert stats["events_recorded"] == len(cm.scenario.trace.events)
        assert stats["state_versions"] > 0
        assert "trace:" in report.render()

    def test_silent_failure_is_surfaced_as_a_gap(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                site="sf",
                kind=FailureKind.SILENT_NOTIFY_LOSS,
                start=seconds(0),
                end=seconds(30),
                drop_probability=1.0,
            )
        )
        cm, *_ = two_site_relational(failure_plan=plan)
        install_and_drive(cm, updates=((1, 10.0), (5, 20.0), (40, 30.0)))
        report = verify(cm)
        assert not report.ok
        # The board was never told anything went wrong...
        assert any("leads(" in name for name in report.silent_gaps)
        assert "SILENT GAP" in report.render()

    def test_detected_failure_is_not_a_silent_gap(self):
        cm, __, hq, *_ = two_site_relational()
        cm.scenario.sim.at(seconds(3), lambda: hq.set_available(False))
        cm.scenario.sim.at(seconds(8), lambda: hq.set_available(True))
        install_and_drive(cm)
        report = verify(cm)
        # Guarantees are refuted, but the board knows (logical failure was
        # detected), so this is not a *silent* gap.
        assert not report.guarantees_ok
        assert report.silent_gaps == []
