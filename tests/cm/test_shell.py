"""Tests for the CM-Shell rule engine."""

import pytest

from cm_helpers import two_site_relational

from repro.core.dsl import parse_rule
from repro.core.errors import ConfigurationError, SpecError
from repro.core.events import EventKind
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import seconds


def install_propagation(cm):
    rule = parse_rule("N(salary1(n), b) -> [5] WR(salary2(n), b)", name="prop")
    cm.shell("sf").install(rule, "ny")
    cm.shell("sf").translator_for("salary1").setup_notify("salary1")
    return rule


class TestRuleFiring:
    def test_cross_site_rhs_goes_over_the_network(self):
        cm, __, hq, ___, ____ = two_site_relational()
        install_propagation(cm)
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 7.0)
        )
        cm.run(until=seconds(10))
        assert hq.query("SELECT salary FROM employees WHERE empid = 'e1'") == [
            (7.0,)
        ]
        assert cm.scenario.network.messages_sent >= 1

    def test_non_matching_events_ignored(self):
        cm, __, ___, ____, _____ = two_site_relational()
        rule = parse_rule("N(other(n), b) -> [5] WR(salary2(n), b)")
        cm.shell("sf").install(rule, "ny")
        cm.shell("sf").translator_for("salary1").setup_notify("salary1")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 7.0)
        )
        cm.run(until=seconds(10))
        assert cm.shell("sf").rules_fired == 0

    def test_lhs_condition_gates_firing(self):
        cm, __, hq, ___, ____ = two_site_relational()
        rule = parse_rule(
            "N(salary1(n), b) & b > 100 -> [5] WR(salary2(n), b)"
        )
        cm.shell("sf").install(rule, "ny")
        cm.shell("sf").translator_for("salary1").setup_notify("salary1")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 50.0)
        )
        cm.scenario.sim.at(
            seconds(2), lambda: cm.spontaneous_write("salary1", ("e2",), 500.0)
        )
        cm.run(until=seconds(10))
        assert hq.query("SELECT empid FROM employees") == [("e2",)]

    def test_step_conditions_read_private_store(self):
        cm, __, hq, ___, ____ = two_site_relational()
        rule = parse_rule(
            "N(salary1(n), b) -> [5] (Cache(n) != b) ? WR(salary2(n), b), "
            "W(Cache(n), b)",
            name="cached",
        )
        cm.locations.register("Cache", "ny")
        cm.shell("sf").install(rule, "ny")
        cm.shell("sf").translator_for("salary1").setup_notify("salary1")
        for t, value in ((1, 5.0), (2, 5.0), (3, 6.0)):
            cm.scenario.sim.at(
                seconds(t),
                lambda v=value: cm.spontaneous_write("salary1", ("e1",), v),
            )
        cm.run(until=seconds(10))
        write_requests = [
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.WRITE_REQUEST
        ]
        assert len(write_requests) == 2  # the duplicate was suppressed

    def test_private_write_records_event_with_provenance(self):
        cm, __, ___, ____, _____ = two_site_relational()
        rule = parse_rule("N(salary1(n), b) -> [5] W(Copy(n), b)", name="keep")
        cm.locations.register("Copy", "sf")
        cm.shell("sf").install(rule, "sf")
        cm.shell("sf").translator_for("salary1").setup_notify("salary1")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 7.0)
        )
        cm.run(until=seconds(10))
        private_writes = [
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.WRITE
            and e.desc.item.name == "Copy"
        ]
        assert len(private_writes) == 1
        assert private_writes[0].rule is rule
        assert cm.shell("sf").store.read_local(
            DataItemRef("Copy", ("e1",))
        ) == 7.0

    def test_writing_database_item_directly_rejected(self):
        cm, __, ___, ____, _____ = two_site_relational()
        rule = parse_rule("N(salary1(n), b) -> [5] W(salary1(n), b)")
        cm.shell("sf").install(rule, "sf")
        cm.shell("sf").translator_for("salary1").setup_notify("salary1")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 7.0)
        )
        with pytest.raises(SpecError):
            cm.run(until=seconds(10))


class TestPeriodicRules:
    def test_timer_drives_polling(self):
        cm, branch, hq, ___, ____ = two_site_relational(offer_notify=False)
        branch.execute("INSERT INTO employees VALUES ('e1', 42.0)")
        poll = parse_rule("P(10) -> [1] RR(salary1(n))", name="poll")
        forward = parse_rule(
            "R(salary1(n), b) -> [5] WR(salary2(n), b)", name="fwd"
        )
        cm.shell("sf").install(poll, "sf")
        cm.shell("sf").install(forward, "ny")
        cm.run(until=seconds(25))
        assert hq.query("SELECT salary FROM employees") == [(42.0,)]
        p_events = [
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.PERIODIC
        ]
        assert len(p_events) == 2  # t=10s and t=20s

    def test_enumerating_read_covers_all_instances(self):
        cm, branch, hq, ___, ____ = two_site_relational(offer_notify=False)
        branch.execute(
            "INSERT INTO employees VALUES ('e1', 1.0), ('e2', 2.0)"
        )
        poll = parse_rule("P(10) -> [1] RR(salary1(n))", name="poll")
        forward = parse_rule(
            "R(salary1(n), b) -> [5] WR(salary2(n), b)", name="fwd"
        )
        cm.shell("sf").install(poll, "sf")
        cm.shell("sf").install(forward, "ny")
        cm.run(until=seconds(15))
        rows = hq.query("SELECT empid, salary FROM employees ORDER BY empid")
        assert rows == [("e1", 1.0), ("e2", 2.0)]

    def test_phased_timer_fires_at_phase(self):
        from repro.core.timebase import DAY, clock_time

        cm, branch, __, ___, ____ = two_site_relational(offer_notify=False)
        poll = parse_rule("P(86400) -> [1] RR(salary1(n))", name="daily")
        cm.shell("sf").install(poll, "sf", phase=clock_time(17))
        cm.run(until=DAY)
        p_events = [
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.PERIODIC
        ]
        assert [e.time for e in p_events] == [clock_time(17)]

    def test_phase_on_non_periodic_rule_rejected(self):
        cm, __, ___, ____, _____ = two_site_relational()
        rule = parse_rule("N(salary1(n), b) -> [5] WR(salary2(n), b)")
        with pytest.raises(SpecError):
            cm.shell("sf").install(rule, "ny", phase=seconds(1))


class TestBinderEvaluation:
    def test_binder_captures_private_value(self):
        cm, __, ___, ____, _____ = two_site_relational()
        shell = cm.shell("sf")
        shell.store.write(DataItemRef("Level"), 9, 0)
        rule = parse_rule(
            "N(salary1(n), b) & v == Level -> [5] W(Seen(n), v)",
            name="capture",
        )
        cm.locations.register("Seen", "sf")
        shell.install(rule, "sf")
        shell.translator_for("salary1").setup_notify("salary1")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 7.0)
        )
        cm.run(until=seconds(10))
        assert shell.store.read_local(DataItemRef("Seen", ("e1",))) == 9


class TestInstallValidation:
    def test_duplicate_name_with_different_rule_rejected(self):
        cm, __, ___, ____, _____ = two_site_relational()
        shell = cm.shell("sf")
        first = parse_rule(
            "N(salary1(n), b) -> [5] WR(salary2(n), b)", name="prop"
        )
        imposter = parse_rule(
            "N(salary1(n), b) & b > 0 -> [1] WR(salary2(n), b)", name="prop"
        )
        shell.install(first, "ny")
        with pytest.raises(ConfigurationError, match="prop"):
            shell.install(imposter, "ny")
        # The index must be unchanged by the rejected install.
        assert shell.stats()["rules_installed"] == 1

    def test_reinstalling_identical_rule_is_allowed(self):
        cm, __, ___, ____, _____ = two_site_relational()
        shell = cm.shell("sf")
        rule = parse_rule(
            "N(salary1(n), b) -> [5] WR(salary2(n), b)", name="prop"
        )
        shell.install(rule, "ny")
        shell.install(rule, "ny")

    def test_same_name_allowed_on_different_shells(self):
        cm, __, ___, ____, _____ = two_site_relational()
        rule_sf = parse_rule(
            "N(salary1(n), b) -> [5] WR(salary2(n), b)", name="prop"
        )
        rule_ny = parse_rule(
            "N(salary2(n), b) -> [5] W(Echo(n), b)", name="prop"
        )
        cm.shell("sf").install(rule_sf, "ny")
        cm.shell("ny").install(rule_ny, "ny")
