"""Small scenario scaffolding for CM-layer unit tests."""

from __future__ import annotations

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.cm.translator import ServiceModel
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import seconds
from repro.ris.relational import RelationalDatabase

#: Deterministic service model (no jitter) for exact-time assertions.
EXACT_SERVICE = ServiceModel(
    read=seconds(0.02), write=seconds(0.03), notify=seconds(0.05), jitter=0.0
)


def two_site_relational(
    seed: int = 0,
    offer_notify: bool = True,
    in_order: bool = True,
    failure_plan=None,
):
    """A minimal sf/ny pair with salary1/salary2 relational bindings."""
    scenario = Scenario(seed=seed, in_order=in_order, failure_plan=failure_plan)
    cm = ConstraintManager(scenario)
    cm.add_site("sf")
    cm.add_site("ny")

    branch = RelationalDatabase("branch")
    branch.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_a = CMRID("relational", "branch").bind(
        "salary1",
        params=("n",),
        table="employees",
        key_column="empid",
        value_column="salary",
    )
    if offer_notify:
        rid_a.offer("salary1", InterfaceKind.NOTIFY, bound_seconds=2.0)
    rid_a.offer("salary1", InterfaceKind.READ, bound_seconds=1.0)
    translator_a = cm.add_source("sf", branch, rid_a, EXACT_SERVICE)

    hq = RelationalDatabase("hq")
    hq.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_b = (
        CMRID("relational", "hq")
        .bind(
            "salary2",
            params=("n",),
            table="employees",
            key_column="empid",
            value_column="salary",
        )
        .offer("salary2", InterfaceKind.WRITE, bound_seconds=2.0)
        .offer("salary2", InterfaceKind.READ, bound_seconds=1.0)
        .offer("salary2", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    translator_b = cm.add_source("ny", hq, rid_b, EXACT_SERVICE)
    return cm, branch, hq, translator_a, translator_b
