"""Tests for the ConstraintManager façade."""

import pytest

from cm_helpers import two_site_relational

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import CopyConstraint
from repro.core.errors import ConfigurationError
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import seconds
from repro.ris.relational import RelationalDatabase


class TestTopology:
    def test_duplicate_site_rejected(self):
        cm = ConstraintManager(Scenario())
        cm.add_site("a")
        with pytest.raises(ConfigurationError):
            cm.add_site("a")

    def test_unknown_site_rejected(self):
        cm = ConstraintManager(Scenario())
        with pytest.raises(ConfigurationError):
            cm.shell("ghost")

    def test_peers_updated_as_sites_join(self):
        cm = ConstraintManager(Scenario())
        a = cm.add_site("a")
        b = cm.add_site("b")
        cm.add_site("c")
        assert sorted(a.peers) == ["b", "c"]
        assert sorted(b.peers) == ["a", "c"]

    def test_family_registered_at_site(self):
        cm, *__ = two_site_relational()
        assert cm.locations.site_of("salary1") == "sf"
        assert cm.locations.site_of("salary2") == "ny"

    def test_one_shell_can_host_multiple_sources(self):
        # Figure 1's Site 3: a database without its own shell is managed by
        # a neighbouring shell.
        cm = ConstraintManager(Scenario())
        cm.add_site("hub")
        for index in (1, 2):
            db = RelationalDatabase(f"db{index}")
            db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v REAL)")
            rid = CMRID("relational", f"db{index}").bind(
                f"item{index}",
                params=("n",),
                table="t",
                key_column="k",
                value_column="v",
            ).offer(f"item{index}", InterfaceKind.READ, bound_seconds=1.0)
            cm.add_source("hub", db, rid)
        assert cm.locations.site_of("item1") == "hub"
        assert cm.locations.site_of("item2") == "hub"


class TestSeeding:
    def test_existing_data_seeds_the_trace(self):
        scenario = Scenario()
        cm = ConstraintManager(scenario)
        cm.add_site("a")
        db = RelationalDatabase("db")
        db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v REAL)")
        db.execute("INSERT INTO t VALUES ('x', 5.0)")
        rid = CMRID("relational", "db").bind(
            "f", params=("n",), table="t", key_column="k", value_column="v"
        ).offer("f", InterfaceKind.READ, bound_seconds=1.0)
        cm.add_source("a", db, rid)
        from repro.core.items import DataItemRef

        assert scenario.trace.value_at(DataItemRef("f", ("x",)), 0) == 5.0

    def test_seeding_can_be_disabled(self):
        scenario = Scenario()
        cm = ConstraintManager(scenario)
        cm.add_site("a")
        db = RelationalDatabase("db")
        db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v REAL)")
        db.execute("INSERT INTO t VALUES ('x', 5.0)")
        rid = CMRID("relational", "db").bind(
            "f", params=("n",), table="t", key_column="k", value_column="v"
        ).offer("f", InterfaceKind.READ, bound_seconds=1.0)
        cm.add_source("a", db, rid, seed_existing=False)
        from repro.core.items import MISSING, DataItemRef

        assert scenario.trace.value_at(DataItemRef("f", ("x",)), 0) is MISSING


class TestInstallation:
    def test_install_registers_guarantees_with_board(self):
        cm, *__ = two_site_relational()
        constraint = cm.declare(
            CopyConstraint("salary1", "salary2", params=("n",))
        )
        suggestions = cm.suggest(constraint)
        installed = cm.install(constraint, suggestions[0])
        assert len(cm.board.guarantees()) == len(installed.guarantees)
        for guarantee in installed.guarantees:
            assert cm.board.is_valid(guarantee)

    def test_install_sets_up_notify_hooks(self):
        cm, *__ = two_site_relational()
        constraint = cm.declare(
            CopyConstraint("salary1", "salary2", params=("n",))
        )
        cm.install(constraint, cm.suggest(constraint)[0])
        translator = cm.shell("sf").translator_for("salary1")
        assert "salary1" in translator._notify_families

    def test_check_guarantees_covers_all_installed(self):
        cm, *__ = two_site_relational()
        constraint = cm.declare(
            CopyConstraint("salary1", "salary2", params=("n",))
        )
        installed = cm.install(constraint, cm.suggest(constraint)[0])
        cm.run(until=seconds(10))
        reports = cm.check_guarantees()
        assert set(reports) == {g.name for g in installed.guarantees}

    def test_install_rejects_strategy_missing_interfaces(self):
        from repro.core.catalog import Suggestion
        from repro.core.strategies import polling

        # Hand-build a polling suggestion against a scenario whose source
        # never offered a read interface: installation must fail up front.
        cm, *_ = two_site_relational(offer_notify=True)
        # Rebuild the source rid without READ by using a fresh scenario.
        from cm_helpers import EXACT_SERVICE
        from repro.cm import CMRID, ConstraintManager, Scenario
        from repro.ris.relational import RelationalDatabase

        scenario = Scenario()
        cm = ConstraintManager(scenario)
        cm.add_site("sf")
        cm.add_site("ny")
        db_a = RelationalDatabase("a")
        db_a.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v REAL)")
        rid_a = CMRID("relational", "a").bind(
            "salary1", params=("n",), table="t",
            key_column="k", value_column="v",
        ).offer("salary1", InterfaceKind.NOTIFY, bound_seconds=1.0)
        cm.add_source("sf", db_a, rid_a)
        db_b = RelationalDatabase("b")
        db_b.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v REAL)")
        rid_b = CMRID("relational", "b").bind(
            "salary2", params=("n",), table="t",
            key_column="k", value_column="v",
        ).offer("salary2", InterfaceKind.WRITE, bound_seconds=1.0)
        cm.add_source("ny", db_b, rid_b)
        constraint = cm.declare(
            CopyConstraint("salary1", "salary2", params=("n",))
        )
        bogus = Suggestion(
            polling("salary1", "salary2", seconds(10), seconds(1), ("n",)),
            (),
            "hand-built against missing interfaces",
        )
        with pytest.raises(ConfigurationError, match="read"):
            cm.install(constraint, bogus)

    def test_stop_halts_timers(self):
        cm, *__ = two_site_relational(offer_notify=False)
        constraint = cm.declare(
            CopyConstraint("salary1", "salary2", params=("n",))
        )
        polling = next(
            s for s in cm.suggest(constraint, polling_period=seconds(5))
            if s.strategy.kind == "polling"
        )
        cm.install(constraint, polling)
        cm.run(until=seconds(12))
        reads_before = len(cm.scenario.trace.events)
        cm.stop()
        cm.run(until=seconds(60))
        # Nothing new after stopping (no timers left to fire).
        assert len(cm.scenario.trace.events) == reads_before
