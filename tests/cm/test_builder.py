"""Tests for the fluent wiring API and the unified install() surface.

The builders must be a pure veneer: a scenario wired fluently behaves
identically to one wired through the classic imperative calls, and
``install()`` is the one installation entry point (the old
``install_rule`` / ``install_periodic_rule`` aliases are gone).  Also
covered here: the failure-propagation fix — remote
notices now reach ``on_failure`` listeners, and the status board stays
deduplicated under the resulting fan-in.
"""

import pytest

from cm_helpers import EXACT_SERVICE, two_site_relational

from repro.cm import CMRID, ConstraintManager, FailureNotice, Scenario
from repro.cm.builder import ConstraintBuilder, SiteBuilder
from repro.constraints import CopyConstraint
from repro.core.errors import ConfigurationError, SpecError
from repro.core.dsl import parse_rule
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import seconds
from repro.ris.relational import RelationalDatabase


def salary_rids(offer_notify: bool = True):
    branch = RelationalDatabase("branch")
    branch.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_a = CMRID("relational", "branch").bind(
        "salary1",
        params=("n",),
        table="employees",
        key_column="empid",
        value_column="salary",
    )
    if offer_notify:
        rid_a.offer("salary1", InterfaceKind.NOTIFY, bound_seconds=2.0)
    rid_a.offer("salary1", InterfaceKind.READ, bound_seconds=1.0)

    hq = RelationalDatabase("hq")
    hq.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_b = (
        CMRID("relational", "hq")
        .bind(
            "salary2",
            params=("n",),
            table="employees",
            key_column="empid",
            value_column="salary",
        )
        .offer("salary2", InterfaceKind.WRITE, bound_seconds=2.0)
        .offer("salary2", InterfaceKind.READ, bound_seconds=1.0)
        .offer("salary2", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    return branch, rid_a, hq, rid_b


def run_salary_sync(cm: ConstraintManager, hq: RelationalDatabase):
    cm.scenario.sim.at(
        seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 50_000.0)
    )
    cm.run(until=seconds(30))
    return hq.query("SELECT empid, salary FROM employees ORDER BY empid")


class TestSiteBuilder:
    def test_fluent_wiring_matches_classic_wiring(self):
        # Classic imperative wiring.
        branch_c, rid_a_c, hq_c, rid_b_c = salary_rids()
        classic = ConstraintManager(Scenario(seed=3))
        classic.add_site("sf")
        classic.add_site("ny")
        classic.add_source("sf", branch_c, rid_a_c, EXACT_SERVICE)
        classic.add_source("ny", hq_c, rid_b_c, EXACT_SERVICE)
        constraint = classic.declare(
            CopyConstraint("salary1", "salary2", params=("n",))
        )
        classic.install(constraint, classic.suggest(constraint)[0])

        # Fluent wiring of the same scenario.
        branch_f, rid_a_f, hq_f, rid_b_f = salary_rids()
        fluent = ConstraintManager(Scenario(seed=3))
        (
            fluent.site("sf")
            .source(branch_f, rid_a_f, EXACT_SERVICE)
            .site("ny")
            .source(hq_f, rid_b_f, EXACT_SERVICE)
            .constraint(CopyConstraint("salary1", "salary2", params=("n",)))
            .strategy()
        )

        assert run_salary_sync(classic, hq_c) == run_salary_sync(fluent, hq_f)
        assert classic.stats()["total"] == fluent.stats()["total"]

    def test_site_is_idempotent_and_returns_builder(self):
        cm = ConstraintManager(Scenario(seed=0))
        builder = cm.site("sf")
        assert isinstance(builder, SiteBuilder)
        again = cm.site("sf")
        assert again.shell is builder.shell
        assert list(cm.shells) == ["sf"]

    def test_private_registers_families_here(self):
        cm = ConstraintManager(Scenario(seed=0))
        cm.site("sf").private("Scratch", "Audit")
        assert cm.locations.site_of("Scratch") == "sf"
        assert cm.locations.site_of("Audit") == "sf"

    def test_rule_accepts_text_and_resolves_rhs_site(self):
        cm, __, ___, ____, _____ = two_site_relational()
        cm.site("sf").rule(
            "N(salary1(n), b) -> [5] WR(salary2(n), b)", name="sync"
        )
        shell = cm.shell("sf")
        assert [r.name for r in shell.rules] == ["sync"]
        # salary2 lives at ny, so the resolved rhs_site must be ny.
        assert [inst.rhs_site for inst in shell._index] == ["ny"]
        # NOTIFY LHS on a locally translated family -> notify hook armed.
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 9.0)
        )
        cm.run(until=seconds(20))
        assert shell.stats()["rules_fired"] == 1

    def test_rule_falls_back_to_this_site_for_private_rhs(self):
        cm, __, ___, ____, _____ = two_site_relational()
        builder = cm.site("sf").private("Mirror")
        builder.rule("N(salary1(n), b) -> [5] W(Mirror(n), b)", name="mirror")
        assert [inst.rhs_site for inst in cm.shell("sf")._index] == ["sf"]


class TestConstraintBuilder:
    def test_strategy_picks_by_name_substring(self):
        branch, rid_a, hq, rid_b = salary_rids()
        cm = ConstraintManager(Scenario(seed=1))
        cm.site("sf").source(branch, rid_a).site("ny").source(hq, rid_b)
        emails = cm.constraint(
            CopyConstraint("salary1", "salary2", params=("n",))
        ).strategy("propagation")
        assert "propagation" in emails.installed.strategy.name
        assert len(emails.guarantees) >= 1

    def test_strategy_unknown_name_lists_offers(self):
        branch, rid_a, hq, rid_b = salary_rids()
        cm = ConstraintManager(Scenario(seed=1))
        cm.site("sf").source(branch, rid_a).site("ny").source(hq, rid_b)
        builder = cm.constraint(
            CopyConstraint("salary1", "salary2", params=("n",))
        )
        with pytest.raises(ConfigurationError, match="offered:"):
            builder.strategy("no-such-strategy")

    def test_guarantees_before_install_raises(self):
        branch, rid_a, hq, rid_b = salary_rids()
        cm = ConstraintManager(Scenario(seed=1))
        cm.site("sf").source(branch, rid_a).site("ny").source(hq, rid_b)
        builder = cm.constraint(
            CopyConstraint("salary1", "salary2", params=("n",))
        )
        assert isinstance(builder, ConstraintBuilder)
        with pytest.raises(ConfigurationError, match="no strategy installed"):
            builder.guarantees


class TestUnifiedInstall:
    def test_install_handles_both_rule_shapes(self):
        cm, __, ___, ____, _____ = two_site_relational()
        shell = cm.shell("sf")
        cm.locations.register("Tick", "sf")
        shell.install(
            parse_rule("N(salary1(n), b) -> [5] WR(salary2(n), b)", name="old"),
            "ny",
        )
        shell.install(
            parse_rule("P(10) -> [1] W(Tick(), 1)", name="tick"), "sf"
        )
        assert {r.name for r in shell.rules} == {"old", "tick"}

    def test_deprecated_aliases_are_gone(self):
        cm, __, ___, ____, _____ = two_site_relational()
        shell = cm.shell("sf")
        assert not hasattr(shell, "install_rule")
        assert not hasattr(shell, "install_periodic_rule")

    def test_install_rejects_phase_on_non_periodic_rule(self):
        cm, __, ___, ____, _____ = two_site_relational()
        rule = parse_rule("N(salary1(n), b) -> [5] W(salary2(n), b)")
        with pytest.raises(SpecError):
            cm.shell("sf").install(rule, "ny", phase=seconds(5))


class TestFailurePropagation:
    @staticmethod
    def notice(time, recovered=False):
        return FailureNotice(
            site="sf",
            source_name="branch",
            kind="crash",
            time=time,
            detail="test",
            recovered=recovered,
        )

    def test_remote_notice_reaches_peer_listeners(self):
        cm, __, ___, ____, _____ = two_site_relational()
        seen_at_ny = []
        cm.shell("ny").on_failure.append(seen_at_ny.append)
        notice = self.notice(seconds(5))
        cm.scenario.sim.at(
            seconds(5), lambda: cm.shell("sf").report_failure(notice)
        )
        cm.run(until=seconds(10))
        # The remote shell both logs the notice and fires its listeners —
        # previously only the log was updated.
        assert cm.shell("ny").failure_log == [notice]
        assert seen_at_ny == [notice]

    def test_board_deduplicates_fan_in(self):
        cm, __, ___, ____, _____ = two_site_relational()
        failure = self.notice(seconds(5))
        recovery = self.notice(seconds(8), recovered=True)
        cm.scenario.sim.at(
            seconds(5), lambda: cm.shell("sf").report_failure(failure)
        )
        cm.scenario.sim.at(
            seconds(8), lambda: cm.shell("sf").report_failure(recovery)
        )
        cm.run(until=seconds(15))
        # Every shell's listeners saw both notices, but the board — which
        # observes all shells — records each exactly once.
        assert cm.board.notices.count(failure) == 1
        assert cm.board.notices.count(recovery) == 1
