"""Tests for the CM-Translator base behaviour through the relational one."""

import pytest

from cm_helpers import two_site_relational

from repro.core.errors import UnsupportedOperationError
from repro.core.events import EventKind
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import seconds
from repro.sim.failures import FailureKind, FailurePlan, FailureWindow


def ref1(key="e1"):
    return DataItemRef("salary1", (key,))


def ref2(key="e1"):
    return DataItemRef("salary2", (key,))


class TestWrites:
    def test_write_request_records_wr_then_w(self):
        cm, __, hq, ___, translator_b = two_site_relational()
        cm.scenario.sim.at(
            seconds(1), lambda: translator_b.request_write(ref2(), 100.0)
        )
        cm.run(until=seconds(5))
        kinds = [e.desc.kind for e in cm.scenario.trace.events]
        assert kinds == [EventKind.WRITE_REQUEST, EventKind.WRITE]
        assert hq.query("SELECT salary FROM employees WHERE empid = 'e1'") == [
            (100.0,)
        ]

    def test_write_upserts_then_updates(self):
        cm, __, hq, ___, translator_b = two_site_relational()
        cm.scenario.sim.at(
            seconds(1), lambda: translator_b.request_write(ref2(), 1.0)
        )
        cm.scenario.sim.at(
            seconds(2), lambda: translator_b.request_write(ref2(), 2.0)
        )
        cm.run(until=seconds(5))
        assert hq.query("SELECT COUNT(*) FROM employees")[0] == (1,)
        assert cm.scenario.trace.current_value(ref2()) == 2.0

    def test_write_missing_deletes(self):
        cm, __, hq, ___, translator_b = two_site_relational()
        cm.scenario.sim.at(
            seconds(1), lambda: translator_b.request_write(ref2(), 1.0)
        )
        cm.scenario.sim.at(
            seconds(2), lambda: translator_b.request_write(ref2(), MISSING)
        )
        cm.run(until=seconds(5))
        assert hq.query("SELECT COUNT(*) FROM employees")[0] == (0,)

    def test_unoffered_write_interface_rejected(self):
        cm, __, ___, translator_a, ____ = two_site_relational()
        with pytest.raises(UnsupportedOperationError):
            translator_a.request_write(ref1(), 1.0)

    def test_writes_complete_in_request_order(self):
        cm, __, ___, ____, translator_b = two_site_relational()
        cm.scenario.sim.at(
            seconds(1),
            lambda: (
                translator_b.request_write(ref2("a"), 1.0),
                translator_b.request_write(ref2("b"), 2.0),
                translator_b.request_write(ref2("c"), 3.0),
            ),
        )
        cm.run(until=seconds(5))
        writes = [
            e.desc.item.args[0]
            for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.WRITE
        ]
        assert writes == ["a", "b", "c"]


class TestReads:
    def test_read_delivers_response_to_shell(self):
        cm, branch, __, translator_a, ___ = two_site_relational()
        branch.execute("INSERT INTO employees VALUES ('e1', 50.0)")
        cm.scenario.sim.at(
            seconds(1), lambda: translator_a.request_read(ref1())
        )
        cm.run(until=seconds(5))
        responses = [
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.READ_RESPONSE
        ]
        assert len(responses) == 1
        assert responses[0].desc.values == (50.0,)

    def test_read_of_absent_item_returns_missing(self):
        cm, __, ___, translator_a, ____ = two_site_relational()
        cm.scenario.sim.at(
            seconds(1), lambda: translator_a.request_read(ref1("ghost"))
        )
        cm.run(until=seconds(5))
        response = next(
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.READ_RESPONSE
        )
        assert response.desc.values == (MISSING,)

    def test_enumerate_refs(self):
        cm, branch, __, translator_a, ___ = two_site_relational()
        branch.execute(
            "INSERT INTO employees VALUES ('e1', 1.0), ('e2', 2.0)"
        )
        refs = translator_a.enumerate_refs("salary1")
        assert refs == [ref1("e1"), ref1("e2")]


class TestNotifications:
    def test_spontaneous_write_produces_ws_then_n(self):
        cm, __, ___, translator_a, ____ = two_site_relational()
        translator_a.setup_notify("salary1")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 9.0)
        )
        cm.run(until=seconds(5))
        kinds = [e.desc.kind for e in cm.scenario.trace.events]
        assert kinds == [EventKind.SPONTANEOUS_WRITE, EventKind.NOTIFY]
        n_event = cm.scenario.trace.events[1]
        assert n_event.trigger is cm.scenario.trace.events[0]
        assert n_event.rule is not None

    def test_cm_writes_are_not_echoed(self):
        cm, branch, __, translator_a, ____ = two_site_relational()
        translator_a.setup_notify("salary1")
        # No write interface offered for salary1; drive natively to simulate
        # what a CM-originated write looks like to the trigger layer.
        cm.scenario.sim.at(
            seconds(1),
            lambda: translator_a._native_write(ref1(), 3.0),
        )
        cm.run(until=seconds(5))
        kinds = [e.desc.kind for e in cm.scenario.trace.events]
        assert EventKind.NOTIFY not in kinds

    def test_unoffered_notify_rejected(self):
        cm, __, ___, ____, translator_b = two_site_relational()
        with pytest.raises(UnsupportedOperationError):
            translator_b.setup_notify("salary2")


class TestFailureClassification:
    def test_crash_reports_logical_failure_once(self):
        cm, __, hq, ___, translator_b = two_site_relational()
        hq.set_available(False)
        cm.scenario.sim.at(
            seconds(1), lambda: translator_b.request_write(ref2(), 1.0)
        )
        cm.scenario.sim.at(
            seconds(2), lambda: translator_b.request_write(ref2(), 2.0)
        )
        cm.run(until=seconds(10))
        notices = cm.board.notices
        assert len([n for n in notices if not n.recovered]) == 1
        assert notices[0].kind is FailureKind.LOGICAL

    def test_busy_retries_then_succeeds_with_recovery_notice(self):
        cm, __, hq, ___, translator_b = two_site_relational()
        hq.set_busy(True)
        cm.scenario.sim.at(
            seconds(1), lambda: translator_b.request_write(ref2(), 1.0)
        )
        cm.scenario.sim.at(seconds(1.2), lambda: hq.set_busy(False))
        cm.run(until=seconds(30))
        assert hq.query("SELECT salary FROM employees")[0] == (1.0,)
        kinds = [(n.kind, n.recovered) for n in cm.board.notices]
        assert (FailureKind.METRIC, False) in kinds
        assert (FailureKind.METRIC, True) in kinds

    def test_bound_overrun_self_reported(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                "ny", FailureKind.METRIC, 0, seconds(100), slowdown=200.0
            )
        )
        cm, __, ___, ____, translator_b = two_site_relational(
            failure_plan=plan
        )
        cm.scenario.sim.at(
            seconds(1), lambda: translator_b.request_write(ref2(), 1.0)
        )
        cm.run(until=seconds(60))
        # 0.03s x 200 = 6s > the offered 2s write bound -> metric notice.
        metric = [
            n for n in cm.board.notices
            if n.kind is FailureKind.METRIC and not n.recovered
        ]
        assert metric

    def test_failure_notices_reach_peer_shells(self):
        cm, __, hq, ___, translator_b = two_site_relational()
        hq.set_available(False)
        cm.scenario.sim.at(
            seconds(1), lambda: translator_b.request_write(ref2(), 1.0)
        )
        cm.run(until=seconds(10))
        assert cm.shell("sf").failure_log  # propagated over the network
