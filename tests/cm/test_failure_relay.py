"""Regression: failure notices relay to every peer exactly once, in order.

With three or more sites every shell has multiple peers; a notice reported
at one site must reach each other shell's ``on_failure`` listeners exactly
once (the relay must not re-forward remote notices — that would echo them
around the federation) and successive notices must arrive in report order.
"""

from repro.cm import ConstraintManager, Scenario
from repro.cm.failures import FailureNotice
from repro.core.timebase import seconds


def make_federation(n_sites=3):
    cm = ConstraintManager(Scenario(seed=0))
    sites = [f"s{i}" for i in range(n_sites)]
    for site in sites:
        cm.add_site(site)
    return cm, sites


def notice(origin, time, detail):
    return FailureNotice(
        site=origin,
        source_name="src",
        kind="crash",
        time=time,
        detail=detail,
    )


class TestMultiPeerRelay:
    def test_each_listener_sees_each_notice_exactly_once_in_order(self):
        cm, sites = make_federation(4)
        seen = {site: [] for site in sites}
        for site in sites:
            cm.shell(site).on_failure.append(seen[site].append)

        first = notice("s0", seconds(1), "first")
        second = notice("s0", seconds(2), "second")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.shell("s0").report_failure(first)
        )
        cm.scenario.sim.at(
            seconds(2), lambda: cm.shell("s0").report_failure(second)
        )
        cm.run(until=seconds(10))

        for site in sites:
            assert seen[site] == [first, second], site
            assert cm.shell(site).failure_log == [first, second], site

    def test_remote_shells_do_not_reforward(self):
        cm, __ = make_federation(3)
        cm.scenario.sim.at(
            seconds(1),
            lambda: cm.shell("s0").report_failure(
                notice("s0", seconds(1), "only")
            ),
        )
        cm.run(until=seconds(10))
        # One origin, two peers: exactly two failure messages cross the
        # network — remote intake must not relay again.
        assert cm.scenario.network.messages_sent == 2

    def test_board_records_each_notice_once_despite_fan_out(self):
        cm, __ = make_federation(3)
        failure = notice("s1", seconds(3), "crash")
        recovery = FailureNotice(
            site="s1",
            source_name="src",
            kind="crash",
            time=seconds(6),
            detail="back",
            recovered=True,
        )
        cm.scenario.sim.at(
            seconds(3), lambda: cm.shell("s1").report_failure(failure)
        )
        cm.scenario.sim.at(
            seconds(6), lambda: cm.shell("s1").report_failure(recovery)
        )
        cm.run(until=seconds(10))
        assert cm.board.notices.count(failure) == 1
        assert cm.board.notices.count(recovery) == 1
        report = cm.run_report()
        assert report.failures["total"] == 2
        assert report.failures["recoveries"] == 1

    def test_failure_counter_labels_by_site(self):
        cm, sites = make_federation(3)
        cm.scenario.sim.at(
            seconds(1),
            lambda: cm.shell("s2").report_failure(
                notice("s2", seconds(1), "x")
            ),
        )
        cm.run(until=seconds(5))
        registry = cm.scenario.obs.metrics
        for site in sites:
            assert registry.value("shell_failure_notices", site=site) == 1
        # The labelled series additionally classifies by kind/recovery.
        assert (
            registry.value(
                "failure_notices", site="s2", kind="crash", recovered="false"
            )
            == 1
        )
        assert registry.total("failure_notices") == 3
