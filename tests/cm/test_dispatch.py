"""Tests for indexed rule dispatch (RuleIndex + compiled matchers).

The load-bearing property: for any rule mix and any event stream, the index
must yield *exactly* the rules, bindings, and firing order that the linear
scan over all installed rules produces.  The randomized equivalence tests
below drive that over generated rule/event mixes; the directed tests cover
the catch-all bucket and family-variable (parameterized) templates.
"""

import random

import pytest

from cm_helpers import two_site_relational

from repro.cm.dispatch import RuleIndex
from repro.core.dsl import parse_rule
from repro.core.errors import BindingError
from repro.core.events import (
    EventDesc,
    EventKind,
    notify_desc,
    periodic_desc,
    read_response_desc,
    spontaneous_write_desc,
    write_desc,
)
from repro.core.items import DataItemRef
from repro.core.rules import RhsStep, Rule
from repro.core.templates import (
    FALSE_TEMPLATE,
    Template,
    compile_matcher,
    match_desc,
)
from repro.core.terms import (
    FAMILY_WILDCARD,
    WILDCARD,
    Const,
    ItemPattern,
    Var,
    ground_item,
)
from repro.core.timebase import seconds

FAMILIES = ["alpha", "beta", "gamma", "delta"]
ITEM_KINDS = [
    EventKind.WRITE,
    EventKind.SPONTANEOUS_WRITE,
    EventKind.WRITE_REQUEST,
    EventKind.READ_REQUEST,
    EventKind.READ_RESPONSE,
    EventKind.NOTIFY,
]
KEYS = ["e1", "e2", "e3"]
VALUES = [1.0, 2.0, "x"]


def random_template(rng: random.Random) -> Template:
    """A random LHS template, occasionally family-variable."""
    kind = rng.choice(ITEM_KINDS + [EventKind.PERIODIC])
    if kind is EventKind.PERIODIC:
        return Template(kind, None, (Const(seconds(rng.choice([5, 10]))),))
    name = rng.choice(FAMILIES + [FAMILY_WILDCARD])
    arg_terms = []
    for __ in range(rng.choice([0, 1, 1, 2])):
        arg_terms.append(
            rng.choice([Var("n"), Var("m"), Const(rng.choice(KEYS)), WILDCARD])
        )
    value_terms = tuple(
        rng.choice([Var("b"), Const(rng.choice(VALUES)), WILDCARD])
        for __ in range(kind.value_arity)
    )
    return Template(kind, ItemPattern(name, tuple(arg_terms)), value_terms)


def random_rule(rng: random.Random, serial: int) -> Rule:
    """A random prohibition rule (RHS irrelevant to dispatch)."""
    return Rule(
        name=f"r{serial}",
        lhs=random_template(rng),
        delay=0,
        steps=(RhsStep(FALSE_TEMPLATE),),
    )


def random_desc(rng: random.Random) -> EventDesc:
    kind = rng.choice(ITEM_KINDS + [EventKind.PERIODIC])
    if kind is EventKind.PERIODIC:
        return periodic_desc(seconds(rng.choice([5, 10])))
    ref = DataItemRef(
        rng.choice(FAMILIES),
        tuple(rng.choice(KEYS) for __ in range(rng.choice([0, 1, 1, 2]))),
    )
    values = tuple(rng.choice(VALUES) for __ in range(kind.value_arity))
    return EventDesc(kind, ref, values)


class TestCompiledMatcherEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_interpreted_match_desc(self, seed):
        rng = random.Random(seed)
        templates = [random_template(rng) for __ in range(60)]
        matchers = [compile_matcher(t) for t in templates]
        descs = [random_desc(rng) for __ in range(200)]
        for desc in descs:
            for tmpl, matcher in zip(templates, matchers):
                assert matcher(desc) == match_desc(tmpl, desc), (
                    f"compiled and interpreted matching disagree for "
                    f"{tmpl} vs {desc}"
                )

    def test_false_template_never_matches(self):
        matcher = compile_matcher(FALSE_TEMPLATE)
        assert matcher(notify_desc(DataItemRef("alpha"), 1.0)) is None

    def test_repeated_variable_must_agree(self):
        tmpl = Template(
            EventKind.SPONTANEOUS_WRITE,
            ItemPattern("alpha", ()),
            (Var("b"), Var("b")),
        )
        matcher = compile_matcher(tmpl)
        ref = DataItemRef("alpha")
        assert matcher(spontaneous_write_desc(ref, 5.0, 5.0)) == {"b": 5.0}
        assert matcher(spontaneous_write_desc(ref, 4.0, 5.0)) is None


class TestIndexEquivalence:
    """Indexed candidate selection == linear scan, including firing order."""

    @staticmethod
    def linear_matches(index: RuleIndex, desc: EventDesc):
        """Reference semantics: scan every rule in install order."""
        out = []
        for installed in index:
            bindings = match_desc(installed.rule.lhs, desc)
            if bindings is not None:
                out.append((installed.rule.name, bindings))
        return out

    @staticmethod
    def indexed_matches(index: RuleIndex, desc: EventDesc):
        out = []
        for installed in index.candidates(desc):
            bindings = installed.matcher(desc)
            if bindings is not None:
                out.append((installed.rule.name, bindings))
        return out

    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_rule_event_mixes(self, seed):
        rng = random.Random(1000 + seed)
        index = RuleIndex()
        for serial in range(rng.choice([3, 20, 80])):
            index.add(random_rule(rng, serial), None)
        for __ in range(300):
            desc = random_desc(rng)
            assert self.indexed_matches(index, desc) == self.linear_matches(
                index, desc
            )

    def test_candidates_are_a_strict_subset_under_many_families(self):
        rng = random.Random(7)
        index = RuleIndex()
        for serial in range(200):
            rule = parse_rule(
                f"N(fam{serial}(n), b) -> [1] FALSE", name=f"r{serial}"
            )
            index.add(rule, None)
        desc = notify_desc(DataItemRef("fam7", ("k",)), 1.0)
        candidates = index.candidates(desc)
        assert [c.rule.name for c in candidates] == ["r7"]
        # ... and the pruning never drops a real match (cross-check):
        assert self.indexed_matches(index, desc) == self.linear_matches(
            index, desc
        )
        del rng


class TestCatchAllBucket:
    def test_family_variable_template_lands_in_catch_all(self):
        index = RuleIndex()
        keyed = Rule(
            name="keyed",
            lhs=Template(
                EventKind.NOTIFY, ItemPattern("alpha", (Var("n"),)), (Var("b"),)
            ),
            delay=0,
            steps=(RhsStep(FALSE_TEMPLATE),),
        )
        any_family = Rule(
            name="any-family",
            lhs=Template(
                EventKind.NOTIFY,
                ItemPattern(FAMILY_WILDCARD, (Var("n"),)),
                (Var("b"),),
            ),
            delay=0,
            steps=(RhsStep(FALSE_TEMPLATE),),
        )
        index.add(keyed, None)
        index.add(any_family, None)
        alpha = notify_desc(DataItemRef("alpha", ("e1",)), 1.0)
        beta = notify_desc(DataItemRef("beta", ("e1",)), 1.0)
        assert [c.rule.name for c in index.candidates(alpha)] == [
            "keyed",
            "any-family",
        ]
        assert [c.rule.name for c in index.candidates(beta)] == ["any-family"]

    def test_merge_preserves_installation_order(self):
        index = RuleIndex()

        def rule(name, family):
            return Rule(
                name=name,
                lhs=Template(
                    EventKind.NOTIFY,
                    ItemPattern(family, (Var("n"),)),
                    (Var("b"),),
                ),
                delay=0,
                steps=(RhsStep(FALSE_TEMPLATE),),
            )

        index.add(rule("k1", "alpha"), None)
        index.add(rule("w1", FAMILY_WILDCARD), None)
        index.add(rule("k2", "alpha"), None)
        index.add(rule("w2", FAMILY_WILDCARD), None)
        index.add(rule("k3", "alpha"), None)
        desc = notify_desc(DataItemRef("alpha", ("e1",)), 1.0)
        assert [c.rule.name for c in index.candidates(desc)] == [
            "k1",
            "w1",
            "k2",
            "w2",
            "k3",
        ]

    def test_catch_all_only_sees_matching_kinds(self):
        index = RuleIndex()
        any_notify = Rule(
            name="any-notify",
            lhs=Template(
                EventKind.NOTIFY, ItemPattern(FAMILY_WILDCARD, ()), (Var("b"),)
            ),
            delay=0,
            steps=(RhsStep(FALSE_TEMPLATE),),
        )
        index.add(any_notify, None)
        assert index.candidates(write_desc(DataItemRef("alpha"), 1.0)) == []
        assert [
            c.rule.name
            for c in index.candidates(notify_desc(DataItemRef("zeta"), 1.0))
        ] == ["any-notify"]


class TestFamilyVariableTemplates:
    def test_wildcard_family_matches_and_binds_args(self):
        tmpl = Template(
            EventKind.READ_RESPONSE,
            ItemPattern(FAMILY_WILDCARD, (Var("n"),)),
            (Var("b"),),
        )
        matcher = compile_matcher(tmpl)
        desc = read_response_desc(DataItemRef("anything", ("e9",)), 3.5)
        assert matcher(desc) == {"n": "e9", "b": 3.5}
        assert matcher(desc) == match_desc(tmpl, desc)

    def test_wildcard_family_still_checks_arity(self):
        tmpl = Template(
            EventKind.NOTIFY,
            ItemPattern(FAMILY_WILDCARD, (Var("n"),)),
            (Var("b"),),
        )
        matcher = compile_matcher(tmpl)
        assert matcher(notify_desc(DataItemRef("alpha"), 1.0)) is None

    def test_wildcard_family_cannot_be_grounded(self):
        pattern = ItemPattern(FAMILY_WILDCARD, (Const("e1"),))
        with pytest.raises(BindingError):
            ground_item(pattern, {})


class TestShellDispatchCounters:
    def test_counters_show_pruning(self):
        cm, __, ___, ____, _____ = two_site_relational()
        shell = cm.shell("sf")
        for index in range(50):
            cm.locations.register(f"Private{index}", "sf")
            shell.install(
                parse_rule(
                    f"N(other{index}(n), b) -> [5] W(Private{index}(n), b)",
                    name=f"miss{index}",
                )
            )
        shell.install(
            parse_rule("N(salary1(n), b) -> [5] W(Seen(n), b)", name="hit")
        )
        cm.locations.register("Seen", "sf")
        shell.translator_for("salary1").setup_notify("salary1")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 7.0)
        )
        cm.run(until=seconds(10))
        stats = shell.stats()
        assert stats["rules_installed"] == 51
        assert stats["rules_fired"] == 1
        # The N(salary1) event consults only its bucket (1 rule), not all
        # 51; the chained W(Seen) event consults nothing.
        assert stats["candidates_considered"] < stats["events_processed"] * 5
        assert cm.stats()["sf"] == stats
        assert cm.stats()["total"]["rules_fired"] >= 1

    def test_firing_order_matches_install_order_across_buckets(self):
        cm, __, ___, ____, _____ = two_site_relational()
        shell = cm.shell("sf")
        for family in ("First", "Second", "Third"):
            cm.locations.register(family, "sf")
        shell.install(
            parse_rule("N(salary1(n), b) -> [5] W(First(n), b)", name="a")
        )
        wildcard_rule = Rule(
            name="b",
            lhs=Template(
                EventKind.NOTIFY,
                ItemPattern(FAMILY_WILDCARD, (Var("n"),)),
                (Var("b"),),
            ),
            delay=0,
            steps=(
                RhsStep(
                    Template(
                        EventKind.WRITE,
                        ItemPattern("Second", (Var("n"),)),
                        (Var("b"),),
                    )
                ),
            ),
        )
        shell.install(wildcard_rule)
        shell.install(
            parse_rule("N(salary1(n), b) -> [5] W(Third(n), b)", name="c")
        )
        shell.translator_for("salary1").setup_notify("salary1")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("salary1", ("e1",), 7.0)
        )
        cm.run(until=seconds(10))
        fired = [
            event.rule.name
            for event in cm.scenario.trace.events
            if event.desc.kind is EventKind.WRITE and event.rule is not None
        ]
        assert fired == ["a", "b", "c"]
