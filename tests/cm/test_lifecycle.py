"""Lifecycle edge cases: repeated runs, repeated closes, horizon boundaries.

These pin down the "what happens if you do it twice" semantics that the
experiments rely on implicitly: extending a run, re-closing a trace, and
events scheduled exactly at the run horizon.
"""

from __future__ import annotations

from repro.cm import ConstraintManager, Scenario
from repro.core.items import DataItemRef
from repro.core.timebase import seconds
from repro.core.trace import ExecutionTrace
from repro.core.events import spontaneous_write_desc
from repro.sim.scheduler import Simulator


class TestRepeatedScenarioRun:
    def test_second_run_extends_the_first(self):
        scenario = Scenario(seed=0)
        fired: list[float] = []
        scenario.sim.at(seconds(5), lambda: fired.append(5.0))
        scenario.sim.at(seconds(15), lambda: fired.append(15.0))
        scenario.run(until=seconds(10))
        assert fired == [5.0]
        assert scenario.sim.now == seconds(10)
        scenario.run(until=seconds(20))
        assert fired == [5.0, 15.0]
        assert scenario.sim.now == seconds(20)
        assert scenario.trace.horizon == seconds(20)

    def test_rerun_at_same_horizon_is_idempotent(self):
        scenario = Scenario(seed=0)
        scenario.sim.at(seconds(1), lambda: None)
        scenario.run(until=seconds(10))
        events_before = scenario.sim.events_processed
        scenario.run(until=seconds(10))
        assert scenario.sim.events_processed == events_before
        assert scenario.sim.now == seconds(10)
        assert scenario.trace.horizon == seconds(10)

    def test_cm_run_passthrough_can_be_called_twice(self):
        cm = ConstraintManager(Scenario(seed=0))
        cm.add_site("sf")
        cm.run(until=seconds(5))
        cm.run(until=seconds(9))
        assert cm.scenario.sim.now == seconds(9)


class TestTraceClose:
    def test_close_twice_keeps_the_larger_horizon(self):
        trace = ExecutionTrace()
        trace.close(seconds(10))
        trace.close(seconds(10))
        assert trace.horizon == seconds(10)
        # A later, *smaller* close must not shrink the horizon either.
        trace.close(seconds(3))
        assert trace.horizon == seconds(10)

    def test_timelines_stable_across_repeated_close(self):
        trace = ExecutionTrace()
        x = DataItemRef("X")
        trace.record(seconds(1), "a", spontaneous_write_desc(x, None, 1.0))
        trace.close(seconds(10))
        first = trace.timeline(x).change_points()
        trace.close(seconds(10))
        assert trace.timeline(x).change_points() == first


class TestHorizonBoundary:
    def test_event_exactly_at_horizon_runs(self):
        sim = Simulator()
        fired: list[int] = []
        sim.at(seconds(10), lambda: fired.append(1))
        sim.run(until=seconds(10))
        assert fired == [1]
        assert sim.now == seconds(10)

    def test_event_one_tick_past_horizon_stays_queued(self):
        sim = Simulator()
        fired: list[int] = []
        sim.at(seconds(10) + 1, lambda: fired.append(1))
        sim.run(until=seconds(10))
        assert fired == []
        assert sim.now == seconds(10)
        # ... and still runs on the next run() call.
        sim.run(until=seconds(11))
        assert fired == [1]

    def test_simultaneous_horizon_events_all_run_in_order(self):
        sim = Simulator()
        fired: list[int] = []
        for index in range(3):
            sim.at(seconds(10), lambda i=index: fired.append(i))
        sim.run(until=seconds(10))
        assert fired == [0, 1, 2]
