"""Scenario-level equivalence: compiled dispatch vs. the tree-walking
reference must produce byte-identical execution traces.

The compiled rule programs (``repro.core.compile``) are a pure
performance transformation — same events, same ordering, same values,
same guarantee verdicts.  These tests run the full Section 4.2 salary
scenario under every suggested strategy with compilation on and off and
diff the traces event-for-event.
"""

from __future__ import annotations

import pytest

from repro.cm.shell import CMShell
from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario
from repro.workloads import PersonnelWorkload

STRATEGY_KINDS = ["propagation", "cached-propagation", "polling"]


def _run_salary(strategy_kind: str, seed: int = 7) -> tuple[list, dict]:
    """One full scenario run; returns (trace signature, dispatch stats)."""
    salary = build_salary_scenario(strategy_kind=strategy_kind, seed=seed)
    PersonnelWorkload(
        salary.cm, employee_count=6, rate=0.5, duration=seconds(120)
    )
    salary.cm.run(until=seconds(200))
    signature = [
        (event.time, event.site, str(event.desc),
         event.rule.name if event.rule is not None else None)
        for event in salary.scenario.trace.events
    ]
    return signature, salary.cm.stats()["total"]


@pytest.mark.parametrize("strategy_kind", STRATEGY_KINDS)
def test_compiled_and_interpreted_traces_identical(
    strategy_kind, monkeypatch
):
    compiled_trace, compiled_stats = _run_salary(strategy_kind)
    assert compiled_stats["rules_compiled"] == compiled_stats["rules_installed"]
    assert compiled_stats["rules_fallback"] == 0

    monkeypatch.setattr(CMShell, "compile_rules", False)
    reference_trace, reference_stats = _run_salary(strategy_kind)
    assert reference_stats["rules_compiled"] == 0

    assert compiled_trace == reference_trace
    assert compiled_stats["rules_fired"] == reference_stats["rules_fired"]
    assert (
        compiled_stats["events_processed"]
        == reference_stats["events_processed"]
    )


def test_install_escape_hatch_forces_interpretation():
    """``install(..., compiled=False)`` keeps that one rule tree-walking."""
    salary = build_salary_scenario(strategy_kind="propagation")
    cm = salary.cm
    stats = cm.stats()["total"]
    assert stats["rules_compiled"] == stats["rules_installed"] > 0

    # Reinstall the same strategy rules on a fresh scenario, uncompiled.
    fresh = build_salary_scenario(strategy_kind="propagation")
    shell = fresh.cm.shell("sf")
    installed_before = fresh.cm.stats()["total"]["rules_installed"]
    from repro.core.dsl import parse_rule

    extra = parse_rule(
        "N(salary1(n), b) -> [1] W(ShadowCopy(n), b)", name="shadow-copy"
    )
    shell.install(extra, compiled=False)
    stats = fresh.cm.stats()["total"]
    assert stats["rules_installed"] == installed_before + 1
    assert stats["rules_compiled"] == installed_before
    # An explicitly interpreted rule is not a compilation *failure*.
    assert stats["rules_fallback"] == 0
