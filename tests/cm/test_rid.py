"""Tests for CM-RID configuration."""

import pytest

from repro.cm.rid import CMRID, InterfaceOffer, ItemBinding
from repro.core.errors import ConfigurationError
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import clock_time, seconds


def sample_rid() -> CMRID:
    return (
        CMRID("relational", "branch", protocol={"server": "db1", "port": 4100})
        .bind(
            "salary1",
            params=("n",),
            table="employees",
            key_column="empid",
            value_column="salary",
        )
        .offer("salary1", InterfaceKind.NOTIFY, bound_seconds=2.0)
        .offer("salary1", InterfaceKind.READ, bound_seconds=1.0)
        .bind("budget", table="totals", key_column="k", value_column="v",
              key="budget")
        .offer(
            "budget",
            InterfaceKind.UPDATE_WINDOW,
            window=(clock_time(17), clock_time(8)),
        )
        .offer(
            "budget",
            InterfaceKind.CONDITIONAL_NOTIFY,
            bound_seconds=3.0,
            condition="abs(b - a) > a * 0.1",
        )
    )


class TestBuilding:
    def test_duplicate_binding_rejected(self):
        rid = sample_rid()
        with pytest.raises(ConfigurationError):
            rid.bind("salary1", table="x", key_column="k", value_column="v")

    def test_offer_for_unbound_family_rejected(self):
        with pytest.raises(ConfigurationError):
            CMRID("relational", "x").offer("ghost", InterfaceKind.READ)

    def test_interface_set_materializes_rules(self):
        interfaces = sample_rid().interface_set()
        assert interfaces.has("salary1", InterfaceKind.NOTIFY)
        assert interfaces.bound("salary1", InterfaceKind.NOTIFY) == seconds(2)
        window = interfaces.get("budget", InterfaceKind.UPDATE_WINDOW)
        assert window.window_start == clock_time(17)

    def test_conditional_notify_requires_condition(self):
        rid = CMRID("relational", "x").bind(
            "f", table="t", key_column="k", value_column="v"
        )
        rid.offers["f"] = [InterfaceOffer(InterfaceKind.CONDITIONAL_NOTIFY)]
        with pytest.raises(ConfigurationError):
            rid.interface_set()

    def test_update_window_requires_window(self):
        rid = CMRID("relational", "x").bind(
            "f", table="t", key_column="k", value_column="v"
        )
        rid.offers["f"] = [InterfaceOffer(InterfaceKind.UPDATE_WINDOW)]
        with pytest.raises(ConfigurationError):
            rid.interface_set()

    def test_binding_lookup_errors(self):
        with pytest.raises(ConfigurationError):
            sample_rid().binding("ghost")


class TestDictRoundTrip:
    def test_roundtrip_preserves_everything(self):
        rid = sample_rid()
        restored = CMRID.from_dict(rid.to_dict())
        assert restored.to_dict() == rid.to_dict()
        assert restored.source_kind == "relational"
        assert restored.protocol == {"server": "db1", "port": 4100}
        interfaces = restored.interface_set()
        assert interfaces.has("budget", InterfaceKind.CONDITIONAL_NOTIFY)
        assert (
            interfaces.get("budget", InterfaceKind.UPDATE_WINDOW).window_end
            == clock_time(8)
        )
        assert restored.binding("salary1").params == ("n",)


class TestMalformedFiles:
    """A bad CM-RID file must fail at load time with the offending entry
    in the error, never with a bare KeyError/ValueError."""

    def test_missing_source_kind(self):
        with pytest.raises(ConfigurationError, match="source_kind"):
            CMRID.from_dict({"source_name": "branch"})

    def test_missing_source_name(self):
        with pytest.raises(ConfigurationError, match="source_name"):
            CMRID.from_dict({"source_kind": "relational"})

    def test_unknown_interface_kind_named(self):
        data = sample_rid().to_dict()
        data["offers"]["salary1"][0]["kind"] = "telepathy"
        with pytest.raises(ConfigurationError) as excinfo:
            CMRID.from_dict(data)
        message = str(excinfo.value)
        assert "telepathy" in message
        assert "salary1" in message
        # The error teaches the valid vocabulary.
        assert InterfaceKind.NOTIFY.value in message

    def test_offer_missing_kind_field(self):
        data = sample_rid().to_dict()
        del data["offers"]["salary1"][0]["kind"]
        with pytest.raises(ConfigurationError, match="salary1"):
            CMRID.from_dict(data)

    def test_offer_for_unbound_family_in_file(self):
        data = sample_rid().to_dict()
        data["offers"]["ghost"] = [{"kind": "read", "bound_seconds": 1.0}]
        with pytest.raises(ConfigurationError, match="ghost"):
            CMRID.from_dict(data)

    def test_non_mapping_binding_rejected(self):
        with pytest.raises(ConfigurationError, match="salary1"):
            CMRID.from_dict(
                {
                    "source_kind": "relational",
                    "source_name": "branch",
                    "bindings": {"salary1": "employees.salary"},
                }
            )

    def test_duplicate_binding_via_load_then_bind(self):
        rid = CMRID.from_dict(sample_rid().to_dict())
        with pytest.raises(ConfigurationError, match="already bound"):
            rid.bind("salary1", table="x", key_column="k", value_column="v")

    def test_well_formed_file_still_roundtrips(self):
        data = sample_rid().to_dict()
        assert CMRID.from_dict(data).to_dict() == data
