"""Tests for the non-relational translators: the heterogeneity layer."""

import pytest

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.cm.translators import translator_for
from repro.cm.translators.file import decode_value, encode_value
from repro.core.errors import UnsupportedOperationError
from repro.core.events import EventKind
from repro.core.interfaces import InterfaceKind
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import seconds
from repro.ris.bibliodb import BibRecord, BiblioDatabase
from repro.ris.filestore import FlatFileStore
from repro.ris.legacy import LegacySystem
from repro.ris.objectstore import ObjectStore
from repro.ris.whois import WhoisDirectory


def single_site(source, rid):
    scenario = Scenario()
    cm = ConstraintManager(scenario)
    cm.add_site("here")
    translator = cm.add_source("here", source, rid)
    return cm, translator


class TestValueEncoding:
    @pytest.mark.parametrize(
        "value", [42, -7, 3.5, True, False, "text", "tabs\\here"]
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_untagged_content_reads_as_string(self):
        assert decode_value("plain") == "plain"


class TestFileTranslator:
    def build(self):
        store = FlatFileStore("fs")
        rid = (
            CMRID("flat-file", "fs")
            .bind("phone", params=("n",), path="/data/phones")
            .offer("phone", InterfaceKind.READ, bound_seconds=1.0)
            .offer("phone", InterfaceKind.WRITE, bound_seconds=1.0)
        )
        return single_site(store, rid), store

    def test_write_then_read_roundtrip(self):
        (cm, translator), store = self.build()
        ref = DataItemRef("phone", ("ada",))
        cm.scenario.sim.at(
            seconds(1), lambda: translator.request_write(ref, "555-1234")
        )
        cm.run(until=seconds(5))
        assert translator._native_read(ref) == "555-1234"
        assert "ada" in store.read_file("/data/phones")

    def test_missing_record_reads_as_missing(self):
        (cm, translator), __ = self.build()
        assert translator._native_read(
            DataItemRef("phone", ("ghost",))
        ) is MISSING

    def test_delete_via_missing(self):
        (cm, translator), store = self.build()
        ref = DataItemRef("phone", ("ada",))
        translator._native_write(ref, "555")
        translator._native_write(ref, MISSING)
        assert translator._native_read(ref) is MISSING

    def test_enumerate(self):
        (cm, translator), __ = self.build()
        translator._native_write(DataItemRef("phone", ("a",)), "1")
        translator._native_write(DataItemRef("phone", ("b",)), "2")
        refs = translator.enumerate_refs("phone")
        assert [r.args[0] for r in refs] == ["a", "b"]

    def test_no_notify_possible(self):
        (cm, translator), __ = self.build()
        with pytest.raises(UnsupportedOperationError):
            translator.setup_notify("phone")


class TestObjectTranslator:
    def build(self, offer_notify=True):
        store = ObjectStore("oo")
        store.define_class("Person", {"login": "str", "email": "str"})
        rid = CMRID("object", "oo").bind(
            "email",
            params=("n",),
            class_name="Person",
            attribute="email",
            key_attribute="login",
        )
        if offer_notify:
            rid.offer("email", InterfaceKind.NOTIFY, bound_seconds=1.0)
        rid.offer("email", InterfaceKind.READ, bound_seconds=1.0)
        rid.offer("email", InterfaceKind.WRITE, bound_seconds=1.0)
        return single_site(store, rid), store

    def test_read_by_key_attribute(self):
        (cm, translator), store = self.build()
        store.create("Person", {"login": "ada", "email": "ada@x"})
        assert translator._native_read(DataItemRef("email", ("ada",))) == "ada@x"

    def test_write_creates_object_when_absent(self):
        (cm, translator), store = self.build()
        translator._native_write(DataItemRef("email", ("bob",)), "bob@x")
        assert store.find("Person", "login", "bob")

    def test_write_missing_deletes_object(self):
        (cm, translator), store = self.build()
        store.create("Person", {"login": "ada", "email": "a@x"})
        translator._native_write(DataItemRef("email", ("ada",)), MISSING)
        assert not store.find("Person", "login", "ada")

    def test_spontaneous_update_notifies(self):
        (cm, translator), store = self.build()
        store.create("Person", {"login": "ada", "email": "a@x"})
        translator.setup_notify("email")
        cm.scenario.sim.at(
            seconds(1),
            lambda: cm.spontaneous_write("email", ("ada",), "new@x"),
        )
        cm.run(until=seconds(5))
        notifies = [
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.NOTIFY
        ]
        assert len(notifies) == 1
        assert notifies[0].desc.values == ("new@x",)

    def test_other_attribute_updates_do_not_notify(self):
        (cm, translator), store = self.build()
        oid = store.create("Person", {"login": "ada", "email": "a@x"})
        translator.setup_notify("email")

        def rename():
            translator._current_spontaneous = object()
            try:
                store.write_attr(oid, "login", "ada2")
            finally:
                translator._current_spontaneous = None

        cm.scenario.sim.at(seconds(1), rename)
        cm.run(until=seconds(5))
        assert not [
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.NOTIFY
        ]


class TestBiblioTranslator:
    def build(self):
        biblio = BiblioDatabase("lib")
        biblio.ingest(BibRecord("r1", "Toolkit", ("widom",), 1996, "ICDE"))
        rid = (
            CMRID("bibliographic", "lib")
            .bind("paper", params=("i",), field="title")
            .bind("paper_exists", params=("i",), exists="yes")
            .offer("paper", InterfaceKind.READ, bound_seconds=1.0)
            .offer("paper_exists", InterfaceKind.READ, bound_seconds=1.0)
        )
        return single_site(biblio, rid), biblio

    def test_field_read(self):
        (cm, translator), __ = self.build()
        assert translator._native_read(DataItemRef("paper", ("r1",))) == "Toolkit"

    def test_exists_read(self):
        (cm, translator), __ = self.build()
        assert translator._native_read(
            DataItemRef("paper_exists", ("r1",))
        ) is True
        assert translator._native_read(
            DataItemRef("paper_exists", ("nope",))
        ) is MISSING

    def test_feed_side_write(self):
        (cm, translator), biblio = self.build()
        translator._native_write(DataItemRef("paper", ("r2",)), "New Paper")
        assert biblio.exists("r2")
        translator._native_write(DataItemRef("paper", ("r2",)), MISSING)
        assert not biblio.exists("r2")

    def test_enumerate(self):
        (cm, translator), __ = self.build()
        refs = translator.enumerate_refs("paper")
        assert [r.args[0] for r in refs] == ["r1"]


class TestWhoisTranslator:
    def build(self):
        whois = WhoisDirectory("w")
        whois.admin_update("ada", phone="555")
        rid = (
            CMRID("whois", "w")
            .bind("phone", params=("n",), field="phone")
            .offer("phone", InterfaceKind.READ, bound_seconds=1.0)
        )
        return single_site(whois, rid), whois

    def test_read(self):
        (cm, translator), __ = self.build()
        assert translator._native_read(DataItemRef("phone", ("ada",))) == "555"

    def test_missing(self):
        (cm, translator), __ = self.build()
        assert translator._native_read(
            DataItemRef("phone", ("ghost",))
        ) is MISSING

    def test_spontaneous_write_is_admin_update(self):
        (cm, translator), whois = self.build()
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("phone", ("ada",), "999")
        )
        cm.run(until=seconds(2))
        assert whois.field("ada", "phone") == "999"


class TestLegacyTranslator:
    def build(self):
        legacy = LegacySystem("old")
        rid = (
            CMRID("legacy", "old")
            .bind("quote", params=("n",), key_prefix="q:")
            .offer("quote", InterfaceKind.NOTIFY, bound_seconds=1.0)
            .offer("quote", InterfaceKind.READ, bound_seconds=1.0)
        )
        return single_site(legacy, rid), legacy

    def test_notify_flows(self):
        (cm, translator), __ = self.build()
        translator.setup_notify("quote")
        cm.scenario.sim.at(
            seconds(1), lambda: cm.spontaneous_write("quote", ("ibm",), 42)
        )
        cm.run(until=seconds(5))
        notifies = [
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.NOTIFY
        ]
        assert len(notifies) == 1
        assert notifies[0].desc.item == DataItemRef("quote", ("ibm",))

    def test_key_prefix_filtering(self):
        (cm, translator), legacy = self.build()
        translator.setup_notify("quote")

        def unrelated_write():
            translator._current_spontaneous = object()
            try:
                legacy.put("other:key", 1)
            finally:
                translator._current_spontaneous = None

        cm.scenario.sim.at(seconds(1), unrelated_write)
        cm.run(until=seconds(5))
        assert not [
            e for e in cm.scenario.trace.events
            if e.desc.kind is EventKind.NOTIFY
        ]

    def test_registry_dispatch(self):
        legacy = LegacySystem("old")
        rid = CMRID("legacy", "old").bind("q", key_prefix="q:")
        translator = translator_for(legacy, rid)
        from repro.cm.translators.legacy import LegacyTranslator

        assert isinstance(translator, LegacyTranslator)

    def test_registry_rejects_unknown_kind(self):
        rid = CMRID("hologram", "h")
        with pytest.raises(ValueError):
            translator_for(LegacySystem("h"), rid)

    def test_kind_mismatch_rejected(self):
        from repro.core.errors import ConfigurationError

        rid = CMRID("relational", "old").bind(
            "q", table="t", key_column="k", value_column="v"
        )
        with pytest.raises(ConfigurationError):
            translator_for(LegacySystem("old"), rid)
