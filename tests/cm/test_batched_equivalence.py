"""Batched and sharded dispatch vs. the sequential kernel.

Batching (``ingest_batch``, ``deliver_local_events``, ``enable_batching``)
and family sharding (``Scenario(dispatch_shards=...)``) are pure
performance transformations.  These tests hold them to that claim at
three strengths:

- **trace identity** — dispatching pre-recorded events through the fused
  batch loop, sharded or not, must produce the byte-identical trace the
  per-event specification path produces (same events, same firing order,
  same provenance);
- **verdict identity** — full salary-scenario runs with same-tick
  buffering enabled must reach exactly the sequential kernel's guarantee
  verdicts under every strategy and several seeds, with the Appendix-A
  validator passing on both traces;
- **laziness is invisible** — the deferred Event materialization behind
  ``record_batch`` must never be observable: flushed events are the very
  objects dispatch fired on, sequence numbers stay contiguous, and the
  validator accepts mixed batch/per-event recording.
"""

from __future__ import annotations

import pytest

from repro.cm import ConstraintManager, Scenario
from repro.core import validate_trace
from repro.core.dsl import parse_rule
from repro.core.events import EventKind, notify_desc, reset_event_sequence
from repro.core.items import item
from repro.core.rules import RhsStep, Rule
from repro.core.templates import FALSE_TEMPLATE, Template
from repro.core.terms import FAMILY_WILDCARD, ItemPattern, Var
from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario
from repro.workloads import PersonnelWorkload

STRATEGY_KINDS = ["propagation", "cached-propagation", "polling"]
SEEDS = [0, 1, 2]

N_EVENTS = 200
FAMILIES = 8


# -- dispatch-level trace identity --------------------------------------------


def _build_shell(
    shards: int = 1, threads: bool = False, catch_all: bool = True
):
    """One shell with a chained-write rule per family (immediate RHS, so
    firing writes land mid-batch) plus an optional family-wildcard audit
    rule (the catch-all that pins events to the barrier shard)."""
    reset_event_sequence()
    cm = ConstraintManager(
        Scenario(seed=0, dispatch_shards=shards, shard_threads=threads)
    )
    cm.add_site("s")
    shell = cm.shell("s")
    for i in range(FAMILIES):
        cm.locations.register(f"Out{i}", "s")
        shell.install(
            parse_rule(f"N(fam{i}(n), b) -> [0] W(Out{i}, b)", name=f"copy{i}")
        )
    if catch_all:
        lhs = Template(
            EventKind.NOTIFY,
            ItemPattern(FAMILY_WILDCARD, (Var("n"),)),
            (Var("b"),),
        )
        shell.install(
            Rule(name="audit", lhs=lhs, delay=0, steps=(RhsStep(FALSE_TEMPLATE),))
        )
    return cm, shell


def _descs():
    return [
        notify_desc(item(f"fam{i % FAMILIES}", f"k{i % 5}"), float(i))
        for i in range(N_EVENTS)
    ]


def _signature(trace):
    base = trace.events[0].seq
    return [
        (
            event.time,
            event.site,
            str(event.desc),
            event.rule.name if event.rule is not None else None,
            event.trigger.seq - base if event.trigger is not None else None,
            event.seq - base,
        )
        for event in trace.events
    ]


def _sequential_signature(**build_kwargs):
    cm, shell = _build_shell(**build_kwargs)
    trace = cm.scenario.trace
    # Pre-record the whole block, then deliver one-by-one: the per-event
    # specification path on exactly the inputs the batched paths get.
    events = [trace.record(0, "s", desc) for desc in _descs()]
    for event in events:
        shell.deliver_local_event(event)
    return _signature(trace), cm.stats()["total"]


def test_deliver_local_events_trace_identical():
    expected, expected_stats = _sequential_signature()
    cm, shell = _build_shell()
    trace = cm.scenario.trace
    events = [trace.record(0, "s", desc) for desc in _descs()]
    shell.deliver_local_events(events)
    assert _signature(trace) == expected
    stats = cm.stats()["total"]
    assert stats["rules_fired"] == expected_stats["rules_fired"]
    assert (
        stats["candidates_considered"]
        == expected_stats["candidates_considered"]
    )


@pytest.mark.parametrize("shards,threads", [(4, False), (16, True)])
def test_sharded_dispatch_trace_identical(shards, threads):
    expected, __ = _sequential_signature()
    cm, shell = _build_shell(shards=shards, threads=threads)
    trace = cm.scenario.trace
    events = [trace.record(0, "s", desc) for desc in _descs()]
    shell.deliver_local_events(events)
    assert _signature(trace) == expected
    batching = shell.batching_stats()
    assert batching["shards"] == shards
    # The family-wildcard audit rule makes every NOTIFY a barrier event.
    assert batching["barrier_events"] == N_EVENTS


@pytest.mark.parametrize("shards", [4, 16])
def test_sharded_dispatch_spreads_without_catch_all(shards):
    """Without a catch-all rule the partitioner actually shards."""
    expected, __ = _sequential_signature(catch_all=False)
    cm, shell = _build_shell(shards=shards, catch_all=False)
    trace = cm.scenario.trace
    events = [trace.record(0, "s", desc) for desc in _descs()]
    shell.deliver_local_events(events)
    assert _signature(trace) == expected
    batching = shell.batching_stats()
    assert batching["barrier_events"] == 0
    assert sum(batching["events_by_shard"]) == N_EVENTS
    assert sum(1 for n in batching["events_by_shard"] if n) > 1


def test_ingest_batch_equivalent_and_valid():
    """``ingest_batch`` defers chained writes to after the block (they
    stay same-tick, so verdicts and the validator are unaffected); the
    event *multiset* matches the sequential run's exactly."""
    expected, __ = _sequential_signature(catch_all=False)
    cm, shell = _build_shell(catch_all=False)
    for start in range(0, N_EVENTS, 64):
        shell.ingest_batch(_descs()[start : start + 64], time=0)
    got = _signature(cm.scenario.trace)
    assert sorted(got) != [] and sorted(e[:4] for e in got) == sorted(
        e[:4] for e in expected
    )
    assert validate_trace(cm.scenario.trace, shell._index.rules) == []


# -- scenario-level verdict identity ------------------------------------------


def _salary_run(strategy_kind: str, seed: int, **scenario_kwargs):
    salary = build_salary_scenario(
        strategy_kind=strategy_kind,
        seed=seed,
        polling_period=10.0,
        **scenario_kwargs,
    )
    PersonnelWorkload(
        salary.cm, employee_count=6, rate=0.5, duration=seconds(120)
    )
    salary.cm.run(until=seconds(200))
    verdicts = {
        name: report.valid
        for name, report in salary.cm.check_guarantees().items()
    }
    violations = validate_trace(
        salary.scenario.trace, list(salary.installed.strategy.rules)
    )
    return salary, verdicts, violations


@pytest.mark.parametrize("strategy_kind", STRATEGY_KINDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_batched_salary_verdicts_identical(strategy_kind, seed):
    __, base_verdicts, base_violations = _salary_run(strategy_kind, seed)
    batched, verdicts, violations = _salary_run(
        strategy_kind, seed, batch_max=32
    )
    assert base_violations == []
    assert violations == []
    assert verdicts == base_verdicts
    processed = batched.cm.stats()["total"]
    assert processed["events_processed"] > 0


def test_sharded_salary_trace_identical_to_unsharded_batched():
    """With the same batching, sharded dispatch must not change the trace
    at all — shard partitioning only reorders the *matching* phase."""

    def run(shards: int):
        salary, verdicts, violations = _salary_run(
            "propagation", 0, batch_max=32, dispatch_shards=shards
        )
        events = salary.scenario.trace.events
        base = events[0].seq
        return (
            [
                (e.time, e.site, str(e.desc), e.seq - base)
                for e in events
            ],
            verdicts,
            violations,
        )

    unsharded, base_verdicts, base_violations = run(1)
    sharded, verdicts, violations = run(4)
    assert base_violations == [] and violations == []
    assert sharded == unsharded
    assert verdicts == base_verdicts


# -- the lazy trace is invisible ----------------------------------------------


def test_record_batch_flush_preserves_identity_and_order():
    from repro.core.trace import ExecutionTrace

    reset_event_sequence()
    trace = ExecutionTrace()
    descs = _descs()[:10]
    batch = trace.record_batch(0, "s", descs)
    # Lazily counted, not yet materialized.
    assert len(trace) == 10
    early = batch.event_at(7)  # out-of-order trigger materialization
    events = trace.events  # flush-on-read
    assert len(events) == 10
    assert events[7] is early
    assert [e.seq for e in events] == list(range(events[0].seq, events[0].seq + 10))
    assert [e.desc for e in events] == descs
    # Per-event recording continues seamlessly after a flushed block.
    later = trace.record(seconds(1), "s", descs[0])
    assert later.seq == events[-1].seq + 1


def test_record_batch_rejects_time_regression():
    from repro.core.trace import ExecutionTrace, TraceError

    trace = ExecutionTrace()
    trace.record_batch(seconds(2), "s", _descs()[:3])
    with pytest.raises(TraceError):
        trace.record_batch(seconds(1), "s", _descs()[:3])


# -- ShellStore.items caching (the per-access dict rebuild regression) --------


def test_store_items_view_is_cached_and_read_only():
    cm, shell = _build_shell(catch_all=False)
    store = shell.store
    ref = item("Out0")
    store.write(ref, 1.0, 0)
    view = store.items()
    assert store.items() is view  # no rebuild per access
    assert view[ref] == 1.0
    with pytest.raises(TypeError):
        view[ref] = 2.0  # read-only
    store.write(ref, 3.0, 0)
    assert store.items()[ref] == 3.0  # writes stay visible


def test_store_items_sharded_merges_and_invalidates():
    cm, shell = _build_shell(shards=4, catch_all=False)
    store = shell.store
    refs = [item(f"Out{i}") for i in range(FAMILIES)]
    for index, ref in enumerate(refs):
        store.write(ref, float(index), 0)
    view = store.items()
    assert store.items() is view
    assert {ref: view[ref] for ref in refs} == {
        ref: float(index) for index, ref in enumerate(refs)
    }
    store.write(refs[0], 99.0, 0)
    fresh = store.items()
    assert fresh is not view  # snapshot invalidated by the write
    assert fresh[refs[0]] == 99.0
    assert sum(store.writes_by_shard) == store.writes
