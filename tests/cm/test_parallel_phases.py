"""Plan-driven dispatch vs. the serial kernel, and the certification's
negative space.

The certified parallel plan licenses *evaluation* reordering only; these
tests hold the plan-driven batch path to byte-identical traces across
randomized workloads (seeds 0–4), check that adversarial non-commuting
rule sets are never certified, and pin the sharded write-attribution fix
(RHS writes follow the dispatching shard, not the written family's home
shard).
"""

from __future__ import annotations

import random

import pytest

from repro.cm import ConstraintManager, Scenario
from repro.core.dsl import parse_rule
from repro.core.events import notify_desc, reset_event_sequence
from repro.core.items import item
from repro.core.timebase import seconds

SEEDS = [0, 1, 2, 3, 4]
FAMILIES = 6
N_EVENTS = 150

#: A mixed rule set: keyed commuting writers, a store-free condition, a
#: hoistable condition over an unwritten item, and one genuinely
#: conflicting blind-writer pair — so every planner facility (phases,
#: store_free, hoistable, conflicts) is live in the same run.
RULES = [
    ("N(fam0(n), b) -> [0] W(Out0(n), b)", "copy0"),
    ("N(fam1(n), b) -> [0] W(Out1(n), b)", "copy1"),
    ("N(fam2(n), b) & (b > 40) -> [0] W(Hot(n), b)", "hot"),
    ("N(fam3(n), b) & (b > Threshold) -> [0] W(Seen(n), b)", "watch"),
    ("N(fam4(n), b) -> [0] W(Total, b)", "acc_a"),
    ("N(fam5(n), b) -> [0] W(Total, b)", "acc_b"),
]


def build_shell(parallel: bool, sanitize: bool = False, shards: int = 4):
    reset_event_sequence()
    cm = ConstraintManager(
        Scenario(
            seed=0,
            dispatch_shards=shards,
            parallel_phases=parallel,
            sanitize=sanitize,
        )
    )
    cm.add_site("s")
    shell = cm.shell("s")
    for text, name in RULES:
        shell.install(parse_rule(text, name=name))
    return cm, shell


def random_descs(seed: int):
    rng = random.Random(seed)
    return [
        notify_desc(
            item(f"fam{rng.randrange(FAMILIES)}", f"k{rng.randrange(5)}"),
            float(rng.randrange(100)),
        )
        for _ in range(N_EVENTS)
    ]


def signature(trace):
    base = trace.events[0].seq
    return [
        (
            event.time,
            event.site,
            str(event.desc),
            event.rule.name if event.rule is not None else None,
            event.trigger.seq - base if event.trigger is not None else None,
            event.seq - base,
        )
        for event in trace.events
    ]


def run_batches(cm, shell, descs, batch: int = 16):
    trace = cm.scenario.trace
    for start in range(0, len(descs), batch):
        chunk = descs[start : start + batch]
        events = [trace.record(0, "s", desc) for desc in chunk]
        shell.deliver_local_events(events)
    return signature(trace)


class TestRandomizedSoundness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_plan_driven_trace_is_byte_identical(self, seed):
        descs = random_descs(seed)
        cm_serial, shell_serial = build_shell(parallel=False)
        expected = run_batches(cm_serial, shell_serial, descs)
        serial_stats = cm_serial.stats()["total"]

        cm_par, shell_par = build_shell(parallel=True, sanitize=True)
        got = run_batches(cm_par, shell_par, descs)
        assert got == expected
        stats = cm_par.stats()["total"]
        assert stats["rules_fired"] == serial_stats["rules_fired"]
        assert cm_par.scenario.sanitizer.ok

    def test_the_plan_is_non_trivial_and_conditions_hoist(self):
        cm, shell = build_shell(parallel=True)
        plan = shell.parallel_plan()
        open_phases = [p for p in plan.phases if not p.barrier]
        assert len(plan.phases) >= 2, "the acc_a/acc_b conflict splits"
        assert any(len(p.rules) > 1 for p in open_phases)
        assert plan.certified_pairs > 0
        assert "hot" in plan.store_free
        assert "watch" in plan.hoistable and "watch" not in plan.store_free
        run_batches(cm, shell, random_descs(0))
        assert shell.parallelism_stats()["hoisted_conditions"] > 0


class TestAdversarialNeverCertified:
    """One rule pair per non-commuting shape: whatever else the planner
    does, ``independent()`` must stay False for these."""

    def _plan(self, rules, rhs_sites=()):
        reset_event_sequence()
        cm = ConstraintManager(Scenario(seed=0, dispatch_shards=4))
        cm.add_site("s")
        cm.add_site("peer")
        shell = cm.shell("s")
        sites = dict(rhs_sites)
        for text, name in rules:
            shell.install(parse_rule(text, name=name), sites.get(name))
        return shell.parallel_plan()

    def test_write_write_on_the_same_item(self):
        plan = self._plan([
            ("N(a(n), b) -> [0] W(Total, b)", "ra"),
            ("N(b(n), b) -> [0] W(Total, b)", "rb"),
        ])
        assert not plan.independent("ra", "rb")

    def test_read_vs_write(self):
        plan = self._plan([
            ("N(a(n), b) & (b > Total) -> [0] W(Out(n), b)", "ra"),
            ("N(b(n), b) -> [0] W(Total, b)", "rb"),
        ])
        assert not plan.independent("ra", "rb")

    def test_enumerating_read_vs_family_write(self):
        plan = self._plan([
            ("N(a(n), b) -> [0] RR(pos(x))", "scan"),
            ("N(b(n), b) -> [0] W(pos(n), b)", "record"),
        ])
        assert not plan.independent("scan", "record")

    def test_cross_site_sender_is_never_certified(self):
        plan = self._plan(
            [
                ("N(a(n), b) -> [0] W(Far(n), b)", "push"),
                ("N(b(n), b) -> [0] W(Out(n), b)", "local"),
            ],
            rhs_sites={"push": "peer"},
        )
        assert plan.barrier_reasons["push"]
        assert not plan.independent("push", "local")

    def test_chained_write_collision_is_never_certified(self):
        # ra only writes Mid, but Mid triggers the chain rule which
        # writes Total — colliding with rb's direct write.
        plan = self._plan([
            ("N(a(n), b) -> [0] W(Mid, b)", "ra"),
            ("W(Mid, b) -> [0] W(Total, b)", "chain"),
            ("N(b(n), b) -> [0] W(Total, b)", "rb"),
        ])
        assert not plan.independent("ra", "rb")

    def test_overlap_must_be_proven_absent_not_just_unlikely(self):
        # ANY-keyed writes to the same family may alias: not certifiable.
        plan = self._plan([
            ("N(a(n), b) -> [0] W(Out(n), b)", "ra"),
            ("N(b(n), b) -> [0] W(Out(n), b)", "rb"),
        ])
        assert not plan.independent("ra", "rb")


class TestWriteAttribution:
    """The sharded-dispatch attribution fix: a batch event's RHS writes
    count against the shard that *dispatched* the event."""

    def _catch_all_shell(self, shards=4):
        from repro.core.events import EventKind
        from repro.core.rules import RhsStep, Rule
        from repro.core.templates import FALSE_TEMPLATE, Template
        from repro.core.terms import FAMILY_WILDCARD, ItemPattern, Var

        reset_event_sequence()
        cm = ConstraintManager(Scenario(seed=0, dispatch_shards=shards))
        cm.add_site("s")
        shell = cm.shell("s")
        for i in range(FAMILIES):
            shell.install(
                parse_rule(
                    f"N(fam{i}(n), b) -> [0] W(Out{i}(n), b)", name=f"copy{i}"
                )
            )
        # The catch-all pins every NOTIFY to barrier shard 0.
        lhs = Template(
            EventKind.NOTIFY,
            ItemPattern(FAMILY_WILDCARD, (Var("n"),)),
            (Var("b"),),
        )
        shell.install(
            Rule(name="audit", lhs=lhs, delay=0, steps=(RhsStep(FALSE_TEMPLATE),))
        )
        return cm, shell

    def test_barrier_dispatched_writes_attribute_to_shard_zero(self):
        cm, shell = self._catch_all_shell()
        descs = random_descs(0)
        run_batches(cm, shell, descs)
        store = shell.store
        dispatcher = shell._sharded
        # Every event was barrier-pinned by the catch-all, so dispatch
        # processed them all on shard 0 — and the RHS writes must agree,
        # not scatter across the written families' home shards.
        assert dispatcher.events_by_shard[0] == sum(dispatcher.events_by_shard)
        assert store.writes_by_shard[0] == store.writes
        assert sum(store.writes_by_shard) == store.writes

    def test_keyed_dispatch_attributes_to_the_dispatching_shard(self):
        cm, shell = build_shell(parallel=False)
        run_batches(cm, shell, random_descs(1))
        store = shell.store
        assert sum(store.writes_by_shard) == store.writes
        assert store.writes > 0

    def test_attribution_override_resets_after_the_batch(self):
        cm, shell = build_shell(parallel=False)
        run_batches(cm, shell, random_descs(2))
        assert shell.store.dispatch_shard is None
        # A direct write outside any batch attributes by home shard.
        before = list(shell.store.writes_by_shard)
        ref = item("Out0", "kx")
        shell.store.write(ref, 1.0, 0)
        index = shell.store._shard_index("Out0")
        assert shell.store.writes_by_shard[index] == before[index] + 1


class TestManagerIntegration:
    def test_salary_run_with_plan_and_sanitizer_matches_serial(self):
        from repro.experiments.common import build_salary_scenario

        def verdicts(**kwargs):
            salary = build_salary_scenario("propagation", seed=3, **kwargs)
            salary.cm.spontaneous_write("salary1", ("e1",), 50_000.0)
            salary.cm.run(seconds(40))
            reports = salary.cm.check_guarantees()
            result = {name: r.valid for name, r in reports.items()}
            salary.cm.stop()
            return result, salary

        serial, __ = verdicts()
        parallel, salary = verdicts(
            dispatch_shards=2, parallel_phases=True, sanitize=True
        )
        assert parallel == serial
        assert salary.scenario.sanitizer.ok
        # The run report must render even for sites whose shell carries a
        # parallelism entry with no built plan (``"plan": None``).
        report = salary.cm.run_report()
        rendered = report.render()
        assert "parallelism" in report.to_dict()
        assert "sanitizer: ok" in rendered
