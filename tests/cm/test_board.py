"""Tests for the guarantee-status board (Section 5 semantics)."""

from repro.cm.failures import FailureNotice
from repro.cm.guarantee_status import GuaranteeStatusBoard
from repro.core.guarantees import follows
from repro.core.timebase import seconds
from repro.sim.failures import FailureKind


def notice(site, kind, time, recovered=False):
    return FailureNotice(
        site=site,
        source_name="db",
        kind=kind,
        time=time,
        detail="test",
        recovered=recovered,
    )


class TestBoard:
    def build(self):
        board = GuaranteeStatusBoard()
        metric = follows("X", "Y", within_seconds=5)
        nonmetric = follows("X", "Y")
        board.register(metric, {"a", "b"})
        board.register(nonmetric, {"a", "b"})
        other = follows("P", "Q")
        board.register(other, {"c"})
        return board, metric, nonmetric, other

    def test_initially_valid(self):
        board, metric, nonmetric, other = self.build()
        assert board.is_valid(metric)
        assert board.is_valid(nonmetric)

    def test_metric_failure_hits_metric_guarantees_only(self):
        board, metric, nonmetric, other = self.build()
        board.on_notice(notice("a", FailureKind.METRIC, seconds(10)))
        assert not board.is_valid(metric)
        assert board.is_valid(nonmetric)
        assert board.is_valid(other)  # different site

    def test_metric_recovery_restores(self):
        board, metric, __, ___ = self.build()
        board.on_notice(notice("a", FailureKind.METRIC, seconds(10)))
        board.on_notice(
            notice("a", FailureKind.METRIC, seconds(20), recovered=True)
        )
        assert board.is_valid(metric)
        intervals = board.invalid_intervals(metric, seconds(100))
        assert intervals.total_length == seconds(10)

    def test_logical_failure_hits_everything_until_reset(self):
        board, metric, nonmetric, __ = self.build()
        board.on_notice(notice("b", FailureKind.LOGICAL, seconds(10)))
        assert not board.is_valid(metric)
        assert not board.is_valid(nonmetric)
        # A 'recovered' notice does NOT clear a logical failure...
        board.on_notice(
            notice("b", FailureKind.LOGICAL, seconds(20), recovered=True)
        )
        assert not board.is_valid(nonmetric)
        # ...only an operator reset does (Section 5).
        board.reset_site("b", seconds(30))
        assert board.is_valid(nonmetric)
        intervals = board.invalid_intervals(nonmetric, seconds(100))
        assert intervals.total_length == seconds(20)

    def test_open_interval_extends_to_horizon(self):
        board, metric, __, ___ = self.build()
        board.on_notice(notice("a", FailureKind.METRIC, seconds(10)))
        intervals = board.invalid_intervals(metric, seconds(50))
        assert intervals.total_length == seconds(40)

    def test_duplicate_failures_do_not_stack(self):
        board, metric, __, ___ = self.build()
        board.on_notice(notice("a", FailureKind.METRIC, seconds(10)))
        board.on_notice(notice("a", FailureKind.METRIC, seconds(15)))
        board.on_notice(
            notice("a", FailureKind.METRIC, seconds(20), recovered=True)
        )
        assert board.is_valid(metric)
