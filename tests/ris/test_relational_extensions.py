"""Tests for DISTINCT, BETWEEN, and LIKE in the SQL engine."""

import pytest

from repro.ris.relational import RelationalDatabase


@pytest.fixture
def db() -> RelationalDatabase:
    database = RelationalDatabase("ext")
    database.execute(
        "CREATE TABLE emp (empid TEXT PRIMARY KEY, name TEXT, salary REAL, "
        "dept TEXT)"
    )
    database.execute(
        "INSERT INTO emp VALUES "
        "('e1', 'Ada Lovelace', 100.0, 'eng'), "
        "('e2', 'Alan Turing', 90.0, 'eng'), "
        "('e3', 'Grace Hopper', 120.0, 'navy'), "
        "('e4', 'Edsger Dijkstra', 90.0, 'eng')"
    )
    return database


class TestDistinct:
    def test_distinct_single_column(self, db):
        rows = db.query("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert rows == [("eng",), ("navy",)]

    def test_distinct_preserves_order_then_limits(self, db):
        rows = db.query(
            "SELECT DISTINCT salary FROM emp ORDER BY salary LIMIT 2"
        )
        assert rows == [(90.0,), (100.0,)]

    def test_distinct_multi_column(self, db):
        rows = db.query("SELECT DISTINCT dept, salary FROM emp")
        # (eng, 90.0) appears for both e2 and e4 and must be deduplicated.
        assert len(rows) == 3
        assert rows.count(("eng", 90.0)) == 1


class TestBetween:
    def test_inclusive_bounds(self, db):
        rows = db.query(
            "SELECT empid FROM emp WHERE salary BETWEEN 90 AND 100 "
            "ORDER BY empid"
        )
        assert rows == [("e1",), ("e2",), ("e4",)]

    def test_not_between(self, db):
        rows = db.query(
            "SELECT empid FROM emp WHERE salary NOT BETWEEN 90 AND 100"
        )
        assert rows == [("e3",)]

    def test_between_with_params(self, db):
        rows = db.query(
            "SELECT empid FROM emp WHERE salary BETWEEN ? AND ?", (95, 125)
        )
        assert sorted(rows) == [("e1",), ("e3",)]

    def test_null_never_between(self, db):
        db.execute("INSERT INTO emp (empid, name) VALUES ('e9', 'Null')")
        rows = db.query(
            "SELECT empid FROM emp WHERE salary BETWEEN 0 AND 10000"
        )
        assert ("e9",) not in rows


class TestLike:
    def test_percent_wildcard(self, db):
        rows = db.query("SELECT empid FROM emp WHERE name LIKE 'A%'")
        assert sorted(rows) == [("e1",), ("e2",)]

    def test_underscore_wildcard(self, db):
        rows = db.query("SELECT empid FROM emp WHERE empid LIKE 'e_'")
        assert len(rows) == 4

    def test_infix_pattern(self, db):
        rows = db.query("SELECT empid FROM emp WHERE name LIKE '%race%'")
        assert rows == [("e3",)]

    def test_not_like(self, db):
        rows = db.query("SELECT empid FROM emp WHERE name NOT LIKE 'A%'")
        assert sorted(rows) == [("e3",), ("e4",)]

    def test_regex_metacharacters_are_literal(self, db):
        db.execute(
            "INSERT INTO emp (empid, name) VALUES ('e9', 'a.c (x)')"
        )
        rows = db.query("SELECT empid FROM emp WHERE name LIKE 'a.c (x)'")
        assert rows == [("e9",)]
        assert db.query(
            "SELECT empid FROM emp WHERE name LIKE 'abc (x)'"
        ) == []
