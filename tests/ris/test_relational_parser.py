"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.ris.relational.ast import (
    CreateIndex,
    CreateTable,
    CreateTrigger,
    Delete,
    Insert,
    Select,
    SqlAggregate,
    SqlBinary,
    SqlColumn,
    SqlInList,
    SqlIsNull,
    SqlLiteral,
    SqlParam,
    Update,
)
from repro.ris.relational.errors import SqlSyntaxError
from repro.ris.relational.parser import parse_sql
from repro.ris.relational.tokenizer import tokenize_sql


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize_sql("select FROM Where")
        assert all(t.kind == "keyword" for t in tokens[:-1])

    def test_string_escaping(self):
        tokens = tokenize_sql("'it''s'")
        assert tokens[0].text == "'it''s'"

    def test_comments_skipped(self):
        tokens = tokenize_sql("SELECT -- comment\n*")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "*"]

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize_sql("SELECT @")


class TestDdl:
    def test_create_table(self):
        stmt = parse_sql(
            "CREATE TABLE t (a TEXT PRIMARY KEY, b REAL NOT NULL, "
            "c INTEGER UNIQUE, CHECK (b > 0))"
        )
        assert isinstance(stmt, CreateTable)
        assert [c.name for c in stmt.columns] == ["a", "b", "c"]
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].unique
        assert len(stmt.checks) == 1

    def test_varchar_length_accepted(self):
        stmt = parse_sql("CREATE TABLE t (a VARCHAR(40))")
        assert stmt.columns[0].type_name == "TEXT"

    def test_create_index(self):
        stmt = parse_sql("CREATE UNIQUE INDEX i ON t (c)")
        assert isinstance(stmt, CreateIndex) and stmt.unique

    def test_create_trigger(self):
        stmt = parse_sql("CREATE TRIGGER tg AFTER UPDATE OF salary ON emp")
        assert isinstance(stmt, CreateTrigger)
        assert stmt.operation == "UPDATE" and stmt.column == "salary"

    def test_unknown_type_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("CREATE TABLE t (a BLOB)")


class TestDml:
    def test_insert_multi_row(self):
        stmt = parse_sql(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert isinstance(stmt, Insert)
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 2)")
        assert stmt.columns == ()

    def test_update_with_params(self):
        stmt = parse_sql("UPDATE t SET a = ?, b = b + 1 WHERE c = ?")
        assert isinstance(stmt, Update)
        assert isinstance(stmt.assignments[0][1], SqlParam)
        assert isinstance(stmt.assignments[1][1], SqlBinary)

    def test_delete(self):
        stmt = parse_sql("DELETE FROM t WHERE a IS NOT NULL")
        assert isinstance(stmt, Delete)
        assert isinstance(stmt.where, SqlIsNull) and stmt.where.negated


class TestSelect:
    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert isinstance(stmt, Select) and stmt.is_star

    def test_projection_aliases(self):
        stmt = parse_sql("SELECT a, b + 1 AS bb FROM t")
        assert stmt.items[1].alias == "bb"

    def test_where_order_limit(self):
        stmt = parse_sql(
            "SELECT a FROM t WHERE b > 3 AND c IN (1, 2) "
            "ORDER BY a DESC, b LIMIT 5"
        )
        assert isinstance(stmt.where, SqlBinary)
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 5

    def test_in_list(self):
        stmt = parse_sql("SELECT a FROM t WHERE a NOT IN (1, 2)")
        assert isinstance(stmt.where, SqlInList) and stmt.where.negated

    def test_aggregates(self):
        stmt = parse_sql("SELECT COUNT(*), SUM(b), MIN(b), MAX(b) FROM t")
        assert stmt.is_aggregate
        assert stmt.items[0].expr == SqlAggregate("COUNT", None)

    def test_not_equal_spellings(self):
        for op in ("<>", "!="):
            stmt = parse_sql(f"SELECT a FROM t WHERE a {op} 1")
            assert stmt.where.op == "!="

    def test_null_true_false_literals(self):
        stmt = parse_sql("SELECT a FROM t WHERE a = NULL OR b = TRUE")
        left = stmt.where.left
        assert isinstance(left.right, SqlLiteral) and left.right.value is None


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM t extra stuff")

    def test_semicolon_allowed(self):
        parse_sql("SELECT * FROM t;")

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("GRANT ALL ON t")

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM t LIMIT 2.5")
