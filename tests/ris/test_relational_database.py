"""End-to-end tests of the mini relational DBMS, plus property tests."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.ris.base import Capability
from repro.ris.relational import (
    ConstraintViolationError,
    RelationalDatabase,
    SqlError,
    TransactionError,
)
from repro.ris.relational.errors import (
    CatalogError,
    DatabaseBusyError,
    DatabaseUnavailableError,
    TypeMismatchError,
)


@pytest.fixture
def db() -> RelationalDatabase:
    database = RelationalDatabase("test")
    database.execute(
        "CREATE TABLE emp (empid TEXT PRIMARY KEY, name TEXT NOT NULL, "
        "salary REAL, dept TEXT)"
    )
    database.execute(
        "INSERT INTO emp (empid, name, salary, dept) VALUES "
        "('e1', 'Ada', 100.0, 'eng'), ('e2', 'Bob', 90.0, 'sales'), "
        "('e3', 'Cy', NULL, 'eng')"
    )
    return database


class TestQueries:
    def test_select_star(self, db):
        assert len(db.query("SELECT * FROM emp")) == 3

    def test_where_and_projection(self, db):
        rows = db.query("SELECT name FROM emp WHERE dept = 'eng' AND salary > 50")
        assert rows == [("Ada",)]

    def test_null_comparisons_filter_out(self, db):
        rows = db.query("SELECT name FROM emp WHERE salary > 0")
        assert ("Cy",) not in rows

    def test_is_null(self, db):
        assert db.query("SELECT name FROM emp WHERE salary IS NULL") == [("Cy",)]

    def test_order_by_multi_key(self, db):
        rows = db.query("SELECT name FROM emp ORDER BY dept, name DESC")
        assert rows == [("Cy",), ("Ada",), ("Bob",)]

    def test_limit(self, db):
        assert len(db.query("SELECT * FROM emp ORDER BY empid LIMIT 2")) == 2

    def test_aggregates_skip_nulls(self, db):
        row = db.query(
            "SELECT COUNT(*), COUNT(salary), SUM(salary), MIN(salary), "
            "MAX(salary) FROM emp"
        )[0]
        assert row == (3, 2, 190.0, 90.0, 100.0)

    def test_aggregate_over_empty_set(self, db):
        row = db.query("SELECT SUM(salary) FROM emp WHERE dept = 'hr'")[0]
        assert row == (None,)

    def test_expression_projection(self, db):
        rows = db.query(
            "SELECT salary * 2 FROM emp WHERE empid = 'e1'"
        )
        assert rows == [(200.0,)]

    def test_parameters(self, db):
        rows = db.query("SELECT name FROM emp WHERE empid = ?", ("e2",))
        assert rows == [("Bob",)]

    def test_too_few_parameters(self, db):
        with pytest.raises(SqlError):
            db.query("SELECT name FROM emp WHERE empid = ?")

    def test_unknown_column(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT ghost FROM emp")

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM ghosts")


class TestMutations:
    def test_update_rowcount(self, db):
        result = db.execute("UPDATE emp SET salary = 95 WHERE dept = 'eng'")
        assert result.rowcount == 2

    def test_delete(self, db):
        db.execute("DELETE FROM emp WHERE empid = 'e3'")
        assert db.query("SELECT COUNT(*) FROM emp")[0][0] == 2

    def test_primary_key_enforced(self, db):
        with pytest.raises(ConstraintViolationError):
            db.execute("INSERT INTO emp (empid, name) VALUES ('e1', 'Dup')")

    def test_not_null_enforced(self, db):
        with pytest.raises(ConstraintViolationError):
            db.execute("INSERT INTO emp (empid) VALUES ('e9')")

    def test_type_checked(self, db):
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO emp (empid, name, salary) VALUES "
                       "('e9', 'X', 'lots')")

    def test_update_to_duplicate_pk_rejected(self, db):
        with pytest.raises(ConstraintViolationError):
            db.execute("UPDATE emp SET empid = 'e1' WHERE empid = 'e2'")

    def test_check_constraint(self):
        database = RelationalDatabase("chk")
        database.execute(
            "CREATE TABLE acct (id TEXT PRIMARY KEY, bal REAL, "
            "CHECK (bal >= 0))"
        )
        database.execute("INSERT INTO acct VALUES ('a', 10.0)")
        with pytest.raises(ConstraintViolationError):
            database.execute("UPDATE acct SET bal = -5.0 WHERE id = 'a'")


class TestIndexes:
    def test_index_lookup_equals_scan(self, db):
        before = db.query("SELECT name FROM emp WHERE dept = 'eng'")
        db.execute("CREATE INDEX idx ON emp (dept)")
        after = db.query("SELECT name FROM emp WHERE dept = 'eng'")
        assert sorted(before) == sorted(after)

    def test_range_via_ordered_index(self, db):
        db.execute("CREATE INDEX idx ON emp (salary)")
        rows = db.query("SELECT name FROM emp WHERE salary >= 95")
        assert rows == [("Ada",)]

    def test_unique_index_on_existing_duplicates_rejected(self, db):
        with pytest.raises(ConstraintViolationError):
            db.execute("CREATE UNIQUE INDEX idx ON emp (dept)")


class TestTransactions:
    def test_rollback_restores_everything(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM emp WHERE dept = 'eng'")
        db.execute("UPDATE emp SET salary = 1 WHERE empid = 'e2'")
        db.execute("INSERT INTO emp (empid, name) VALUES ('e9', 'New')")
        db.execute("ROLLBACK")
        rows = db.query("SELECT empid, salary FROM emp ORDER BY empid")
        assert rows == [("e1", 100.0), ("e2", 90.0), ("e3", None)]

    def test_commit_keeps_changes(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE emp SET salary = 1 WHERE empid = 'e2'")
        db.execute("COMMIT")
        assert db.query("SELECT salary FROM emp WHERE empid = 'e2'") == [(1.0,)]

    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("BEGIN")

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.execute("COMMIT")


class TestTriggers:
    def test_update_of_fires_on_assignment_even_if_unchanged(self, db):
        events = []
        db.execute("CREATE TRIGGER t AFTER UPDATE OF salary ON emp")
        db.set_trigger_callback("t", events.append)
        db.execute("UPDATE emp SET salary = 100.0 WHERE empid = 'e1'")
        assert len(events) == 1  # real-DBMS semantics: assigned counts

    def test_update_of_other_column_does_not_fire(self, db):
        events = []
        db.execute("CREATE TRIGGER t AFTER UPDATE OF salary ON emp")
        db.set_trigger_callback("t", events.append)
        db.execute("UPDATE emp SET dept = 'ops' WHERE empid = 'e1'")
        assert events == []

    def test_insert_and_delete_triggers(self, db):
        events = []
        db.execute("CREATE TRIGGER ti AFTER INSERT ON emp")
        db.execute("CREATE TRIGGER td AFTER DELETE ON emp")
        db.set_trigger_callback("ti", events.append)
        db.set_trigger_callback("td", events.append)
        db.execute("INSERT INTO emp (empid, name) VALUES ('e9', 'New')")
        db.execute("DELETE FROM emp WHERE empid = 'e9'")
        assert [e.operation for e in events] == ["INSERT", "DELETE"]

    def test_triggers_deferred_until_commit(self, db):
        events = []
        db.execute("CREATE TRIGGER t AFTER UPDATE OF salary ON emp")
        db.set_trigger_callback("t", events.append)
        db.execute("BEGIN")
        db.execute("UPDATE emp SET salary = 5 WHERE empid = 'e1'")
        assert events == []
        db.execute("COMMIT")
        assert len(events) == 1

    def test_triggers_dropped_on_rollback(self, db):
        events = []
        db.execute("CREATE TRIGGER t AFTER UPDATE OF salary ON emp")
        db.set_trigger_callback("t", events.append)
        db.execute("BEGIN")
        db.execute("UPDATE emp SET salary = 5 WHERE empid = 'e1'")
        db.execute("ROLLBACK")
        assert events == []

    def test_drop_trigger(self, db):
        db.execute("CREATE TRIGGER t AFTER INSERT ON emp")
        db.execute("DROP TRIGGER t")
        with pytest.raises(CatalogError):
            db.set_trigger_callback("t", lambda e: None)


class TestAvailability:
    def test_unavailable(self, db):
        db.set_available(False)
        with pytest.raises(DatabaseUnavailableError):
            db.query("SELECT * FROM emp")

    def test_busy(self, db):
        db.set_busy(True)
        with pytest.raises(DatabaseBusyError):
            db.query("SELECT * FROM emp")

    def test_capabilities(self, db):
        caps = db.capabilities()
        assert Capability.NOTIFY in caps and Capability.TRANSACTIONS in caps


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(-100, 100)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_upserts_match_dict_semantics(self, operations):
        database = RelationalDatabase("prop")
        database.execute(
            "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)"
        )
        model: dict[int, int] = {}
        for key, value in operations:
            if key in model:
                database.execute(
                    "UPDATE kv SET v = ? WHERE k = ?", (value, key)
                )
            else:
                database.execute(
                    "INSERT INTO kv (k, v) VALUES (?, ?)", (key, value)
                )
            model[key] = value
        rows = database.query("SELECT k, v FROM kv ORDER BY k")
        assert rows == sorted(model.items())

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_rollback_is_always_a_no_op(self, keys):
        database = RelationalDatabase("prop")
        database.execute(
            "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)"
        )
        for key in set(keys):
            database.execute(
                "INSERT INTO kv (k, v) VALUES (?, ?)", (key, key)
            )
        before = database.query("SELECT k, v FROM kv ORDER BY k")
        database.execute("BEGIN")
        for key in keys:
            database.execute("UPDATE kv SET v = v + 1 WHERE k = ?", (key,))
            if key % 2:
                database.execute("DELETE FROM kv WHERE k = ?", (key,))
        database.execute("ROLLBACK")
        assert database.query("SELECT k, v FROM kv ORDER BY k") == before
