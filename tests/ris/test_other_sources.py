"""Tests for the non-relational raw sources."""

import pytest

from repro.ris.base import Capability, RISError, RISErrorCode
from repro.ris.bibliodb import BibRecord, BiblioDatabase
from repro.ris.filestore import FlatFileStore, parse_records, render_records
from repro.ris.legacy import LegacySystem
from repro.ris.objectstore import ObjectStore
from repro.ris.whois import WhoisDirectory


class TestFlatFileStore:
    def test_read_write_roundtrip(self):
        store = FlatFileStore("fs")
        store.write_file("/etc/passwd", "root\tx\n")
        assert store.read_file("/etc/passwd") == "root\tx\n"

    def test_missing_file(self):
        with pytest.raises(RISError) as excinfo:
            FlatFileStore("fs").read_file("/nope")
        assert excinfo.value.code is RISErrorCode.NOT_FOUND

    def test_mtime_follows_clock(self):
        now = [100]
        store = FlatFileStore("fs", clock=lambda: now[0])
        store.write_file("/f", "a")
        now[0] = 200
        store.write_file("/f", "b")
        assert store.mtime("/f") == 200

    def test_records_roundtrip(self):
        records = {"alice": "100", "bob": "90"}
        assert parse_records(render_records(records)) == records

    def test_record_format_skips_comments_and_blanks(self):
        content = "# header\n\nalice\t1\n"
        assert parse_records(content) == {"alice": "1"}

    def test_malformed_record_rejected(self):
        with pytest.raises(RISError):
            parse_records("no-tab-here\n")

    def test_record_level_ops(self):
        store = FlatFileStore("fs")
        store.write_record("/db", "alice", "100")
        store.write_record("/db", "bob", "90")
        assert store.read_record("/db", "alice") == "100"
        store.delete_record("/db", "alice")
        with pytest.raises(RISError):
            store.read_record("/db", "alice")

    def test_unavailability(self):
        store = FlatFileStore("fs")
        store.set_available(False)
        with pytest.raises(RISError) as excinfo:
            store.list_files()
        assert excinfo.value.code is RISErrorCode.UNAVAILABLE

    def test_capabilities_exclude_notify(self):
        assert Capability.NOTIFY not in FlatFileStore("fs").capabilities()


class TestObjectStore:
    def build(self) -> ObjectStore:
        store = ObjectStore("oo")
        store.define_class("Person", {"login": "str", "age": "int"})
        return store

    def test_create_and_read(self):
        store = self.build()
        oid = store.create("Person", {"login": "ada", "age": 36})
        assert store.read_attr(oid, "login") == "ada"

    def test_typed_attributes(self):
        store = self.build()
        with pytest.raises(RISError):
            store.create("Person", {"login": "ada", "age": "old"})

    def test_unknown_attribute_rejected(self):
        store = self.build()
        oid = store.create("Person", {"login": "ada"})
        with pytest.raises(RISError):
            store.write_attr(oid, "ghost", 1)

    def test_find_and_extent(self):
        store = self.build()
        store.create("Person", {"login": "ada"})
        store.create("Person", {"login": "bob"})
        assert len(store.extent("Person")) == 2
        assert len(store.find("Person", "login", "ada")) == 1

    def test_change_events(self):
        store = self.build()
        events = []
        store.on_change(events.append)
        oid = store.create("Person", {"login": "ada", "age": 1})
        store.write_attr(oid, "age", 2)
        store.delete(oid)
        assert [e.operation for e in events] == ["create", "update", "delete"]
        assert events[1].old_value == 1 and events[1].new_value == 2

    def test_follow_path(self):
        store = ObjectStore("oo")
        store.define_class("Dept", {"name": "str", "manager": "ref"})
        store.define_class("Emp", {"login": "str", "dept": "ref"})
        manager = store.create("Emp", {"login": "boss"})
        dept = store.create("Dept", {"name": "eng", "manager": manager})
        worker = store.create("Emp", {"login": "w", "dept": dept})
        assert store.follow(worker, ["dept", "manager", "login"]) == "boss"

    def test_duplicate_oid_rejected(self):
        store = self.build()
        store.create("Person", {"login": "a"}, oid="fixed")
        with pytest.raises(RISError):
            store.create("Person", {"login": "b"}, oid="fixed")


class TestBiblioDatabase:
    def record(self, record_id="r1", authors=("widom",)):
        return BibRecord(record_id, "A Toolkit", tuple(authors), 1996, "ICDE")

    def test_ingest_and_lookup(self):
        biblio = BiblioDatabase("lib")
        biblio.ingest(self.record())
        assert biblio.lookup("r1").year == 1996
        assert biblio.exists("r1")

    def test_by_author_index_updates_on_reingest(self):
        biblio = BiblioDatabase("lib")
        biblio.ingest(self.record(authors=("widom",)))
        biblio.ingest(self.record(authors=("chawathe",)))  # replaces r1
        assert biblio.by_author("widom") == []
        assert len(biblio.by_author("chawathe")) == 1

    def test_withdraw(self):
        biblio = BiblioDatabase("lib")
        biblio.ingest(self.record())
        biblio.withdraw("r1")
        assert not biblio.exists("r1")
        with pytest.raises(RISError):
            biblio.withdraw("r1")

    def test_search(self):
        biblio = BiblioDatabase("lib")
        biblio.ingest(self.record())
        assert len(biblio.search(year=1996, venue="ICDE")) == 1
        assert biblio.search(year=1997) == []

    def test_read_only_capabilities(self):
        assert BiblioDatabase("lib").capabilities() == Capability.READ


class TestWhoisDirectory:
    def test_lookup_and_field(self):
        whois = WhoisDirectory("w")
        whois.admin_update("ada", phone="555", email="ada@x")
        assert whois.field("ada", "phone") == "555"
        assert whois.lookup("ada")["email"] == "ada@x"

    def test_lookup_returns_copy(self):
        whois = WhoisDirectory("w")
        whois.admin_update("ada", phone="555")
        entry = whois.lookup("ada")
        entry["phone"] = "tampered"
        assert whois.field("ada", "phone") == "555"

    def test_missing_entry_and_field(self):
        whois = WhoisDirectory("w")
        with pytest.raises(RISError):
            whois.lookup("ghost")
        whois.admin_update("ada", phone="555")
        with pytest.raises(RISError):
            whois.field("ada", "fax")

    def test_admin_remove(self):
        whois = WhoisDirectory("w")
        whois.admin_update("ada", phone="555")
        whois.admin_remove("ada")
        assert not whois.exists("ada")


class TestLegacySystem:
    def test_put_get(self):
        legacy = LegacySystem("old")
        legacy.put("k", 42)
        assert legacy.get("k") == 42

    def test_update_messages(self):
        legacy = LegacySystem("old")
        seen = []
        legacy.subscribe(lambda k, v: seen.append((k, v)))
        legacy.put("k", 1)
        assert seen == [("k", 1)]

    def test_silent_drop(self):
        legacy = LegacySystem("old", drop_decider=lambda: True)
        seen = []
        legacy.subscribe(lambda k, v: seen.append((k, v)))
        legacy.put("k", 1)
        assert seen == []  # the write happened...
        assert legacy.get("k") == 1  # ...but no one was told
        assert legacy.updates_dropped == 1

    def test_unavailability_is_detectable(self):
        legacy = LegacySystem("old")
        legacy.set_available(False)
        with pytest.raises(RISError) as excinfo:
            legacy.get("k")
        assert excinfo.value.code is RISErrorCode.UNAVAILABLE
