"""Unit tests for the dynamic race sanitizer.

The sanitizer is the static analysis' adversary, so these tests drive
its hooks directly: a certified-independent pair that collides must
flag (that is the soundness alarm), a pair the plan already keeps
serial must count as a predicted conflict, and read-read sharing must
never flag at all.
"""

from __future__ import annotations

from repro.cm import ConstraintManager, Scenario
from repro.core.dsl import parse_rule
from repro.core.items import item


def _sanitized_shell(rules, families=("OutA", "OutB", "Total")):
    """One registered shell with ``rules`` installed and the scenario's
    sanitizer attached."""
    cm = ConstraintManager(Scenario(seed=0, sanitize=True))
    cm.add_site("s")
    shell = cm.shell("s")
    for family in families:
        cm.locations.register(family, "s")
    for text, name in rules:
        shell.install(parse_rule(text, name=name))
    return cm, shell, cm.scenario.sanitizer


DISJOINT = [
    ("N(alpha(n), b) -> [0] W(OutA(n), b)", "ra"),
    ("N(beta(n), b) -> [0] W(OutB(n), b)", "rb"),
]
CONFLICTING = [
    ("N(alpha(n), b) -> [0] W(Total, b)", "ra"),
    ("N(beta(n), b) -> [0] W(Total, b)", "rb"),
]


class TestFlagPredicate:
    def test_certified_pair_colliding_flags(self):
        # The plan certifies ra/rb independent (disjoint static
        # footprints); an observed collision is exactly the soundness
        # bug the sanitizer exists to catch.
        cm, shell, san = _sanitized_shell(DISJOINT)
        assert san.plan_for("s").independent("ra", "rb")
        ref = item("OutA", "k")
        san.on_write("s", "ra", ref, 0)
        san.on_write("s", "rb", ref, 1)
        assert not san.ok
        (flag,) = san.flags
        assert {flag.rule_a, flag.rule_b} == {"ra", "rb"}
        assert flag.kind == "ww"
        assert san.predicted_conflicts == 0

    def test_serial_pair_colliding_is_a_predicted_conflict(self):
        cm, shell, san = _sanitized_shell(CONFLICTING)
        assert not san.plan_for("s").independent("ra", "rb")
        ref = item("Total")
        san.on_write("s", "ra", ref, 0)
        san.on_write("s", "rb", ref, 1)
        assert san.ok
        assert san.predicted_conflicts == 1

    def test_read_read_sharing_never_flags(self):
        cm, shell, san = _sanitized_shell(DISJOINT)
        ref = item("OutA", "k")
        san.on_read("s", "ra", ref, 0)
        san.on_read("s", "rb", ref, 1)
        assert san.ok
        assert san.predicted_conflicts == 0

    def test_read_vs_certified_write_flags_rw(self):
        cm, shell, san = _sanitized_shell(DISJOINT)
        ref = item("OutB", "k")
        san.on_write("s", "rb", ref, 0)
        san.on_read("s", "ra", ref, 1)
        assert not san.ok
        assert san.flags[0].kind in ("rw", "wr")

    def test_same_rule_accessing_twice_never_flags(self):
        cm, shell, san = _sanitized_shell(DISJOINT)
        ref = item("OutA", "k")
        san.on_write("s", "ra", ref, 0)
        san.on_write("s", "ra", ref, 1)
        assert san.ok

    def test_flags_dedupe_per_site_item_pair(self):
        cm, shell, san = _sanitized_shell(DISJOINT)
        ref = item("OutA", "k")
        san.on_write("s", "ra", ref, 0)
        san.on_write("s", "rb", ref, 1)
        san.on_write("s", "ra", ref, 2)
        san.on_write("s", "rb", ref, 3)
        assert len(san.flags) == 1


class TestClocks:
    def test_writes_advance_the_site_clock(self):
        cm, shell, san = _sanitized_shell(DISJOINT)
        san.on_write("s", "ra", item("OutA", "k1"), 0)
        san.on_write("s", "ra", item("OutA", "k2"), 1)
        assert san._clocks["s"]["s"] == 2

    def test_receive_merges_the_senders_clock(self):
        cm, shell, san = _sanitized_shell(DISJOINT)
        san._clocks["peer"] = {"peer": 7}
        san.on_receive("s", "peer")
        assert san._clocks["s"]["peer"] == 7
        assert san._clocks["s"]["s"] == 1  # the receive is a local step
        assert san.receives == 1


class TestReporting:
    def test_report_shape_and_counters(self):
        cm, shell, san = _sanitized_shell(DISJOINT)
        san.on_write("s", "ra", item("OutA", "k"), 0)
        san.on_read("s", "ra", item("OutA", "k"), 1)
        report = san.report()
        assert set(report) == {
            "enabled", "ok", "races", "race_count", "predicted_conflicts",
            "reads", "writes", "receives", "sites",
        }
        assert report["enabled"] is True
        assert report["ok"] is True
        assert report["reads"] == 1 and report["writes"] == 1
        assert report["sites"] == ["s"]

    def test_flag_dumps_the_flight_recorder(self):
        cm, shell, san = _sanitized_shell(DISJOINT)
        flight = cm.scenario.obs.enable_flight()
        ref = item("OutA", "k")
        san.on_write("s", "ra", ref, 0)
        san.on_write("s", "rb", ref, 1)
        assert flight.dumps, "a flagged race freezes context like a failure"
        assert flight.dumps[0]["reason"].startswith("race:s:")

    def test_plan_for_unknown_site_is_none(self):
        cm, shell, san = _sanitized_shell(DISJOINT)
        assert san.plan_for("nowhere") is None

    def test_plan_invalidated_when_rules_grow(self):
        cm, shell, san = _sanitized_shell(DISJOINT)
        before = san.plan_for("s")
        cm.locations.register("OutC", "s")
        shell.install(
            parse_rule("N(gamma(n), b) -> [0] W(OutC(n), b)", name="rc")
        )
        after = san.plan_for("s")
        assert after is not before
        assert after.independent("ra", "rc")


class TestEndToEnd:
    def test_salary_run_is_observed_and_clean(self):
        from repro.core.timebase import seconds
        from repro.experiments.common import build_salary_scenario

        salary = build_salary_scenario("propagation", sanitize=True)
        cm = salary.cm
        cm.spontaneous_write("salary1", ("e1",), 50_000.0)
        cm.run(seconds(30))
        report = salary.scenario.sanitizer.report()
        assert report["ok"] is True
        assert report["writes"] > 0, "the run must actually be observed"
        cm.stop()
