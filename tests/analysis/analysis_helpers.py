"""Scenario scaffolding for CM-Lint tests.

``salary_cm(kind)`` wires the Section 4.2 personnel scenario via the
catalog (the canonical lint-clean configuration); ``bare_two_site()``
wires the same sources *without* installing any strategy, so tests can
install handcrafted (often deliberately broken) rules directly on the
shells, bypassing the manager's eager validation.
"""

from __future__ import annotations

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.core.interfaces import InterfaceKind
from repro.ris.relational import RelationalDatabase


def bare_two_site(
    seed: int = 0,
    offer_notify: bool = True,
    offer_write: bool = True,
) -> ConstraintManager:
    """sf/ny with salary1 (notify+read) and salary2 (write+read+quiet),
    no strategy installed."""
    cm = ConstraintManager(Scenario(seed=seed))
    cm.add_site("sf")
    cm.add_site("ny")

    branch = RelationalDatabase("branch")
    branch.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_a = CMRID("relational", "branch").bind(
        "salary1",
        params=("n",),
        table="employees",
        key_column="empid",
        value_column="salary",
    )
    if offer_notify:
        rid_a.offer("salary1", InterfaceKind.NOTIFY, bound_seconds=2.0)
    rid_a.offer("salary1", InterfaceKind.READ, bound_seconds=1.0)
    cm.add_source("sf", branch, rid_a)

    hq = RelationalDatabase("hq")
    hq.execute("CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)")
    rid_b = CMRID("relational", "hq").bind(
        "salary2",
        params=("n",),
        table="employees",
        key_column="empid",
        value_column="salary",
    )
    if offer_write:
        rid_b.offer("salary2", InterfaceKind.WRITE, bound_seconds=2.0)
    rid_b.offer("salary2", InterfaceKind.READ, bound_seconds=1.0)
    rid_b.offer("salary2", InterfaceKind.NO_SPONTANEOUS_WRITE)
    cm.add_source("ny", hq, rid_b)
    return cm


def salary_cm(kind: str = "propagation", seed: int = 0):
    """The catalog-installed personnel scenario (lint-clean by design)."""
    from repro.experiments.common import build_salary_scenario

    return build_salary_scenario(strategy_kind=kind, seed=seed).cm


def codes_of(report) -> list[str]:
    """All diagnostic codes in a report (unsuppressed findings only)."""
    return [finding.code for finding in report.diagnostics]
