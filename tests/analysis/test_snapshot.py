"""Expected-diagnostics snapshot over every lintable target.

``expected_diagnostics.json`` pins the codes each experiment and example
produces (including deliberately suppressed findings).  A new finding, a
vanished finding, or a target going missing all fail here, so drift in the
shipped configurations — or in the checks themselves — is caught in review.

To refresh after an intentional change::

    PYTHONPATH=src python tests/analysis/test_snapshot.py --refresh
"""

import json
import sys
import time
from pathlib import Path

SNAPSHOT = Path(__file__).with_name("expected_diagnostics.json")


def current_snapshot():
    from repro.analysis.targets import lint_all

    snapshot = {}
    for name, report in sorted(lint_all().items()):
        snapshot[name] = {
            "codes": sorted(d.code for d in report.diagnostics),
            "suppressed": sorted(d.code for d in report.suppressed),
            "ok": report.ok,
        }
    return snapshot


class TestSnapshot:
    def test_all_targets_match_expected_diagnostics(self):
        expected = json.loads(SNAPSHOT.read_text())
        actual = current_snapshot()
        assert actual == expected, (
            "lint findings drifted from tests/analysis/"
            "expected_diagnostics.json; if the change is intentional, "
            "refresh with: PYTHONPATH=src python "
            "tests/analysis/test_snapshot.py --refresh"
        )

    def test_no_target_has_unsuppressed_errors(self):
        expected = json.loads(SNAPSHOT.read_text())
        for name, entry in expected.items():
            assert entry["ok"], name


class TestLintSpeed:
    def test_single_target_lints_well_under_a_second(self):
        from repro.analysis.targets import lint_target

        start = time.perf_counter()
        report = lint_target("e1_propagation")
        elapsed = time.perf_counter() - start
        assert report.ok
        assert elapsed < 1.0, f"lint took {elapsed:.2f}s"


if __name__ == "__main__":
    if "--refresh" in sys.argv:
        SNAPSHOT.write_text(
            json.dumps(current_snapshot(), indent=2, sort_keys=True) + "\n"
        )
        print(f"refreshed {SNAPSHOT}")
    else:
        print(__doc__)
