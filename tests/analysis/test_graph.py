"""Tests for template unification and static trigger-graph construction."""

from analysis_helpers import salary_cm

from repro.analysis import build_trigger_graph, unify_templates
from repro.core.events import EventKind
from repro.core.strategies import template
from repro.core.terms import FAMILY_WILDCARD, ItemPattern, Var


def item(family: str, *params: str) -> ItemPattern:
    return ItemPattern(family, tuple(Var(p) for p in params))


class TestUnifyTemplates:
    def test_same_kind_family_and_arity_unify(self):
        a = template(EventKind.WRITE_REQUEST, item("salary2", "n"), "b")
        b = template(EventKind.WRITE_REQUEST, item("salary2", "m"), "v")
        assert unify_templates(a, b)

    def test_kind_mismatch_rejected(self):
        a = template(EventKind.WRITE_REQUEST, item("salary2", "n"), "b")
        b = template(EventKind.READ_REQUEST, item("salary2", "n"))
        assert not unify_templates(a, b)

    def test_family_mismatch_rejected(self):
        a = template(EventKind.WRITE, item("x"), "b")
        b = template(EventKind.WRITE, item("y"), "b")
        assert not unify_templates(a, b)

    def test_wildcard_family_unifies_with_anything(self):
        a = template(EventKind.WRITE, item("x"), "b")
        b = template(EventKind.WRITE, item(FAMILY_WILDCARD), "v")
        assert unify_templates(a, b)

    def test_constant_values_must_agree(self):
        a = template(EventKind.WRITE, item("x"), 1)
        b = template(EventKind.WRITE, item("x"), 2)
        assert not unify_templates(a, b)
        c = template(EventKind.WRITE, item("x"), 1)
        assert unify_templates(a, c)

    def test_variable_unifies_with_constant(self):
        a = template(EventKind.WRITE, item("x"), "b")
        b = template(EventKind.WRITE, item("x"), 42)
        assert unify_templates(a, b)


class TestTriggerGraph:
    def test_propagation_graph_shape(self):
        cm = salary_cm("propagation")
        graph = build_trigger_graph(cm)
        cm.stop()
        names = {node.name for node in graph.nodes}
        # The strategy rule plus salary1's notify/read and salary2's
        # write/read interface rules are all nodes.
        assert any("iface_notify_salary1" in name for name in names)
        assert any("iface_write_salary2" in name for name in names)
        strategy_nodes = list(graph.strategy_nodes())
        assert len(strategy_nodes) == 1

    def test_notify_interface_feeds_strategy_rule(self):
        cm = salary_cm("propagation")
        graph = build_trigger_graph(cm)
        cm.stop()
        (strategy,) = graph.strategy_nodes()
        sources = {
            graph.nodes[edge.src].name
            for edge in graph.in_edges(strategy.index)
        }
        assert any("iface_notify_salary1" in name for name in sources)

    def test_strategy_rule_feeds_write_interface(self):
        cm = salary_cm("propagation")
        graph = build_trigger_graph(cm)
        cm.stop()
        (strategy,) = graph.strategy_nodes()
        targets = {
            graph.nodes[edge.dst].name
            for edge in graph.out_edges(strategy.index)
        }
        assert any("iface_write_salary2" in name for name in targets)

    def test_cached_propagation_edges_are_guarded(self):
        cm = salary_cm("cached-propagation")
        graph = build_trigger_graph(cm)
        cm.stop()
        guarded = [edge for edge in graph.edges if edge.guarded]
        assert guarded  # the cache(n) != b conjunct is a guard

    def test_propagation_edges_are_unguarded(self):
        cm = salary_cm("propagation")
        graph = build_trigger_graph(cm)
        cm.stop()
        assert not any(
            edge.guarded for edge in graph.edges if not edge.echo
        )

    def test_graph_len_counts_nodes(self):
        cm = salary_cm("propagation")
        graph = build_trigger_graph(cm)
        cm.stop()
        assert len(graph) == len(graph.nodes)
