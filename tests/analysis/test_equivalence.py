"""Seeded lint/runtime equivalence tests.

Two directions: every lint-clean catalog configuration must also produce a
valid trace when actually run (lint raises no false alarms for the
configurations we ship), and a battery of known-bad fixtures must be
flagged statically with the expected codes (the runtime misbehavior lint
predicts really is there, without having to run it).
"""

import pytest

from analysis_helpers import bare_two_site, codes_of

from repro import parse_rules
from repro.analysis import lint_manager
from repro.core.timebase import seconds
from repro.core.trace import validate_trace
from repro.experiments.common import build_salary_scenario
from repro.workloads import PersonnelWorkload


def rule(text: str):
    (parsed,) = parse_rules(text)
    return parsed


class TestCleanConfigsRunClean:
    @pytest.mark.parametrize(
        "kind", ["propagation", "cached-propagation", "polling"]
    )
    def test_lint_clean_configuration_produces_valid_trace(self, kind):
        salary = build_salary_scenario(strategy_kind=kind, seed=7)
        report = lint_manager(salary.cm)
        assert report.ok, report.render()
        assert not any(
            d.severity.name == "ERROR" for d in report.diagnostics
        )
        PersonnelWorkload(
            salary.cm,
            employee_count=5,
            rate=1.0,
            duration=seconds(60.0),
        )
        salary.cm.run(until=seconds(180.0))
        violations = validate_trace(
            salary.scenario.trace,
            list(salary.installed.strategy.rules),
        )
        salary.cm.stop()
        assert not violations


class TestKnownBadFixtures:
    def test_echo_loop_flagged_statically(self):
        from repro.core.interfaces import InterfaceKind

        cm = bare_two_site()
        rid_b = cm.shells["ny"].translators["salary2"].rid
        rid_b.offer("salary2", InterfaceKind.NOTIFY, bound_seconds=2.0)
        cm.shell("ny").install(
            rule("rule echoer: N(salary2(n), b) -> [1] WR(salary2(n), b)"),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM302" in codes_of(report)

    def test_ungranted_write_flagged_statically(self):
        cm = bare_two_site(offer_write=False)
        cm.shell("sf").install(
            rule("rule fwd: N(salary1(n), b) -> [1] WR(salary2(n), b)"),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM101" in codes_of(report)
        assert not report.ok

    def test_infeasible_kappa_flagged_statically(self):
        from repro.analysis.lint import manager_context, run_checks
        from repro.core.guarantees import follows

        salary = build_salary_scenario(strategy_kind="propagation", seed=3)
        context = manager_context(salary.cm)
        # A κ below even the notify bound: no run can meet it.
        context.guarantees = [
            follows("salary1", "salary2", within_seconds=0.25)
        ]
        report = run_checks(context)
        salary.cm.stop()
        assert "CM601" in codes_of(report)
        assert not report.ok
