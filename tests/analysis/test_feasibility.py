"""Tests for the guarantee-feasibility check (CM6xx).

The check is conservative: a κ it rejects (CM601) is unachievable even on
a perfect run, because the static bound sums only promised interface
bounds, declared rule delays, and worst-case channel latencies.
"""

from analysis_helpers import codes_of, salary_cm

from repro.analysis.checks import ALL_CHECKS
from repro.analysis.lint import manager_context, run_checks
from repro.core.guarantees import follows

FEASIBILITY = [e for e in ALL_CHECKS if e[0] == "guarantee-feasibility"]


def lint_with_guarantees(cm, guarantees):
    """Run only the feasibility check with a substituted guarantee list."""
    context = manager_context(cm)
    context.guarantees = list(guarantees)
    return run_checks(context, checks=FEASIBILITY)


class TestFeasibility:
    def test_catalog_kappa_is_feasible(self):
        cm = salary_cm("propagation")
        report = run_checks(manager_context(cm), checks=FEASIBILITY)
        cm.stop()
        assert "CM601" not in codes_of(report)

    def test_polling_kappa_is_feasible(self):
        # Regression: the catalog's polling κ must account for BOTH rule
        # firings in the chain (P -> RR, then R -> WR); before the fix its
        # formula charged the delay once and linted 0.05s infeasible.
        cm = salary_cm("polling")
        report = run_checks(manager_context(cm), checks=FEASIBILITY)
        cm.stop()
        assert "CM601" not in codes_of(report)

    def test_too_small_kappa_cm601(self):
        cm = salary_cm("propagation")
        report = lint_with_guarantees(
            cm, [follows("salary1", "salary2", within_seconds=0.5)]
        )
        cm.stop()
        assert "CM601" in codes_of(report)
        assert not report.ok

    def test_generous_kappa_passes(self):
        cm = salary_cm("propagation")
        report = lint_with_guarantees(
            cm, [follows("salary1", "salary2", within_seconds=3600.0)]
        )
        cm.stop()
        assert "CM601" not in codes_of(report)

    def test_no_delivery_path_cm602(self):
        # Swap the direction: nothing carries salary2 changes to salary1.
        cm = salary_cm("propagation")
        report = lint_with_guarantees(
            cm, [follows("salary2", "salary1", within_seconds=60.0)]
        )
        cm.stop()
        assert "CM602" in codes_of(report)

    def test_guarded_only_paths_cm603(self):
        cm = salary_cm("cached-propagation")
        report = run_checks(manager_context(cm), checks=FEASIBILITY)
        cm.stop()
        assert "CM603" in codes_of(report)

    def test_unqualified_guarantees_are_ignored(self):
        cm = salary_cm("propagation")
        report = lint_with_guarantees(
            cm, [follows("salary1", "salary2")]  # no κ: nothing to check
        )
        cm.stop()
        assert not codes_of(report)

    def test_unbounded_channel_latency_cm604(self):
        from repro.experiments.common import build_salary_scenario
        from repro.sim.network import ExponentialLatency
        from repro.core.timebase import seconds

        cm = build_salary_scenario(
            strategy_kind="propagation",
            seed=0,
            latency=ExponentialLatency(seconds(0.01), seconds(0.05)),
        ).cm
        report = run_checks(manager_context(cm), checks=FEASIBILITY)
        cm.stop()
        codes = codes_of(report)
        assert "CM604" in codes
        # Unprovable is not the same as infeasible: no CM601.
        assert "CM601" not in codes
