"""CM-Lint commutativity diagnostics (CM701–CM705).

Each code gets a positive case *and* the adjacent negative one: serial
configurations stay silent, cross-shard conflicts are not CM701, and no
CM7xx finding is ever an error (certification limits are advice, not
spec violations).
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import Severity, lint_manager
from repro.cm import CMRID, ConstraintManager, Scenario
from repro.core.dsl import parse_rule
from repro.core.events import EventKind
from repro.core.interfaces import InterfaceKind
from repro.core.rules import RhsStep
from repro.core.templates import Template
from repro.core.terms import FAMILY_WILDCARD, ItemPattern, Var
from repro.ris.legacy import LegacySystem

# crc32 family shards at dispatch_shards=4: journal/trades/rate -> 1,
# quote/fill -> 0.  The CM701 cases depend on these placements.
SHARDS = 4


def desk(rules, shards=SHARDS):
    """A hub shell fed by one legacy source, with ``rules`` installed via
    the site builder: ``(text_or_rule, rhs_site, name)`` tuples."""
    cm = ConstraintManager(Scenario(seed=0, dispatch_shards=shards))

    front = LegacySystem("front-office")
    rid = CMRID("legacy", "front-office")
    for family, prefix in (
        ("journal", "j:"), ("trades", "t:"), ("quote", "q:"),
        ("fill", "f:"), ("rate", "r:"), ("audit_req", "a:"),
    ):
        rid.bind(family, params=("n",), key_prefix=prefix)
        rid.offer(family, InterfaceKind.NOTIFY, bound_seconds=1.0)
    rid.bind("position", params=("n",), key_prefix="p:")
    rid.offer("position", InterfaceKind.READ, bound_seconds=1.0)
    rid.offer("position", InterfaceKind.WRITE, bound_seconds=1.0)
    cm.site("hub").source(front, rid)

    annex_db = LegacySystem("rate-store")
    rid_annex = (
        CMRID("legacy", "rate-store")
        .bind("remote_rate", params=("n",), key_prefix="rr:")
        .offer("remote_rate", InterfaceKind.WRITE, bound_seconds=1.0)
        .offer("remote_rate", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    cm.site("annex").source(annex_db, rid_annex)

    hub = cm.site("hub").private("BookTotal", "LastQuote")
    for text, rhs_site, name in rules:
        hub.rule(text, rhs_site, name=name)
    return cm


def codes(cm):
    return sorted(d.code for d in lint_manager(cm).diagnostics)


SAME_SHARD_CONFLICT = [
    ("N(journal(n), b) -> [0] W(BookTotal, b)", None, "post_journal"),
    ("N(trades(n), b) -> [0] W(BookTotal, b)", None, "post_trades"),
]


class TestCM701:
    def test_same_shard_non_commuting_pair_warns(self):
        report = lint_manager(desk(SAME_SHARD_CONFLICT))
        (finding,) = [d for d in report.diagnostics if d.code == "CM701"]
        assert finding.severity is Severity.WARNING
        assert "post_journal" in finding.message
        assert "post_trades" in finding.message
        assert "overlapping footprint" in finding.hint
        assert report.ok  # advice, never an error

    def test_cross_shard_conflict_is_not_reported(self):
        # quote lands on shard 0, journal on shard 1: the pair never
        # contends inside one shard, so certification loses nothing.
        cm = desk([
            ("N(quote(n), b) -> [0] W(BookTotal, b)", None, "mark"),
            ("N(journal(n), b) -> [0] W(BookTotal, b)", None, "post"),
        ])
        assert "CM701" not in codes(cm)

    def test_serial_configuration_is_silent(self):
        cm = desk(SAME_SHARD_CONFLICT, shards=1)
        assert not [c for c in codes(cm) if c.startswith("CM7")]


class TestCM702:
    def test_wildcard_write_warns(self):
        base = parse_rule(
            "N(journal(n), b) -> [0] W(Shadow, b)", name="mirror_all"
        )
        wildcard = Template(
            EventKind.WRITE,
            ItemPattern(FAMILY_WILDCARD, (Var("n"),)),
            (Var("b"),),
        )
        rule = replace(base, steps=(RhsStep(wildcard),))
        report = lint_manager(desk([(rule, None, None)]))
        (finding,) = [d for d in report.diagnostics if d.code == "CM702"]
        assert finding.severity is Severity.WARNING
        assert finding.rule == "mirror_all"


class TestCM703:
    def test_ast_fallback_summary_is_an_info(self):
        # An N-emission RHS cannot compile; the summary is the AST
        # fallback (sound but wider), worth a note, not a warning.
        report = lint_manager(desk([
            ("N(audit_req(n), b) -> [0] N(audit_echo(n), b)", None, "echo"),
        ]))
        (finding,) = [d for d in report.diagnostics if d.code == "CM703"]
        assert finding.severity is Severity.INFO
        assert finding.rule == "echo"

    def test_compiled_rules_do_not_note(self):
        cm = desk([
            ("N(quote(n), b) -> [0] W(LastQuote(n), b)", None, "mark"),
        ])
        assert "CM703" not in codes(cm)


class TestCM704:
    def test_cross_site_send_is_an_info(self):
        report = lint_manager(desk([
            ("N(rate(n), b) -> [0] WR(remote_rate(n), b)", "annex", "push"),
        ]))
        (finding,) = [d for d in report.diagnostics if d.code == "CM704"]
        assert finding.severity is Severity.INFO
        assert finding.rule == "push"
        assert "barrier" in finding.message


class TestCM705:
    ENUMERATING = [
        ("N(quote(n), b) -> [0] RR(position(x))", None, "scan"),
        ("N(fill(n), b) -> [0] WR(position(n), b)", None, "record"),
    ]

    def test_enumerating_overlap_warns(self):
        report = lint_manager(desk(self.ENUMERATING))
        (finding,) = [d for d in report.diagnostics if d.code == "CM705"]
        assert finding.severity is Severity.WARNING
        assert "scan" in finding.message and "record" in finding.message
        assert "overlapping footprint" in finding.hint

    def test_enumerating_pair_is_not_also_cm701(self):
        # The CM705 shape subsumes the shard-contention advice: one
        # finding per pair, the more specific code wins.
        assert "CM701" not in codes(desk(self.ENUMERATING))


class TestOverall:
    def test_commuting_desk_is_clean(self):
        cm = desk([
            ("N(quote(n), b) -> [0] W(LastQuote(n), b)", None, "mark"),
            ("N(fill(n), b) -> [0] WR(position(n), b)", None, "record"),
        ])
        assert not [c for c in codes(cm) if c.startswith("CM7")]

    def test_example_desk_carries_every_code(self):
        import examples.parallel_phases as example

        cm = example.build_for_lint()
        found = set(codes(cm))
        assert {"CM701", "CM702", "CM703", "CM704", "CM705"} <= found
