"""Positive and negative tests for each CM-Lint check family.

Every check family gets at least one configuration it must flag (with the
expected code) and one it must pass.  Broken rules are installed directly
on the shells, bypassing the manager's eager validation — lint must catch
what sneaks past installation.
"""

from analysis_helpers import bare_two_site, codes_of, salary_cm

from repro import parse_rules
from repro.analysis import lint_manager


def rule(text: str):
    (parsed,) = parse_rules(text)
    return parsed


class TestInterfaceCompliance:
    def test_catalog_configuration_is_clean(self):
        cm = salary_cm("propagation")
        report = lint_manager(cm)
        cm.stop()
        assert report.ok and not report.diagnostics

    def test_write_request_without_write_interface_cm101(self):
        cm = bare_two_site(offer_write=False)
        cm.shell("sf").install(
            rule("rule fwd: N(salary1(n), b) -> [1] WR(salary2(n), b)"),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM101" in codes_of(report)
        assert not report.ok

    def test_read_request_without_read_interface_cm102(self):
        cm = bare_two_site()
        # hq's read interface exists; target a family that lacks one by
        # withdrawing it: salary1 keeps read, so use a fresh source-less
        # family via private registration is CM104 — instead drop reads.
        cm2 = bare_two_site(offer_notify=False)
        # salary1 still offers read; rebuild with no read is not supported
        # by the helper, so test RR against salary2 after stripping:
        cm.stop()
        shell = cm2.shell("ny")
        offers = cm2.shells["sf"].translators["salary1"].rid.offers
        offers["salary1"] = [
            offer
            for offer in offers["salary1"]
            if offer.kind.value != "read"
        ]
        shell.install(
            rule("rule poll: P(60) -> [1] RR(salary1(n))"), rhs_site="sf"
        )
        report = lint_manager(cm2)
        cm2.stop()
        assert "CM102" in codes_of(report)

    def test_notify_trigger_without_notify_interface_cm103(self):
        cm = bare_two_site(offer_notify=False)
        cm.shell("sf").install(
            rule("rule fwd: N(salary1(n), b) -> [1] WR(salary2(n), b)"),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM103" in codes_of(report)

    def test_unknown_family_cm104(self):
        cm = bare_two_site()
        cm.shell("sf").install(
            rule("rule fwd: N(salary1(n), b) -> [1] WR(ghost(n), b)"),
            rhs_site="sf",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM104" in codes_of(report)

    def test_direct_write_on_database_family_cm105(self):
        cm = bare_two_site()
        cm.shell("ny").install(
            rule("rule raw: N(salary1(n), b) -> [1] W(salary2(n), b)"),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM105" in codes_of(report)


class TestVariableSafety:
    def test_unbound_condition_variable_cm201(self):
        cm = bare_two_site()
        cm.shell("sf").install(
            rule(
                "rule guarded: N(salary1(n), b) & limit > b "
                "-> [1] WR(salary2(n), b)"
            ),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM201" in codes_of(report)

    def test_bound_variables_pass(self):
        cm = bare_two_site()
        cm.shell("sf").install(
            rule(
                "rule guarded: N(salary1(n), b) & b > 0 "
                "-> [1] WR(salary2(n), b)"
            ),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM201" not in codes_of(report)


class TestCycles:
    def test_unguarded_private_write_cycle_cm301(self):
        cm = bare_two_site()
        sf = cm.shell("sf")
        cm.locations.register("PingV", "sf")
        cm.locations.register("PongV", "sf")
        sf.install(rule("rule ping: W(PingV, b) -> [1] W(PongV, b)"))
        sf.install(rule("rule pong: W(PongV, b) -> [1] W(PingV, b)"))
        report = lint_manager(cm)
        cm.stop()
        assert "CM301" in codes_of(report)
        assert not report.ok

    def test_guarded_cycle_is_info_cm303(self):
        cm = bare_two_site()
        sf = cm.shell("sf")
        cm.locations.register("PingV", "sf")
        cm.locations.register("PongV", "sf")
        sf.install(
            rule("rule ping: W(PingV, b) & b > 0 -> [1] W(PongV, b)")
        )
        sf.install(rule("rule pong: W(PongV, b) -> [1] W(PingV, b)"))
        report = lint_manager(cm)
        cm.stop()
        codes = codes_of(report)
        assert "CM303" in codes
        assert "CM301" not in codes

    def test_echo_cycle_is_warning_cm302(self):
        # salary2 offers write AND notify: a rule triggering on N(salary2)
        # that writes salary2 back closes a cycle only through the
        # write->notify echo edge.
        from repro.core.interfaces import InterfaceKind

        cm = bare_two_site()
        rid_b = cm.shells["ny"].translators["salary2"].rid
        rid_b.offer("salary2", InterfaceKind.NOTIFY, bound_seconds=2.0)
        cm.shell("ny").install(
            rule("rule echoer: N(salary2(n), b) -> [1] WR(salary2(n), b)"),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        codes = codes_of(report)
        assert "CM302" in codes
        assert "CM301" not in codes

    def test_acyclic_configuration_passes(self):
        cm = salary_cm("propagation")
        report = lint_manager(cm)
        cm.stop()
        assert not any(code.startswith("CM3") for code in codes_of(report))


class TestDeadAndShadowedRules:
    def test_unreachable_rule_cm401(self):
        cm = bare_two_site()
        cm.locations.register("Never", "sf")
        cm.locations.register("NeverOut", "sf")
        # Nothing ever writes the private family 'Never': no Ws root (it
        # has no translator), no periodic rule, no upstream writer.
        cm.shell("sf").install(
            rule("rule orphan: W(Never, b) -> [1] W(NeverOut, b)")
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM401" in codes_of(report)

    def test_shadowed_rule_cm402(self):
        cm = bare_two_site()
        sf = cm.shell("sf")
        # Identical right-hand sides; the general LHS matches a superset
        # of the specific one's events, so every specific trigger fires
        # the RHS twice.
        sf.install(
            rule("rule specific: N(salary1(n), 100) -> [1] WR(salary2(n), 100)"),
            rhs_site="ny",
        )
        sf.install(
            rule("rule general: N(salary1(n), b) -> [1] WR(salary2(n), 100)"),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM402" in codes_of(report)

    def test_catalog_strategies_have_no_dead_rules(self):
        for kind in ("propagation", "cached-propagation", "polling"):
            cm = salary_cm(kind)
            report = lint_manager(cm)
            cm.stop()
            assert not any(
                code.startswith("CM4") for code in codes_of(report)
            ), kind


class TestWriteConflicts:
    def test_unordered_cross_site_writers_cm501(self):
        cm = bare_two_site()
        cm.locations.register("Shared", "ny")
        cm.shell("sf").install(
            rule("rule from_sf: N(salary1(n), b) -> [1] W(Shared, b)"),
            rhs_site="ny",
        )
        cm.shell("ny").install(
            rule("rule from_ny: P(60) -> [1] W(Shared, 0)"),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM501" in codes_of(report)

    def test_same_site_writers_are_ordered(self):
        cm = bare_two_site()
        cm.locations.register("Shared", "ny")
        sf = cm.shell("sf")
        sf.install(
            rule("rule one: N(salary1(n), b) -> [1] W(Shared, b)"),
            rhs_site="ny",
        )
        sf.install(
            rule("rule two: P(60) -> [1] W(Shared, 0)"),
            rhs_site="ny",
        )
        report = lint_manager(cm)
        cm.stop()
        assert "CM501" not in codes_of(report)
