"""Unit tests for the static effect-summary extraction.

The summaries are the foundation the parallel-phase certification stands
on, so the tests here pin the soundness-critical behaviors: ground vs ANY
arguments, enumerating-read extents, wildcard overlap, compiled-program
corroboration, and the conflict predicate the planner consults.
"""

from __future__ import annotations

from repro.analysis.effects import (
    ANY,
    FootTerm,
    effect_summary,
    pattern_term,
)
from repro.core.compile import compile_rule
from repro.core.dsl import parse_rule
from repro.core.terms import FAMILY_WILDCARD


class TestFootTermOverlap:
    def test_distinct_ground_families_disjoint(self):
        assert not FootTerm("a", ("k",)).overlaps(FootTerm("b", ("k",)))

    def test_same_family_distinct_ground_args_disjoint(self):
        assert not FootTerm("a", ("k1",)).overlaps(FootTerm("a", ("k2",)))

    def test_any_argument_overlaps_everything(self):
        assert FootTerm("a", (ANY,)).overlaps(FootTerm("a", ("k",)))
        assert FootTerm("a", ("k",)).overlaps(FootTerm("a", (ANY,)))

    def test_unknown_shape_overlaps_same_family(self):
        assert FootTerm("a", None).overlaps(FootTerm("a", ("k",)))
        assert not FootTerm("a", None).overlaps(FootTerm("b", ("k",)))

    def test_extent_overlaps_any_args_of_the_family(self):
        whole = FootTerm("a", (ANY,), extent=True)
        assert whole.overlaps(FootTerm("a", ("k",)))
        assert not whole.overlaps(FootTerm("b", ("k",)))

    def test_family_wildcard_overlaps_every_family(self):
        star = FootTerm(FAMILY_WILDCARD, (ANY,))
        assert star.overlaps(FootTerm("anything", ("k",)))
        assert FootTerm("anything", ("k",)).overlaps(star)

    def test_distinct_arity_same_family_disjoint(self):
        # DataItemRef equality includes the argument tuple, so a(k) and
        # a() are distinct items by construction.
        assert not FootTerm("a", ("k",)).overlaps(FootTerm("a", ()))

    def test_str_rendering(self):
        assert str(FootTerm("a", ("k", ANY))) == "a('k', *)"
        assert str(FootTerm("a", (ANY,), extent=True)) == "a(**)"
        assert str(FootTerm("a", None)) == "a(?)"
        assert str(FootTerm("A", ())) == "A"


class TestEffectSummary:
    def _summary(self, text, name="r", compiled=True):
        rule = parse_rule(text, name=name)
        program = compile_rule(rule) if compiled else None
        return effect_summary(rule, program=program)

    def test_keyed_write_footprint_keeps_variable_as_any(self):
        summary = self._summary("N(alpha(n), b) -> [0] W(Out(n), b)")
        assert summary.writes == (FootTerm("Out", (ANY,)),)
        assert not summary.fallback

    def test_ground_write_argument_is_kept(self):
        summary = self._summary("N(alpha(n), b) -> [0] WR(beta('e9'), b)")
        assert summary.writes == (FootTerm("beta", ("e9",)),)

    def test_condition_reads_are_cond_reads_and_reads(self):
        summary = self._summary("N(alpha(n), b) & (b > X) -> [0] W(Out, b)")
        assert FootTerm("X", ()) in summary.cond_reads
        assert FootTerm("X", ()) in summary.reads

    def test_step_condition_reads_are_not_cond_reads(self):
        # A step condition evaluates at RHS time, after the batch commits,
        # so it must not gate hoisting.
        summary = self._summary(
            "N(alpha(n), b) -> [0] (b > Limit) ? W(Out, b)"
        )
        assert FootTerm("Limit", ()) in summary.reads
        assert FootTerm("Limit", ()) not in summary.cond_reads

    def test_grounded_read_request_is_not_an_extent(self):
        summary = self._summary("N(alpha(n), b) -> [0] RR(beta(n))")
        (term,) = [t for t in summary.reads if t.family == "beta"]
        assert not term.extent

    def test_enumerating_read_request_is_a_whole_family_extent(self):
        # m is not bound by the LHS: the RR enumerates every beta instance.
        summary = self._summary("P(60) -> [0] RR(beta(m))")
        (term,) = [t for t in summary.reads if t.family == "beta"]
        assert term.extent

    def test_prohibition_reports_failure_and_writes_nothing(self):
        summary = self._summary("N(alpha(n), b) -> [0] FALSE")
        assert summary.reports_failure
        assert summary.writes == ()

    def test_uncompiled_rule_is_flagged_fallback(self):
        summary = self._summary(
            "N(alpha(n), b) -> [0] W(Out, b)", compiled=False
        )
        assert summary.fallback

    def test_sends_flag_is_callers_responsibility(self):
        rule = parse_rule("N(alpha(n), b) -> [0] W(Out, b)", name="r")
        assert effect_summary(rule, sends=True).sends
        assert not effect_summary(rule).sends


class TestConflicts:
    def _pair(self, a, b):
        ra = parse_rule(a, name="ra")
        rb = parse_rule(b, name="rb")
        return (
            effect_summary(ra, program=compile_rule(ra)),
            effect_summary(rb, program=compile_rule(rb)),
        )

    def test_disjoint_keyed_writes_commute(self):
        sa, sb = self._pair(
            "N(alpha(n), b) -> [0] W(OutA(n), b)",
            "N(beta(n), b) -> [0] W(OutB(n), b)",
        )
        assert sa.conflicts(sb) is None
        assert sb.conflicts(sa) is None

    def test_same_item_blind_writes_conflict(self):
        # Last-writer-wins order is observable in the trace, so two
        # overwrites of the same item never commute.
        sa, sb = self._pair(
            "N(alpha(n), b) -> [0] W(Total, b)",
            "N(beta(n), b) -> [0] W(Total, b)",
        )
        kind, mine, theirs = sa.conflicts(sb)
        assert kind == "ww"
        assert mine.family == theirs.family == "Total"

    def test_read_vs_write_conflict(self):
        sa, sb = self._pair(
            "N(alpha(n), b) & (b > Total) -> [0] W(OutA(n), b)",
            "N(beta(n), b) -> [0] W(Total, b)",
        )
        kind, __, __t = sa.conflicts(sb)
        assert kind == "rw"

    def test_enumerating_read_conflicts_with_any_family_write(self):
        sa, sb = self._pair(
            "P(60) -> [0] RR(beta(m))",
            "N(alpha(n), b) -> [0] WR(beta(n), b)",
        )
        kind, mine, theirs = sb.conflicts(sa)
        assert kind == "wr"
        assert theirs.extent


class TestPatternTerm:
    def test_ground_args_kept_variables_erased(self):
        rule = parse_rule("N(alpha(n), b) -> [0] W(Out(n), b)", name="r")
        term = pattern_term(rule.steps[0].template.item)
        assert term == FootTerm("Out", (ANY,))
