"""Tests for the Diagnostic/LintReport layer."""

import json

import pytest

from repro.analysis import CODES, Diagnostic, LintReport, Severity, describe_codes
from repro.analysis.diagnostics import diagnostic


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(
                code="CM999",
                severity=Severity.ERROR,
                message="nope",
            )

    def test_helper_uses_registered_default_severity(self):
        finding = diagnostic("CM101", "missing write interface")
        assert finding.severity is Severity.ERROR
        finding = diagnostic("CM501", "conflict")
        assert finding.severity is Severity.WARNING
        finding = diagnostic("CM603", "guarded path")
        assert finding.severity is Severity.INFO

    def test_str_includes_code_severity_and_provenance(self):
        finding = diagnostic(
            "CM101", "no write interface", site="ny", rule="forward"
        )
        text = str(finding)
        assert "CM101" in text
        assert "error" in text
        assert "ny" in text
        assert "forward" in text

    def test_to_dict_roundtrips_fields(self):
        finding = diagnostic(
            "CM301", "cycle", site="sf", rule="r1", hint="add a guard"
        )
        data = finding.to_dict()
        assert data["code"] == "CM301"
        assert data["severity"] == "error"
        assert data["site"] == "sf"
        assert data["hint"] == "add a guard"


class TestLintReport:
    def test_finalize_sorts_errors_first(self):
        report = LintReport()
        report.add(diagnostic("CM603", "info finding"))
        report.add(diagnostic("CM501", "warning finding"))
        report.add(diagnostic("CM101", "error finding"))
        report = report.finalize(())
        assert [d.severity for d in report.diagnostics] == [
            Severity.ERROR,
            Severity.WARNING,
            Severity.INFO,
        ]

    def test_ok_fails_only_on_errors(self):
        report = LintReport()
        report.add(diagnostic("CM501", "warning"))
        assert report.finalize(()).ok
        report = LintReport()
        report.add(diagnostic("CM101", "error"))
        assert not report.finalize(()).ok

    def test_suppression_by_code(self):
        report = LintReport()
        report.add(diagnostic("CM501", "conflict", rule="r1"))
        report = report.finalize(("CM501",))
        assert not report.diagnostics
        assert len(report.suppressed) == 1  # still visible, not vanished

    def test_suppression_by_code_and_rule_is_selective(self):
        report = LintReport()
        report.add(diagnostic("CM501", "conflict one", rule="monitor_X"))
        report.add(diagnostic("CM501", "conflict two", rule="other"))
        report = report.finalize(("CM501:monitor_X",))
        assert [d.rule for d in report.diagnostics] == ["other"]
        assert [d.rule for d in report.suppressed] == ["monitor_X"]

    def test_suppressed_error_does_not_fail_ok(self):
        report = LintReport()
        report.add(diagnostic("CM601", "infeasible"))
        assert report.finalize(("CM601",)).ok

    def test_to_json_is_valid(self):
        report = LintReport()
        report.add(diagnostic("CM401", "dead rule", rule="r"))
        data = json.loads(report.finalize(()).to_json())
        assert data["diagnostics"][0]["code"] == "CM401"


class TestCodeRegistry:
    def test_all_families_represented(self):
        prefixes = {code[:3] for code in CODES}
        assert prefixes == {
            "CM1", "CM2", "CM3", "CM4", "CM5", "CM6", "CM7",
        }

    def test_describe_codes_lists_every_code(self):
        text = describe_codes()
        for code in CODES:
            assert code in text
