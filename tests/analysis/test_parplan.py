"""Unit tests for the parallel-phase planner.

``plan_from_entries`` is exercised shell-free (the form CM-Lint uses);
the shell-backed ``build_parallel_plan`` path is covered by the
integration tests in ``tests/cm/test_parallel_phases.py``.
"""

from __future__ import annotations

from repro.analysis.parplan import (
    REASON_SEND,
    REASON_WILDCARD_WRITE,
    effective_summaries,
    plan_from_entries,
)
from repro.core.compile import compile_rule
from repro.core.dsl import parse_rule
from repro.core.errors import CompileError
from repro.core.events import EventKind
from repro.core.rules import RhsStep
from repro.core.templates import Template
from repro.core.terms import FAMILY_WILDCARD, ItemPattern, Var


def entry(text, name, sends=False, rule=None):
    rule = rule if rule is not None else parse_rule(text, name=name)
    try:
        program = compile_rule(rule)
    except CompileError:
        program = None
    return (rule, program, sends)


def plan_of(*entries):
    return plan_from_entries("s", list(entries))


class TestPhasePartition:
    def test_commuting_rules_share_one_phase(self):
        plan = plan_of(
            entry("N(alpha(n), b) -> [0] W(OutA(n), b)", "ra"),
            entry("N(beta(n), b) -> [0] W(OutB(n), b)", "rb"),
            entry("N(gamma(n), b) -> [0] W(OutC(n), b)", "rc"),
        )
        assert len(plan.phases) == 1
        assert not plan.phases[0].barrier
        assert plan.certified_pairs == 3
        assert plan.independent("ra", "rb")
        assert plan.independent("rb", "rc")

    def test_conflicting_writers_split_into_phases(self):
        plan = plan_of(
            entry("N(alpha(n), b) -> [0] W(Total, b)", "ra"),
            entry("N(beta(n), b) -> [0] W(Total, b)", "rb"),
        )
        assert len(plan.phases) == 2
        assert not plan.independent("ra", "rb")
        assert plan.certified_pairs == 0
        (conflict,) = plan.conflicts
        assert {conflict.rule_a, conflict.rule_b} == {"ra", "rb"}
        assert conflict.kind == "ww"

    def test_a_rule_is_never_independent_of_itself(self):
        plan = plan_of(entry("N(alpha(n), b) -> [0] W(Out(n), b)", "ra"))
        assert not plan.independent("ra", "ra")

    def test_unknown_rule_is_not_independent(self):
        plan = plan_of(entry("N(alpha(n), b) -> [0] W(Out(n), b)", "ra"))
        assert not plan.independent("ra", "ghost")


class TestBarriers:
    def test_cross_site_send_forces_the_barrier(self):
        plan = plan_of(
            entry("N(alpha(n), b) -> [0] WR(remote(n), b)", "push", sends=True),
            entry("N(beta(n), b) -> [0] W(Out(n), b)", "local"),
        )
        assert plan.barrier_reasons == {"push": REASON_SEND}
        barrier = plan.phases[-1]
        assert barrier.barrier and barrier.rules == ("push",)
        # Barrier members are certified against nothing, even each other.
        assert not plan.independent("push", "local")

    def test_wildcard_write_forces_the_barrier(self):
        base = parse_rule("W(Mid(n), b) -> [0] W(Shadow, b)", name="mirror")
        wildcard = Template(
            EventKind.WRITE,
            ItemPattern(FAMILY_WILDCARD, (Var("n"),)),
            (Var("b"),),
        )
        from dataclasses import replace

        rule = replace(base, steps=(RhsStep(wildcard),))
        plan = plan_of(
            entry(None, "mirror", rule=rule),
            entry("N(beta(n), b) -> [0] W(Out(n), b)", "local"),
        )
        assert plan.barrier_reasons == {"mirror": REASON_WILDCARD_WRITE}
        assert not plan.independent("mirror", "local")

    def test_two_barrier_rules_share_the_single_barrier_phase(self):
        plan = plan_of(
            entry("N(a(n), b) -> [0] WR(ra(n), b)", "p1", sends=True),
            entry("N(b(n), b) -> [0] WR(rb(n), b)", "p2", sends=True),
        )
        assert len(plan.phases) == 1
        assert plan.phases[0].barrier
        assert plan.certified_pairs == 0
        assert not plan.independent("p1", "p2")


class TestChainedWrites:
    def test_chained_private_write_absorbs_target_footprint(self):
        # ra's W(Mid) triggers chain's RHS inline, so ra effectively
        # writes Out too — and must conflict with rc, which also writes
        # Out, even though ra's own template never mentions it.
        entries = [
            entry("N(alpha(n), b) -> [0] W(Mid, b)", "ra"),
            entry("W(Mid, b) -> [0] W(Out, b)", "chain"),
            entry("N(beta(n), b) -> [0] W(Out, b)", "rc"),
        ]
        summaries = effective_summaries(entries)
        assert any(t.family == "Out" for t in summaries["ra"].writes)
        plan = plan_from_entries("s", entries)
        assert not plan.independent("ra", "rc")

    def test_chaining_reaches_fixpoint_over_two_hops(self):
        entries = [
            entry("N(alpha(n), b) -> [0] W(MidA, b)", "ra"),
            entry("W(MidA, b) -> [0] W(MidB, b)", "hop1"),
            entry("W(MidB, b) -> [0] W(Out, b)", "hop2"),
        ]
        summaries = effective_summaries(entries)
        assert any(t.family == "Out" for t in summaries["ra"].writes)


class TestHoistingGates:
    def test_conditionless_rule_is_store_free_and_hoistable(self):
        plan = plan_of(entry("N(alpha(n), b) -> [0] W(Out(n), b)", "ra"))
        assert "ra" in plan.store_free
        assert "ra" in plan.hoistable

    def test_condition_over_unwritten_item_is_hoistable_not_store_free(self):
        plan = plan_of(
            entry("N(alpha(n), b) & (b > Limit) -> [0] W(Out(n), b)", "ra"),
        )
        assert "ra" in plan.hoistable
        assert "ra" not in plan.store_free

    def test_condition_over_locally_written_item_is_not_hoistable(self):
        # rb writes Limit, so ra's condition verdict can change mid-batch:
        # hoisting it would be unsound.
        plan = plan_of(
            entry("N(alpha(n), b) & (b > Limit) -> [0] W(Out(n), b)", "ra"),
            entry("N(beta(n), b) -> [0] W(Limit, b)", "rb"),
        )
        assert "ra" not in plan.hoistable

    def test_own_write_blocks_hoisting(self):
        # An earlier firing of the same rule in a batch writes before a
        # later firing's condition would have run serially.
        plan = plan_of(
            entry("N(alpha(n), b) & (b > Acc) -> [0] W(Acc, b)", "ra"),
        )
        assert "ra" not in plan.hoistable


class TestPlanShape:
    def test_to_dict_shape(self):
        plan = plan_of(
            entry("N(alpha(n), b) -> [0] W(Out(n), b)", "ra"),
            entry("N(b(n), b) -> [0] WR(rb(n), b)", "push", sends=True),
        )
        data = plan.to_dict()
        assert set(data) == {
            "site", "phases", "certified_pairs", "barrier_reasons",
            "conflicts", "hoistable", "store_free", "fallback_rules",
        }
        assert data["site"] == "s"
        assert data["phases"][-1]["barrier"] is True

    def test_uncompilable_rule_listed_as_fallback(self):
        plan = plan_of(
            entry("N(alpha(n), b) -> [0] N(echo(n), b)", "bad"),
        )
        assert plan.to_dict()["fallback_rules"] == ["bad"]
        assert plan.summaries["bad"].fallback

    def test_enumerating_conflict_is_marked(self):
        plan = plan_of(
            entry("P(60) -> [0] RR(pos(m))", "scan"),
            entry("N(fill(n), b) -> [0] WR(pos(n), b)", "record"),
        )
        (conflict,) = plan.conflicts
        assert conflict.enumerating
        assert not plan.independent("scan", "record")
