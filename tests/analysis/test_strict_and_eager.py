"""Tests for strict shell installs, eager manager validation, and the
lint wiring in ``verify()`` / run reports."""

import pytest

from analysis_helpers import bare_two_site, salary_cm

from repro import parse_rules
from repro.core.errors import ConfigurationError
from repro.cm.verify import verify
from repro.constraints.copy import CopyConstraint
from repro.core.catalog import Suggestion
from repro.core.strategies import StrategySpec


def rule(text: str):
    (parsed,) = parse_rules(text)
    return parsed


class TestStrictInstall:
    def test_strict_rejects_rule_violating_interfaces(self):
        # The RHS must be local: the single-shell lint view deliberately
        # skips remote-RHS steps (their interfaces are out of scope), so
        # the violation here is a write-back to salary1, which offers
        # notify and read but no write interface.
        cm = bare_two_site()
        shell = cm.shell("sf")
        before = len(shell._index)
        with pytest.raises(ConfigurationError) as excinfo:
            shell.install(
                rule("rule back: N(salary1(n), b) -> [1] WR(salary1(n), b)"),
                strict=True,
            )
        cm.stop()
        assert "CM101" in str(excinfo.value)
        # The rejected rule was rolled back, not left half-installed.
        assert len(shell._index) == before

    def test_non_strict_install_of_same_rule_succeeds(self):
        cm = bare_two_site()
        shell = cm.shell("sf")
        before = len(shell._index)
        shell.install(
            rule("rule back: N(salary1(n), b) -> [1] WR(salary1(n), b)")
        )
        cm.stop()
        assert len(shell._index) == before + 1

    def test_strict_accepts_clean_rule(self):
        cm = bare_two_site()
        shell = cm.shell("sf")
        shell.install(
            rule("rule fwd: N(salary1(n), b) -> [1] WR(salary2(n), b)"),
            rhs_site="ny",
            strict=True,
        )
        cm.stop()
        assert any(r.rule.name == "fwd" for r in shell._index)

    def test_strict_rejects_unguarded_cycle(self):
        cm = bare_two_site()
        shell = cm.shell("sf")
        cm.locations.register("PingV", "sf")
        cm.locations.register("PongV", "sf")
        shell.install(rule("rule ping: W(PingV, b) -> [1] W(PongV, b)"))
        with pytest.raises(ConfigurationError) as excinfo:
            shell.install(
                rule("rule pong: W(PongV, b) -> [1] W(PingV, b)"),
                strict=True,
            )
        cm.stop()
        assert "CM301" in str(excinfo.value)


class TestEagerValidation:
    def test_strategy_referencing_unknown_family_raises(self):
        # Regression: before the eager check, a strategy naming a family
        # with no registered source installed fine and only failed at the
        # first event — now it is a ConfigurationError at install time.
        cm = bare_two_site()
        constraint = cm.declare(
            CopyConstraint("salary1", "salary2", params=("n",))
        )
        spec = StrategySpec(
            name="ghost-writer",
            kind="propagation",
            description="writes a family nobody registered",
            rules=(
                rule("rule bad: N(salary1(n), b) -> [1] WR(ghost(n), b)"),
            ),
        )
        with pytest.raises(ConfigurationError) as excinfo:
            cm.install(constraint, Suggestion(spec, (), "test"))
        cm.stop()
        message = str(excinfo.value)
        assert "ghost" in message
        assert "add_source" in message  # fix hint names the remedy

    def test_catalog_strategies_still_install(self):
        cm = salary_cm("propagation")
        cm.stop()  # construction already installed the strategy


class TestVerifyLintIntegration:
    def test_bad_rule_fails_verification(self):
        cm = salary_cm("propagation")
        cm.shell("ny").install(
            rule("rule raw: N(salary1(n), b) -> [1] W(salary2(n), b)"),
            rhs_site="ny",
        )
        report = verify(cm)
        cm.stop()
        assert not report.lint_ok
        assert not report.ok
        assert any(d.code == "CM105" for d in report.diagnostics)

    def test_lint_can_be_skipped(self):
        cm = salary_cm("propagation")
        cm.shell("ny").install(
            rule("rule raw: N(salary1(n), b) -> [1] W(salary2(n), b)"),
            rhs_site="ny",
        )
        report = verify(cm, lint=False)
        cm.stop()
        assert report.lint_ok  # no findings recorded at all
        assert not report.diagnostics

    def test_suppression_reaches_verify(self):
        cm = salary_cm("propagation")
        cm.shell("ny").install(
            rule("rule raw: N(salary1(n), b) -> [1] W(salary2(n), b)"),
            rhs_site="ny",
        )
        report = verify(cm, lint_suppress=("CM105:raw",))
        cm.stop()
        assert report.lint_ok

    def test_run_report_carries_lint_findings(self):
        cm = salary_cm("propagation")
        cm.shell("ny").install(
            rule("rule raw: N(salary1(n), b) -> [1] W(salary2(n), b)"),
            rhs_site="ny",
        )
        report = cm.run_report()
        cm.stop()
        codes = {finding["code"] for finding in report.lint}
        assert "CM105" in codes
        assert "lint" in report.to_dict()
