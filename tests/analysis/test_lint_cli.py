"""Tests for the ``python -m repro --lint`` command-line surface."""

import json

import pytest

from repro.__main__ import main


class TestLintCli:
    def test_lint_single_target_exits_zero(self, capsys):
        assert main(["--lint", "e1_propagation"]) == 0
        out = capsys.readouterr().out
        assert "e1_propagation" in out

    def test_lint_all_exits_zero(self, capsys):
        assert main(["--lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "example:quickstart" in out

    def test_unknown_target_exits_two(self, capsys):
        assert main(["--lint", "no_such_experiment"]) == 2

    def test_missing_target_without_all_exits_two(self, capsys):
        assert main(["--lint"]) == 2

    def test_json_report_is_written(self, tmp_path, capsys):
        out_path = tmp_path / "lint.json"
        assert main(["--lint", "e1_propagation", "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["ok"]
        assert "e1_propagation" in data["targets"]

    def test_json_all_report_covers_every_target(self, tmp_path, capsys):
        from repro.analysis.targets import available_targets

        out_path = tmp_path / "lint.json"
        assert main(["--lint", "--all", "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert set(data["targets"]) == set(available_targets())

    def test_json_without_lint_is_an_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--json", str(tmp_path / "x.json")])
        assert excinfo.value.code == 2

    def test_lint_codes_lists_registry(self, capsys):
        from repro.analysis import CODES

        assert main(["--lint-codes"]) == 0
        out = capsys.readouterr().out
        for code in CODES:
            assert code in out
