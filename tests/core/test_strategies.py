"""Tests for the strategy menu (Sections 3.2, 4.2.2, 6)."""

from repro.core.events import EventKind
from repro.core.items import MISSING
from repro.core.strategies import (
    cached_propagation,
    eod_batch,
    eod_cleanup,
    monitor,
    polling,
    propagation,
)
from repro.core.terms import Const
from repro.core.timebase import DAY, clock_time, seconds


class TestPropagation:
    def test_single_forwarding_rule(self):
        spec = propagation("salary1", "salary2", seconds(5), params=("n",))
        assert len(spec.rules) == 1
        rule = spec.rules[0]
        assert rule.lhs.kind is EventKind.NOTIFY
        assert rule.steps[0].template.kind is EventKind.WRITE_REQUEST
        assert rule.delay == seconds(5)


class TestCachedPropagation:
    def test_cache_step_sequence(self):
        spec = cached_propagation(
            "X", "Y", seconds(5), dst_site="ny"
        )
        rule = spec.rules[0]
        # Step 1: conditional write request; step 2: cache refresh.
        assert rule.steps[0].template.kind is EventKind.WRITE_REQUEST
        assert rule.steps[1].template.kind is EventKind.WRITE
        assert spec.private_families == (("Cache_X_Y", "ny"),)


class TestPolling:
    def test_two_rules(self):
        spec = polling("X", "Y", seconds(60), seconds(5))
        poll, forward = spec.rules
        assert poll.lhs.kind is EventKind.PERIODIC
        assert poll.lhs.values[0] == Const(seconds(60))
        assert forward.lhs.kind is EventKind.READ_RESPONSE

    def test_phase_recorded(self):
        spec = polling(
            "X", "Y", DAY, seconds(5), phase=clock_time(17)
        )
        assert spec.timer_phases == {"poll_X": clock_time(17)}


class TestMonitor:
    def test_private_families_at_app_site(self):
        spec = monitor("X", "Y", "app", seconds(1))
        families = dict(spec.private_families)
        assert set(families) == {
            "Cache_X",
            "Cache_Y",
            "Flag_X_Y",
            "Tb_X_Y",
        }
        assert set(families.values()) == {"app"}

    def test_symmetric_rules(self):
        spec = monitor("X", "Y", "app", seconds(1))
        assert len(spec.rules) == 2
        for rule in spec.rules:
            # cache write + 3 agreement steps
            assert len(rule.steps) == 4

    def test_tb_stamped_with_now(self):
        spec = monitor("X", "Y", "app", seconds(1))
        tb_steps = [
            step
            for rule in spec.rules
            for step in rule.steps
            if step.template.item and step.template.item.name == "Tb_X_Y"
        ]
        assert tb_steps
        for step in tb_steps:
            assert "now" in step.template.variables()


class TestEodStrategies:
    def test_eod_batch_is_daily_polling(self):
        spec = eod_batch("b1", "b2", clock_time(17), seconds(2), params=("n",))
        poll = spec.rules[0]
        assert poll.lhs.values[0] == Const(DAY)
        assert spec.timer_phases[poll.name] == clock_time(17)

    def test_eod_cleanup_chain(self):
        spec = eod_cleanup("project", "salary", clock_time(23), seconds(2))
        scan, check, cleanup = spec.rules
        assert scan.lhs.kind is EventKind.PERIODIC
        assert check.lhs.kind is EventKind.READ_RESPONSE
        assert cleanup.steps[0].template.values[0] == Const(MISSING)
