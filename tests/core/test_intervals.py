"""Unit and property-based tests for the interval-set algebra."""

from hypothesis import given, strategies as st

from repro.core.intervals import Interval, IntervalSet


def interval_strategy(max_value: int = 200):
    return st.tuples(
        st.integers(0, max_value), st.integers(0, max_value)
    ).map(lambda pair: Interval(min(pair), max(pair)))


def interval_set_strategy():
    return st.lists(interval_strategy(), max_size=8).map(IntervalSet)


class TestInterval:
    def test_empty(self):
        assert Interval(5, 5).empty
        assert Interval(6, 5).empty
        assert not Interval(5, 6).empty

    def test_contains_half_open(self):
        interval = Interval(10, 20)
        assert interval.contains(10)
        assert interval.contains(19)
        assert not interval.contains(20)

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 15)) == Interval(5, 10)


class TestNormalization:
    def test_merges_overlaps_and_abutting(self):
        merged = IntervalSet([Interval(0, 5), Interval(5, 10), Interval(3, 7)])
        assert list(merged) == [Interval(0, 10)]

    def test_drops_empty(self):
        assert not IntervalSet([Interval(5, 5)])

    def test_sorted_disjoint(self):
        intervals = list(IntervalSet([Interval(20, 30), Interval(0, 10)]))
        assert intervals == [Interval(0, 10), Interval(20, 30)]


class TestOperations:
    def test_union(self):
        a = IntervalSet([Interval(0, 5)])
        b = IntervalSet([Interval(10, 15)])
        assert a.union(b).total_length == 10

    def test_intersection(self):
        a = IntervalSet([Interval(0, 10)])
        b = IntervalSet([Interval(5, 20)])
        assert list(a.intersection(b)) == [Interval(5, 10)]

    def test_difference_splits(self):
        a = IntervalSet([Interval(0, 10)])
        b = IntervalSet([Interval(4, 6)])
        assert list(a.difference(b)) == [Interval(0, 4), Interval(6, 10)]

    def test_covers(self):
        a = IntervalSet([Interval(0, 10), Interval(20, 30)])
        assert a.covers(Interval(2, 8))
        assert not a.covers(Interval(8, 22))
        assert a.covers(Interval(5, 5))  # empty is vacuously covered

    def test_uncovered(self):
        a = IntervalSet([Interval(0, 10)])
        gaps = a.uncovered(Interval(5, 15))
        assert list(gaps) == [Interval(10, 15)]


class TestProperties:
    @given(interval_set_strategy(), interval_set_strategy())
    def test_union_length_is_inclusion_exclusion(self, a, b):
        union = a.union(b)
        intersection = a.intersection(b)
        assert (
            union.total_length
            == a.total_length + b.total_length - intersection.total_length
        )

    @given(interval_set_strategy(), interval_set_strategy(),
           st.integers(0, 200))
    def test_pointwise_union_semantics(self, a, b, point):
        assert a.union(b).contains(point) == (
            a.contains(point) or b.contains(point)
        )

    @given(interval_set_strategy(), interval_set_strategy(),
           st.integers(0, 200))
    def test_pointwise_intersection_semantics(self, a, b, point):
        assert a.intersection(b).contains(point) == (
            a.contains(point) and b.contains(point)
        )

    @given(interval_set_strategy(), interval_set_strategy(),
           st.integers(0, 200))
    def test_pointwise_difference_semantics(self, a, b, point):
        assert a.difference(b).contains(point) == (
            a.contains(point) and not b.contains(point)
        )

    @given(interval_set_strategy())
    def test_difference_with_self_is_empty(self, a):
        assert not a.difference(a)

    @given(interval_set_strategy(), interval_strategy())
    def test_covers_iff_uncovered_empty(self, a, interval):
        assert a.covers(interval) == (not a.uncovered(interval))
