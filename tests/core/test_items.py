"""Unit tests for data items and the location registry."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.items import MISSING, DataItemRef, Locations, item


class TestMissing:
    def test_singleton(self):
        from repro.core.items import _Missing

        assert _Missing() is MISSING

    def test_falsy_and_repr(self):
        assert not MISSING
        assert repr(MISSING) == "MISSING"


class TestDataItemRef:
    def test_plain_item(self):
        ref = item("X")
        assert ref.name == "X"
        assert ref.args == ()
        assert str(ref) == "X"

    def test_parameterized_item(self):
        ref = item("salary1", "e042")
        assert str(ref) == "salary1('e042')"

    def test_hashable_and_equal_by_value(self):
        assert item("a", 1) == item("a", 1)
        assert len({item("a", 1), item("a", 1), item("a", 2)}) == 2


class TestLocations:
    def test_register_and_lookup(self):
        locations = Locations()
        locations.register("salary1", "sf")
        assert locations.site_of("salary1") == "sf"
        assert locations.known("salary1")
        assert not locations.known("other")

    def test_reregister_same_site_is_idempotent(self):
        locations = Locations()
        locations.register("x", "a")
        locations.register("x", "a")
        assert locations.site_of("x") == "a"

    def test_conflicting_registration_rejected(self):
        locations = Locations()
        locations.register("x", "a")
        with pytest.raises(ConfigurationError):
            locations.register("x", "b")

    def test_unknown_family_raises(self):
        with pytest.raises(ConfigurationError):
            Locations().site_of("ghost")

    def test_families_at_site(self):
        locations = Locations()
        locations.register("x", "a")
        locations.register("y", "a")
        locations.register("z", "b")
        assert sorted(locations.families_at("a")) == ["x", "y"]
