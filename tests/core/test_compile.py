"""Randomized compiled-vs-interpreted equivalence for rule programs.

The load-bearing property: for any rule the compiler accepts, the compiled
program (:mod:`repro.core.compile`) must agree with the tree-walking
reference path — ``match_desc`` + ``evaluate``/``evaluate_value`` +
``ground_item``/``ground_term`` — on every input: same match/no-match, same
bindings, same condition verdicts, same grounded events, and the same
exception classes where the reference raises.  These tests drive that over
generated expressions, rules, descriptors, and stores; the directed tests
pin the constant-folding and static-decision behaviours.
"""

import random

import pytest

from repro.core.compile import CompiledRule, compile_rule
from repro.core.conditions import (
    TRUE,
    Binary,
    Call,
    ItemRead,
    Literal,
    Name,
    Unary,
    evaluate,
    evaluate_value,
)
from repro.core.dsl import parse_condition, parse_rule
from repro.core.errors import BindingError, CompileError
from repro.core.events import EventDesc, EventKind, notify_desc, periodic_desc
from repro.core.items import MISSING, DataItemRef
from repro.core.rules import RhsStep, Rule
from repro.core.templates import (
    FALSE_TEMPLATE,
    Template,
    instantiate,
    match_desc,
)
from repro.core.terms import (
    FAMILY_WILDCARD,
    WILDCARD,
    Const,
    ItemPattern,
    Var,
)
from repro.core.timebase import seconds


class DictLocal:
    """A LocalData over a plain dict (stand-in for a shell store)."""

    def __init__(self, data=None):
        self.data = dict(data or {})

    def read_local(self, ref):
        return self.data.get(ref, MISSING)


def compile_over(expr, bindings):
    """Compile ``expr`` with a slot per binding; return (fn, slots)."""
    names = sorted(bindings)
    slot_of = {name: index for index, name in enumerate(names)}
    # Reuse the internal expression compiler through a minimal façade.
    from repro.core.compile import _as_fn, _compile_expr

    fn = _as_fn(_compile_expr(expr, slot_of))
    slots = [bindings[name] for name in names]
    return fn, slots


# -- expression equivalence ----------------------------------------------------

VARS = ["n", "b", "m"]
LOCALS_UPPER = ["X", "Cache", "Flag"]
VALUES = [0, 1, 2.5, -3, "x", True, False, MISSING]


def random_expr(rng, depth=0):
    choices = ["literal", "name", "itemread", "unary", "binary", "call"]
    if depth >= 3:
        choices = ["literal", "name", "itemread"]
    kind = rng.choice(choices)
    if kind == "literal":
        return Literal(rng.choice(VALUES))
    if kind == "name":
        # Bound vars, unbound lowercase vars, and uppercase local items.
        return Name(rng.choice(VARS + ["zz"] + LOCALS_UPPER))
    if kind == "itemread":
        args = tuple(
            rng.choice([Var(rng.choice(VARS + ["zz"])), Const(rng.choice(VALUES))])
            for __ in range(rng.choice([0, 1, 2]))
        )
        return ItemRead(ItemPattern(rng.choice(["cache", "seen"]), args))
    if kind == "unary":
        return Unary(rng.choice(["-", "not"]), random_expr(rng, depth + 1))
    if kind == "binary":
        op = rng.choice(
            ["+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!=", "and", "or"]
        )
        return Binary(op, random_expr(rng, depth + 1), random_expr(rng, depth + 1))
    func = rng.choice(["abs", "exists"])
    if func == "exists":
        arg = rng.choice(
            [
                Name(rng.choice(LOCALS_UPPER)),
                ItemRead(ItemPattern("cache", (Var(rng.choice(VARS)),))),
            ]
        )
        return Call("exists", (arg,))
    return Call("abs", (random_expr(rng, depth + 1),))


def reference_outcome(fn, *args):
    """Run a callable; normalize value-or-exception for comparison."""
    try:
        return ("ok", fn(*args))
    except (BindingError, TypeError) as exc:
        return ("raise", type(exc).__name__)
    except (ZeroDivisionError,) as exc:
        return ("raise", type(exc).__name__)


@pytest.mark.parametrize("seed", range(8))
def test_random_expression_equivalence(seed):
    rng = random.Random(seed)
    for __ in range(300):
        expr = random_expr(rng)
        bindings = {
            name: rng.choice(VALUES)
            for name in VARS
            if rng.random() < 0.8
        }
        local = DictLocal()
        for upper in LOCALS_UPPER:
            if rng.random() < 0.7:
                local.data[DataItemRef(upper)] = rng.choice(VALUES)
        for family in ("cache", "seen"):
            for key in VALUES[:5]:
                if rng.random() < 0.4:
                    local.data[DataItemRef(family, (key,))] = rng.choice(VALUES)
        try:
            fn, slots = compile_over(expr, bindings)
        except CompileError:
            pytest.fail(f"compiler rejected a valid expression: {expr}")
        expected = reference_outcome(evaluate_value, expr, dict(bindings), local)
        got = reference_outcome(fn, slots, local)
        assert got == expected, (
            f"expr {expr} bindings {bindings}: compiled {got} != "
            f"interpreted {expected}"
        )
        # evaluate() additionally coerces to bool; verdicts must agree too.
        expected_bool = reference_outcome(
            lambda: bool(evaluate(expr, dict(bindings), local))
        )
        got_bool = reference_outcome(lambda: bool(fn(slots, local)))
        assert got_bool == expected_bool


# -- matcher equivalence -------------------------------------------------------

FAMILIES = ["alpha", "beta", "gamma"]
KEYS = ["e1", "e2", "e3"]
ITEM_KINDS = [
    EventKind.WRITE,
    EventKind.SPONTANEOUS_WRITE,
    EventKind.WRITE_REQUEST,
    EventKind.READ_REQUEST,
    EventKind.READ_RESPONSE,
    EventKind.NOTIFY,
]


def random_lhs(rng):
    kind = rng.choice(ITEM_KINDS + [EventKind.PERIODIC])
    if kind is EventKind.PERIODIC:
        return Template(kind, None, (Const(seconds(rng.choice([5, 10]))),))
    name = rng.choice(FAMILIES + [FAMILY_WILDCARD])
    args = tuple(
        rng.choice(
            [Var("n"), Var("m"), Var("n"), Const(rng.choice(KEYS)), WILDCARD]
        )
        for __ in range(rng.choice([0, 1, 1, 2]))
    )
    values = tuple(
        rng.choice([Var("b"), Var("n"), Const(rng.choice([1.0, "x"])), WILDCARD])
        for __ in range(kind.value_arity)
    )
    return Template(kind, ItemPattern(name, args), values)


def random_desc(rng):
    kind = rng.choice(ITEM_KINDS + [EventKind.PERIODIC])
    if kind is EventKind.PERIODIC:
        return periodic_desc(seconds(rng.choice([5, 10])))
    ref = DataItemRef(
        rng.choice(FAMILIES),
        tuple(rng.choice(KEYS) for __ in range(rng.choice([0, 1, 1, 2]))),
    )
    values = tuple(
        rng.choice([1.0, 2.0, "x", "e1"]) for __ in range(kind.value_arity)
    )
    return EventDesc(kind, ref, values)


def assert_slots_match_bindings(program: CompiledRule, slots, bindings):
    slot_of = {name: i for i, name in enumerate(program.slot_names)}
    for name, value in bindings.items():
        assert slots[slot_of[name]] == value, (
            f"slot {name}: {slots[slot_of[name]]!r} != {value!r}"
        )


@pytest.mark.parametrize("seed", range(8))
def test_random_matcher_equivalence(seed):
    rng = random.Random(1000 + seed)
    for __ in range(200):
        lhs = random_lhs(rng)
        rule = Rule(
            name="r", lhs=lhs, delay=seconds(1),
            steps=(RhsStep(FALSE_TEMPLATE),),
        )
        program = compile_rule(rule)
        for ___ in range(20):
            desc = random_desc(rng)
            expected = match_desc(lhs, desc)
            slots = program.match(desc)
            if expected is None:
                assert slots is None, f"{lhs} vs {desc}: spurious match"
            else:
                assert slots is not None, f"{lhs} vs {desc}: missed match"
                assert_slots_match_bindings(program, slots, expected)


# -- LHS condition + binder equivalence ---------------------------------------

CONDITIONS = [
    "b > 0",
    "b > X",
    "abs(b - Cache) > 1",
    "exists(cache(n)) and cache(n) != b",
    "b == 1 or n == 'e1'",
    "not (b < 0)",
    "X == Cache and b >= 0",
    "v == X + 1 and v > b",     # binder: captures X+1 into v
    "v == Cache and v != b",    # binder over a local read
]


@pytest.mark.parametrize("seed", range(4))
def test_random_lhs_condition_equivalence(seed):
    rng = random.Random(2000 + seed)
    for condition_src in CONDITIONS:
        condition = parse_condition(condition_src)
        lhs = Template(
            EventKind.NOTIFY, ItemPattern("alpha", (Var("n"),)), (Var("b"),)
        )
        rule = Rule(
            name="r", lhs=lhs, delay=seconds(1),
            steps=(RhsStep(FALSE_TEMPLATE),), condition=condition,
        )
        program = compile_rule(rule)
        slot_of = {name: i for i, name in enumerate(program.slot_names)}
        for __ in range(100):
            desc = notify_desc(
                DataItemRef("alpha", (rng.choice(KEYS),)),
                rng.choice([0, 1, 2.5, -3, MISSING]),
            )
            local = DictLocal()
            for upper in ("X", "Cache"):
                if rng.random() < 0.8:
                    local.data[DataItemRef(upper)] = rng.choice([0, 1, 2.5])
            for key in KEYS:
                if rng.random() < 0.5:
                    local.data[DataItemRef("cache", (key,))] = rng.choice(
                        [0, 1, 2.5]
                    )

            # Reference: the shell's _lhs_condition_holds semantics.
            bindings = match_desc(lhs, desc)
            assert bindings is not None
            try:
                for var, expr in rule.binders:
                    bindings[var] = evaluate_value(expr, bindings, local)
                expected_ok = bool(evaluate(condition, bindings, local))
            except (BindingError, TypeError):
                expected_ok = False

            slots = program.match(desc)
            assert slots is not None
            if program.lhs is None:
                got_ok = True
            else:
                try:
                    got_ok = bool(program.lhs(slots, local))
                except (BindingError, TypeError):
                    got_ok = False
            assert got_ok == expected_ok, (
                f"condition {condition_src!r} desc {desc} "
                f"local {local.data}: compiled {got_ok} != {expected_ok}"
            )
            if expected_ok:
                # Binder slots must hold the reference binder values.
                for var, __expr in rule.binders:
                    assert slots[slot_of[var]] == bindings[var]


# -- RHS step equivalence ------------------------------------------------------

RHS_RULES = [
    "N(alpha(n), b) -> [1] WR(beta(n), b)",
    "N(alpha(n), b) -> [1] (b > Cache) ? WR(beta(n), b)",
    "N(alpha(n), b) -> [1] W(cache(n), b), (b > 0) ? WR(beta(n), b)",
    "N(alpha(n), b) -> [1] WR(beta(n), b), W(Seen, b)",
    "N(alpha(n), b) -> [1] RR(beta(n))",
    "N(alpha(n), b) -> [1] RR(beta(m))",  # enumerating: m never bound
    "P(60) & (b == X) -> [1] WR(beta('e1'), b)",
    "N(alpha(n), b) -> [1] W(Tb, now)",
]


@pytest.mark.parametrize("source", RHS_RULES)
def test_rhs_step_plans_match_reference(source):
    rng = random.Random(42)
    rule = parse_rule(source, name="r")
    program = compile_rule(rule)
    slot_of = {name: i for i, name in enumerate(program.slot_names)}
    live_steps = [
        step for step in rule.steps
        if step.template.kind is not EventKind.FALSE
    ]
    assert len(program.steps) == len(live_steps)
    for __ in range(50):
        if rule.lhs.kind is EventKind.PERIODIC:
            desc = periodic_desc(seconds(60))
        else:
            desc = notify_desc(
                DataItemRef("alpha", (rng.choice(KEYS),)), rng.choice([1.0, 2.5])
            )
        local = DictLocal({DataItemRef("X"): 7.0, DataItemRef("Cache"): 1.5})
        bindings = match_desc(rule.lhs, desc)
        assert bindings is not None
        try:
            for var, expr in rule.binders:
                bindings[var] = evaluate_value(expr, bindings, local)
            if not evaluate(rule.condition, bindings, local):
                continue
        except (BindingError, TypeError):
            continue
        slots = program.match(desc)
        if program.lhs is not None:
            assert program.lhs(slots, local)
        now = seconds(123)
        slots[program.now_slot] = now
        for step, compiled in zip(live_steps, program.steps):
            step_bindings = dict(bindings)
            step_bindings["now"] = now
            expected_applicable = bool(
                evaluate(step.condition, step_bindings, local)
            )
            if compiled.condition is None:
                got_applicable = True
            else:
                got_applicable = bool(compiled.condition(slots, local))
            assert got_applicable == expected_applicable
            if not expected_applicable:
                continue
            if compiled.enumerating:
                unbound = step.template.item.variables() - set(step_bindings)
                assert unbound, "compiled enumerating but reference is ground"
                continue
            expected_event = instantiate(step.template, step_bindings)
            assert compiled.make_ref(slots) == expected_event.item
            if compiled.make_value is not None:
                assert compiled.make_value(slots) == expected_event.values[0]


# -- directed compile-time behaviours -----------------------------------------

def test_constant_true_condition_folds_away():
    rule = parse_rule("N(alpha(n), b) -> [1] WR(beta(n), b)", name="r")
    assert rule.condition is TRUE
    program = compile_rule(rule)
    assert program.lhs is None
    assert program.steps[0].condition is None


def test_constant_subexpressions_fold():
    rule = parse_rule(
        "N(alpha(n), b) & (b > 2 * 3 + 4) -> [1] WR(beta(n), b)", name="r"
    )
    program = compile_rule(rule)
    desc = notify_desc(DataItemRef("alpha", ("e1",)), 11.0)
    slots = program.match(desc)
    local = DictLocal()
    assert program.lhs(slots, local) is True
    slots = program.match(notify_desc(DataItemRef("alpha", ("e1",)), 9.0))
    assert program.lhs(slots, local) is False


def test_statically_false_step_is_dropped():
    rule = parse_rule(
        "N(alpha(n), b) -> [1] (1 > 2) ? WR(beta(n), b), W(Seen, b)",
        name="r",
    )
    program = compile_rule(rule)
    assert len(program.steps) == 1
    assert program.steps[0].kind is EventKind.WRITE


def test_prohibition_compiles_to_empty_program():
    rule = parse_rule("N(alpha(n), b) -> [1] FALSE", name="r")
    program = compile_rule(rule)
    assert program.steps == ()
    assert program.lhs is None


def test_ground_ref_resolved_at_compile_time():
    rule = parse_rule("N(alpha(n), b) -> [1] WR(beta('e9'), b)", name="r")
    program = compile_rule(rule)
    ref_a = program.steps[0].make_ref([None, None, None])
    ref_b = program.steps[0].make_ref([1, 2, 3])
    assert ref_a == DataItemRef("beta", ("e9",)) and ref_a is ref_b


def test_enumerating_read_decided_statically():
    rule = parse_rule("P(60) -> [1] RR(beta(m))", name="r")
    program = compile_rule(rule)
    assert program.steps[0].enumerating
    assert program.steps[0].family == "beta"
    ground = parse_rule("N(alpha(n), b) -> [1] RR(beta(n))", name="r2")
    assert not compile_rule(ground).steps[0].enumerating


def test_slot_layout_is_deterministic():
    rule = parse_rule(
        "N(alpha(n), b) & (v == X) -> [1] WR(beta(n), v)", name="r"
    )
    program = compile_rule(rule)
    assert program.slot_names == ("n", "b", "v", "now")
    assert program.now_slot == 3


def test_uncompilable_rhs_kind_raises_compile_error():
    # An N emission is rejected by the compiler (the shell would reject it
    # with a SpecError at firing time on the reference path).
    rule = Rule(
        name="r",
        lhs=Template(
            EventKind.NOTIFY, ItemPattern("alpha", (Var("n"),)), (Var("b"),)
        ),
        delay=seconds(1),
        steps=(
            RhsStep(
                Template(
                    EventKind.NOTIFY,
                    ItemPattern("beta", (Var("n"),)),
                    (Var("b"),),
                )
            ),
        ),
    )
    with pytest.raises(CompileError):
        compile_rule(rule)
