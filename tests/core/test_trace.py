"""Unit tests for execution traces, timelines, and the validator."""

import pytest

from repro.core.dsl import parse_rule
from repro.core.errors import TraceError
from repro.core.events import (
    EventKind,
    notify_desc,
    spontaneous_write_desc,
    write_desc,
    write_request_desc,
)
from repro.core.items import MISSING, DataItemRef, item
from repro.core.templates import template
from repro.core.terms import pattern
from repro.core.trace import ExecutionTrace, Timeline, validate_trace
from repro.core.timebase import seconds


X = item("X")
Y = item("Y")


class TestRecording:
    def test_write_updates_interpretations(self, trace):
        event = trace.record(10, "a", write_desc(X, 5))
        assert event.old.specifies(X) is False
        assert event.new[X] == 5

    def test_chaining(self, trace):
        first = trace.record(10, "a", write_desc(X, 5))
        second = trace.record(20, "a", write_desc(X, 6))
        assert second.old == first.new

    def test_non_write_preserves_state(self, trace):
        trace.record(10, "a", write_desc(X, 5))
        event = trace.record(20, "a", notify_desc(X, 5))
        assert event.new == event.old

    def test_out_of_order_recording_rejected(self, trace):
        trace.record(10, "a", write_desc(X, 5))
        with pytest.raises(TraceError):
            trace.record(5, "a", write_desc(X, 6))

    def test_seed_before_events_only(self, trace):
        trace.record(10, "a", write_desc(X, 5))
        with pytest.raises(TraceError):
            trace.seed(Y, 1)

    def test_current_value(self, trace):
        assert trace.current_value(X) is MISSING
        trace.record(10, "a", write_desc(X, 5))
        assert trace.current_value(X) == 5


class TestTimelines:
    def test_seeded_initial_value(self, trace):
        trace.seed(X, 7)
        trace.close(100)
        assert trace.value_at(X, 0) == 7
        assert trace.value_at(X, 99) == 7

    def test_value_before_any_write_is_missing(self, trace):
        trace.record(50, "a", write_desc(X, 1))
        assert trace.value_at(X, 49) is MISSING
        assert trace.value_at(X, 50) == 1

    def test_segments_are_maximal(self, trace):
        trace.record(10, "a", write_desc(X, 1))
        trace.record(20, "a", write_desc(X, 1))  # no-op value
        trace.record(30, "a", write_desc(X, 2))
        trace.close(100)
        segments = list(trace.timeline(X).segments())
        values = [s.value for s in segments]
        assert values == [MISSING, 1, 2]
        assert segments[1].start == 10 and segments[1].end == 30

    def test_distinct_values_in_order(self, trace):
        for time, value in [(10, "a"), (20, "b"), (30, "a")]:
            trace.record(time, "s", write_desc(X, value))
        assert trace.timeline(X).distinct_values() == [MISSING, "a", "b"]

    def test_timeline_cache_invalidates_on_append(self, trace):
        trace.record(10, "a", write_desc(X, 1))
        assert trace.value_at(X, 15) == 1
        trace.record(20, "a", write_desc(X, 2))
        assert trace.value_at(X, 25) == 2

    def test_refs_of_family(self, trace):
        trace.record(10, "a", write_desc(item("s", "e1"), 1))
        trace.record(20, "a", write_desc(item("s", "e2"), 1))
        trace.record(30, "a", write_desc(item("t", "e3"), 1))
        assert trace.refs_of_family("s") == [item("s", "e1"), item("s", "e2")]


class TestValidator:
    def _propagation_events(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        ws = trace.record(seconds(1), "a", spontaneous_write_desc(X, MISSING, 5))
        iface = parse_rule("Ws(X, b) -> [2] N(X, b)", name="iface")
        n = trace.record(seconds(2), "a", notify_desc(X, 5), rule=iface, trigger=ws)
        wr = trace.record(
            seconds(3), "b", write_request_desc(Y, 5), rule=rule, trigger=n
        )
        return rule, iface, wr

    def test_clean_generated_chain_validates(self, trace):
        rule, iface, wr = self._propagation_events(trace)
        trace.close(seconds(60))
        assert validate_trace(trace, [rule]) == []

    def test_prohibited_event_flagged(self, trace):
        prohibition = parse_rule("Ws(X, b) -> [0] FALSE", name="nospont")
        trace.record(seconds(1), "a", spontaneous_write_desc(X, MISSING, 5))
        trace.close(seconds(10))
        violations = validate_trace(trace, [prohibition])
        assert [v.property_number for v in violations] == [6]

    def test_missing_obligation_flagged(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        trace.record(seconds(1), "a", notify_desc(X, 5))
        trace.close(seconds(60))  # deadline passed, no WR recorded
        violations = validate_trace(trace, [rule])
        assert any(v.property_number == 6 for v in violations)

    def test_obligation_not_yet_due_is_not_flagged(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        trace.record(seconds(1), "a", notify_desc(X, 5))
        trace.close(seconds(2))  # horizon before the deadline
        assert validate_trace(trace, [rule]) == []

    def test_late_generated_event_flagged(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        n = trace.record(seconds(1), "a", notify_desc(X, 5))
        trace.record(
            seconds(20), "b", write_request_desc(Y, 5), rule=rule, trigger=n
        )
        trace.close(seconds(30))
        assert any(
            v.property_number == 5 for v in validate_trace(trace, [rule])
        )

    def test_spontaneous_with_provenance_flagged(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        n = trace.record(seconds(1), "a", notify_desc(X, 5))
        trace.record(
            seconds(2),
            "a",
            spontaneous_write_desc(X, 5, 6),
            rule=rule,
            trigger=n,
        )
        trace.close(seconds(10))
        assert any(
            v.property_number == 4 for v in validate_trace(trace, [])
        )

    def test_out_of_order_related_rules_flagged(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        n1 = trace.record(seconds(1), "a", notify_desc(X, 1))
        n2 = trace.record(seconds(2), "a", notify_desc(X, 2))
        # The later trigger's effect lands first: property 7 violation.
        trace.record(
            seconds(3), "b", write_request_desc(Y, 2), rule=rule, trigger=n2
        )
        trace.record(
            seconds(4), "b", write_request_desc(Y, 1), rule=rule, trigger=n1
        )
        trace.close(seconds(10))
        assert any(
            v.property_number == 7 for v in validate_trace(trace, [])
        )
