"""Unit tests for execution traces, timelines, and the validator."""

import pytest

from repro.core.dsl import parse_rule
from repro.core.errors import TraceError
from repro.core.events import (
    EventKind,
    notify_desc,
    spontaneous_write_desc,
    write_desc,
    write_request_desc,
)
from repro.core.items import MISSING, DataItemRef, item
from repro.core.templates import template
from repro.core.terms import pattern
from repro.core.trace import ExecutionTrace, Timeline, validate_trace
from repro.core.timebase import seconds


X = item("X")
Y = item("Y")


class TestRecording:
    def test_write_updates_interpretations(self, trace):
        event = trace.record(10, "a", write_desc(X, 5))
        assert event.old.specifies(X) is False
        assert event.new[X] == 5

    def test_chaining(self, trace):
        first = trace.record(10, "a", write_desc(X, 5))
        second = trace.record(20, "a", write_desc(X, 6))
        assert second.old == first.new

    def test_non_write_preserves_state(self, trace):
        trace.record(10, "a", write_desc(X, 5))
        event = trace.record(20, "a", notify_desc(X, 5))
        assert event.new == event.old

    def test_out_of_order_recording_rejected(self, trace):
        trace.record(10, "a", write_desc(X, 5))
        with pytest.raises(TraceError):
            trace.record(5, "a", write_desc(X, 6))

    def test_seed_before_events_only(self, trace):
        trace.record(10, "a", write_desc(X, 5))
        with pytest.raises(TraceError):
            trace.seed(Y, 1)

    def test_current_value(self, trace):
        assert trace.current_value(X) is MISSING
        trace.record(10, "a", write_desc(X, 5))
        assert trace.current_value(X) == 5


class TestTimelines:
    def test_seeded_initial_value(self, trace):
        trace.seed(X, 7)
        trace.close(100)
        assert trace.value_at(X, 0) == 7
        assert trace.value_at(X, 99) == 7

    def test_value_before_any_write_is_missing(self, trace):
        trace.record(50, "a", write_desc(X, 1))
        assert trace.value_at(X, 49) is MISSING
        assert trace.value_at(X, 50) == 1

    def test_segments_are_maximal(self, trace):
        trace.record(10, "a", write_desc(X, 1))
        trace.record(20, "a", write_desc(X, 1))  # no-op value
        trace.record(30, "a", write_desc(X, 2))
        trace.close(100)
        segments = list(trace.timeline(X).segments())
        values = [s.value for s in segments]
        assert values == [MISSING, 1, 2]
        assert segments[1].start == 10 and segments[1].end == 30

    def test_distinct_values_in_order(self, trace):
        for time, value in [(10, "a"), (20, "b"), (30, "a")]:
            trace.record(time, "s", write_desc(X, value))
        assert trace.timeline(X).distinct_values() == [MISSING, "a", "b"]

    def test_timeline_cache_invalidates_on_append(self, trace):
        trace.record(10, "a", write_desc(X, 1))
        assert trace.value_at(X, 15) == 1
        trace.record(20, "a", write_desc(X, 2))
        assert trace.value_at(X, 25) == 2

    def test_refs_of_family(self, trace):
        trace.record(10, "a", write_desc(item("s", "e1"), 1))
        trace.record(20, "a", write_desc(item("s", "e2"), 1))
        trace.record(30, "a", write_desc(item("t", "e3"), 1))
        assert trace.refs_of_family("s") == [item("s", "e1"), item("s", "e2")]


class TestValidator:
    def _propagation_events(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        ws = trace.record(seconds(1), "a", spontaneous_write_desc(X, MISSING, 5))
        iface = parse_rule("Ws(X, b) -> [2] N(X, b)", name="iface")
        n = trace.record(seconds(2), "a", notify_desc(X, 5), rule=iface, trigger=ws)
        wr = trace.record(
            seconds(3), "b", write_request_desc(Y, 5), rule=rule, trigger=n
        )
        return rule, iface, wr

    def test_clean_generated_chain_validates(self, trace):
        rule, iface, wr = self._propagation_events(trace)
        trace.close(seconds(60))
        assert validate_trace(trace, [rule]) == []

    def test_prohibited_event_flagged(self, trace):
        prohibition = parse_rule("Ws(X, b) -> [0] FALSE", name="nospont")
        trace.record(seconds(1), "a", spontaneous_write_desc(X, MISSING, 5))
        trace.close(seconds(10))
        violations = validate_trace(trace, [prohibition])
        assert [v.property_number for v in violations] == [6]

    def test_missing_obligation_flagged(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        trace.record(seconds(1), "a", notify_desc(X, 5))
        trace.close(seconds(60))  # deadline passed, no WR recorded
        violations = validate_trace(trace, [rule])
        assert any(v.property_number == 6 for v in violations)

    def test_obligation_not_yet_due_is_not_flagged(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        trace.record(seconds(1), "a", notify_desc(X, 5))
        trace.close(seconds(2))  # horizon before the deadline
        assert validate_trace(trace, [rule]) == []

    def test_late_generated_event_flagged(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        n = trace.record(seconds(1), "a", notify_desc(X, 5))
        trace.record(
            seconds(20), "b", write_request_desc(Y, 5), rule=rule, trigger=n
        )
        trace.close(seconds(30))
        assert any(
            v.property_number == 5 for v in validate_trace(trace, [rule])
        )

    def test_spontaneous_with_provenance_flagged(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        n = trace.record(seconds(1), "a", notify_desc(X, 5))
        trace.record(
            seconds(2),
            "a",
            spontaneous_write_desc(X, 5, 6),
            rule=rule,
            trigger=n,
        )
        trace.close(seconds(10))
        assert any(
            v.property_number == 4 for v in validate_trace(trace, [])
        )

    def test_out_of_order_related_rules_flagged(self, trace):
        rule = parse_rule("N(X, b) -> [5] WR(Y, b)", name="prop")
        n1 = trace.record(seconds(1), "a", notify_desc(X, 1))
        n2 = trace.record(seconds(2), "a", notify_desc(X, 2))
        # The later trigger's effect lands first: property 7 violation.
        trace.record(
            seconds(3), "b", write_request_desc(Y, 2), rule=rule, trigger=n2
        )
        trace.record(
            seconds(4), "b", write_request_desc(Y, 1), rule=rule, trigger=n1
        )
        trace.close(seconds(10))
        assert any(
            v.property_number == 7 for v in validate_trace(trace, [])
        )


class TestTimelineEdgeCases:
    def test_same_instant_overwrite_recreates_adjacent_duplicate(self):
        # Last-wins at t=20 turns (20, "b") into (20, "a"), re-creating an
        # adjacent duplicate of the (10, "a") entry, which must then
        # collapse away entirely (the two-pass collapse).
        timeline = Timeline([(10, "a"), (20, "b"), (20, "a")], horizon=100)
        assert timeline.change_points() == [(0, MISSING), (10, "a")]
        assert timeline.value_at(25) == "a"

    def test_same_instant_overwrite_in_recorded_trace(self, trace):
        trace.record(10, "a", write_desc(X, "a"))
        trace.record(20, "a", write_desc(X, "b"))
        trace.record(20, "a", write_desc(X, "a"))
        trace.close(100)
        assert trace.timeline(X).change_points() == [(0, MISSING), (10, "a")]

    def test_handed_out_timeline_frozen_under_tail_collapse(self, trace):
        trace.record(10, "a", write_desc(X, "a"))
        trace.record(20, "a", write_desc(X, "b"))
        trace.close(30)
        before = trace.timeline(X)
        points = before.change_points()
        # A same-instant overwrite back to "a" pops the (20, "b") entry from
        # the incremental builder — the already handed-out view must not
        # change retroactively (copy-on-write).
        trace.record(20, "a", write_desc(X, "a"))
        after = trace.timeline(X)
        assert before.change_points() == points
        assert before.value_at(25) == "b"
        assert after.change_points() == [(0, MISSING), (10, "a")]
        assert after.value_at(25) == "a"

    def test_close_extends_horizon_of_later_timelines_only(self, trace):
        trace.record(10, "a", write_desc(X, 1))
        early = trace.timeline(X)
        assert early.horizon == 10
        trace.close(50)
        late = trace.timeline(X)
        assert late.horizon == 50
        assert list(late.segments())[-1].end == 50
        assert early.horizon == 10  # handed-out timelines stay frozen

    def test_close_never_shrinks_horizon(self, trace):
        trace.record(10, "a", write_desc(X, 1))
        trace.close(100)
        trace.close(40)
        assert trace.horizon == 100

    def test_value_at_before_time_zero(self, trace):
        trace.seed(X, 7)
        trace.record(10, "a", write_desc(X, 1))
        trace.close(20)
        timeline = trace.timeline(X)
        assert timeline.value_at(-1) is MISSING
        assert timeline.value_at(0) == 7
        assert Timeline([(0, 5)], horizon=10).value_at(-3) is MISSING


class TestEventsSnapshot:
    def test_events_is_a_read_only_tuple(self, trace):
        trace.record(10, "a", write_desc(X, 1))
        events = trace.events
        assert isinstance(events, tuple)
        assert not hasattr(events, "append")

    def test_snapshot_is_stable_while_trace_grows(self, trace):
        trace.record(10, "a", write_desc(X, 1))
        snapshot = trace.events
        trace.record(20, "a", write_desc(X, 2))
        assert len(snapshot) == 1
        assert len(trace.events) == 2
        assert trace.events[:1] == snapshot


class TestIncrementalTimelineWork:
    def test_interleaved_timeline_calls_do_constant_work_per_write(self, trace):
        # The regression this guards: timeline() used to rebuild from every
        # write of the item, making record+query loops quadratic.  The probe
        # counter counts writes folded into timeline builders; N interleaved
        # calls after N writes must fold each write exactly once.
        n = 200
        for index in range(n):
            trace.record(10 * (index + 1), "a", write_desc(X, index))
            trace.timeline(X)
        assert trace.stats()["timeline_extend_steps"] == n

    def test_timeline_object_reused_when_nothing_changed(self, trace):
        trace.record(10, "a", write_desc(X, 1))
        first = trace.timeline(X)
        assert trace.timeline(X) is first
        assert trace.stats()["timeline_cache_hits"] == 1
        trace.record(20, "a", write_desc(X, 2))
        assert trace.timeline(X) is not first
