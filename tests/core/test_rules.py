"""Unit tests for rule objects and their validation."""

import pytest

from repro.core.conditions import Binary, ItemRead, Name
from repro.core.dsl import parse_rule
from repro.core.errors import SpecError
from repro.core.events import EventKind
from repro.core.items import Locations
from repro.core.rules import RhsStep, Rule, RuleRole
from repro.core.templates import FALSE_TEMPLATE, template
from repro.core.terms import ItemPattern, pattern
from repro.core.timebase import seconds


def propagation_rule() -> Rule:
    return parse_rule(
        "N(salary1(n), b) -> [5] WR(salary2(n), b)", name="prop"
    )


class TestValidation:
    def test_negative_delay_rejected(self):
        with pytest.raises(SpecError):
            Rule(
                name="bad",
                lhs=template(EventKind.NOTIFY, pattern("X"), "b"),
                delay=-1,
                steps=(RhsStep(template(EventKind.WRITE, pattern("Y"), "b")),),
            )

    def test_empty_rhs_rejected(self):
        with pytest.raises(SpecError):
            Rule(
                name="bad",
                lhs=template(EventKind.NOTIFY, pattern("X"), "b"),
                delay=0,
                steps=(),
            )

    def test_false_lhs_rejected(self):
        with pytest.raises(SpecError):
            parse_rule("FALSE -> [0] W(X, 1)")

    def test_unbound_rhs_variable_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            parse_rule("N(X, b) -> [1] WR(Y, c)")
        assert "c" in str(excinfo.value)

    def test_enumerating_read_request_allowed_unbound(self):
        rule = parse_rule("P(60) -> [1] RR(salary1(n))")
        assert rule.steps[0].template.kind is EventKind.READ_REQUEST

    def test_implicit_now_variable_allowed(self):
        rule = Rule(
            name="stamp",
            lhs=template(EventKind.NOTIFY, pattern("X"), "b"),
            delay=seconds(1),
            steps=(RhsStep(template(EventKind.WRITE, pattern("Tb"), "now")),),
        )
        assert "now" in rule.steps[0].template.variables()


class TestBinders:
    def test_periodic_notify_condition_binds_value(self):
        rule = parse_rule("P(300) & X == b -> [0.5] N(X, b)")
        assert [name for name, __ in rule.binders] == ["b"]

    def test_bound_lhs_variables_are_not_binders(self):
        rule = parse_rule("R(child(n), b) & b == MISSING -> [1] WR(parent(n), MISSING)")
        assert rule.binders == ()

    def test_uppercase_names_are_not_binders(self):
        rule = Rule(
            name="r",
            lhs=template(EventKind.NOTIFY, pattern("X"), "b"),
            condition=Binary("==", Name("Cx"), Name("b")),
            delay=0,
            steps=(RhsStep(template(EventKind.WRITE, pattern("Y"), "b")),),
        )
        assert rule.binders == ()


class TestProhibitions:
    def test_false_rhs_is_prohibition(self):
        rule = parse_rule("Ws(X, b) -> [0] FALSE")
        assert rule.is_prohibition

    def test_normal_rule_is_not(self):
        assert not propagation_rule().is_prohibition


class TestSiteResolution:
    def make_locations(self) -> Locations:
        locations = Locations()
        locations.register("salary1", "sf")
        locations.register("salary2", "ny")
        return locations

    def test_lhs_site_from_item_family(self):
        assert propagation_rule().resolve_lhs_site(self.make_locations()) == "sf"

    def test_rhs_site(self):
        assert propagation_rule().resolve_rhs_site(self.make_locations()) == "ny"

    def test_explicit_lhs_site_override(self):
        rule = parse_rule("P(60) -> [1] RR(salary1(n))")
        rule = Rule(
            name=rule.name,
            lhs=rule.lhs,
            delay=rule.delay,
            steps=rule.steps,
            lhs_site="sf",
        )
        assert rule.resolve_lhs_site(self.make_locations()) == "sf"

    def test_periodic_lhs_without_site_raises(self):
        rule = parse_rule("P(60) -> [1] RR(salary1(n))")
        with pytest.raises(SpecError):
            rule.resolve_lhs_site(self.make_locations())

    def test_multi_site_rhs_rejected(self):
        rule = parse_rule("N(salary1(n), b) -> [1] WR(salary2(n), b), WR(salary1(n), b)")
        with pytest.raises(SpecError):
            rule.resolve_rhs_site(self.make_locations())

    def test_prohibition_rhs_site_is_none(self):
        rule = parse_rule("Ws(salary1(n), b) -> [0] FALSE")
        assert rule.resolve_rhs_site(self.make_locations()) is None


class TestRendering:
    def test_str_roundtrips_shape(self):
        rule = propagation_rule()
        text = str(rule)
        assert "N(salary1(n), b)" in text
        assert "[5]" in text
        assert "WR(salary2(n), b)" in text
