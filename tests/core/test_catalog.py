"""Tests for the proven-combinations catalog (strategy suggestion)."""

import pytest

from repro.constraints import (
    CopyConstraint,
    InequalityConstraint,
    ReferentialConstraint,
)
from repro.core.catalog import SuggestionContext, suggest
from repro.core.interfaces import (
    InterfaceKind,
    InterfaceSet,
    conditional_notify_interface,
    no_spontaneous_write_interface,
    notify_interface,
    read_interface,
    update_window_interface,
    write_interface,
)
from repro.core.dsl import parse_condition
from repro.core.items import Locations
from repro.core.timebase import clock_time, seconds


def make_context(*specs, options=None) -> SuggestionContext:
    interfaces = InterfaceSet()
    for spec in specs:
        interfaces.add(spec)
    locations = Locations()
    for family, site in (
        ("X", "a"), ("Y", "b"), ("P", "a"), ("C", "b"),
    ):
        locations.register(family, site)
    return SuggestionContext(interfaces, locations, options or {})


def kinds(suggestions):
    return [s.strategy.kind for s in suggestions]


def guarantee_names(suggestion):
    return [g.name for g in suggestion.guarantees]


class TestCopySuggestions:
    def test_notify_plus_write_offers_propagation_with_all_guarantees(self):
        context = make_context(
            notify_interface("X", seconds(2)),
            write_interface("Y", seconds(2)),
            no_spontaneous_write_interface("Y"),
        )
        suggestions = suggest(CopyConstraint("X", "Y"), context)
        assert "propagation" in kinds(suggestions)
        prop = next(s for s in suggestions if s.strategy.kind == "propagation")
        names = guarantee_names(prop)
        assert any(n.startswith("follows(") and "κ" not in n for n in names)
        assert any(n.startswith("leads(") for n in names)
        assert any(n.startswith("strictly_follows(") for n in names)
        assert any("κ=" in n for n in names)

    def test_conditional_notify_drops_leads(self):
        context = make_context(
            conditional_notify_interface(
                "X", seconds(2), parse_condition("abs(b - a) > 10")
            ),
            write_interface("Y", seconds(2)),
            no_spontaneous_write_interface("Y"),
        )
        suggestions = suggest(CopyConstraint("X", "Y"), context)
        prop = next(s for s in suggestions if s.strategy.kind == "propagation")
        names = guarantee_names(prop)
        assert not any(n.startswith("leads(") for n in names)
        # Filtered updates can leave the copy stale for arbitrarily long, so
        # the metric follows bound must be withheld as well.
        assert not any("κ=" in n for n in names)
        assert any(n.startswith("follows(") for n in names)

    def test_spontaneously_writable_destination_drops_follows_family(self):
        context = make_context(
            notify_interface("X", seconds(2)),
            write_interface("Y", seconds(2)),
            # no no-spontaneous-write promise for Y
        )
        suggestions = suggest(CopyConstraint("X", "Y"), context)
        prop = next(s for s in suggestions if s.strategy.kind == "propagation")
        assert not any(
            n.startswith("follows(") for n in guarantee_names(prop)
        )

    def test_polling_never_offers_leads(self):
        context = make_context(
            read_interface("X", seconds(1)),
            write_interface("Y", seconds(2)),
            no_spontaneous_write_interface("Y"),
        )
        suggestions = suggest(CopyConstraint("X", "Y"), context)
        assert kinds(suggestions) == ["polling"]
        assert not any(
            n.startswith("leads(") for n in guarantee_names(suggestions[0])
        )

    def test_polling_kappa_includes_period(self):
        context = make_context(
            read_interface("X", seconds(1)),
            write_interface("Y", seconds(2)),
            no_spontaneous_write_interface("Y"),
            options={"polling_period": seconds(60), "rule_delay": seconds(1)},
        )
        suggestions = suggest(CopyConstraint("X", "Y"), context)
        metric = next(
            n for n in guarantee_names(suggestions[0]) if "κ=" in n
        )
        assert "66s" in metric  # 60 + 1 + 1 + 1 + 2 + 1 margin (two rule firings)

    def test_notify_only_both_sides_offers_monitor(self):
        context = make_context(
            notify_interface("X", seconds(1)),
            notify_interface("Y", seconds(1)),
        )
        suggestions = suggest(CopyConstraint("X", "Y"), context)
        assert kinds(suggestions) == ["monitor"]

    def test_update_window_offers_eod_batch(self):
        context = make_context(
            read_interface("X", seconds(1)),
            update_window_interface("X", clock_time(17), clock_time(8)),
            write_interface("Y", seconds(2)),
            no_spontaneous_write_interface("Y"),
        )
        suggestions = suggest(CopyConstraint("X", "Y"), context)
        assert "eod-batch" in kinds(suggestions)

    def test_nothing_applicable_returns_empty(self):
        context = make_context(read_interface("X", seconds(1)))
        assert suggest(CopyConstraint("X", "Y"), context) == []


class TestOtherConstraints:
    def test_inequality_offers_demarcation(self):
        context = make_context(
            read_interface("X", seconds(1)),
            write_interface("X", seconds(1)),
            read_interface("Y", seconds(1)),
            write_interface("Y", seconds(1)),
        )
        suggestions = suggest(InequalityConstraint("X", "Y"), context)
        assert kinds(suggestions) == ["demarcation"]
        assert len(suggestions[0].guarantees) == 2  # value + limit invariants

    def test_referential_offers_cleanup_when_parent_writable(self):
        context = make_context(
            read_interface("P", seconds(1)),
            write_interface("P", seconds(1)),
            read_interface("C", seconds(1)),
        )
        suggestions = suggest(ReferentialConstraint("P", "C"), context)
        assert kinds(suggestions) == ["eod-cleanup"]

    def test_referential_unenforceable_without_parent_write(self):
        context = make_context(
            read_interface("P", seconds(1)),
            read_interface("C", seconds(1)),
        )
        assert suggest(ReferentialConstraint("P", "C"), context) == []
