"""Unit tests for events and descriptors."""

import pytest

from repro.core.events import (
    Event,
    EventDesc,
    EventKind,
    notify_desc,
    periodic_desc,
    read_request_desc,
    read_response_desc,
    spontaneous_write_desc,
    write_desc,
    write_request_desc,
)
from repro.core.interpretations import EMPTY_INTERPRETATION, Interpretation
from repro.core.items import item


class TestDescriptors:
    def test_write_desc(self):
        desc = write_desc(item("X"), 5)
        assert desc.kind is EventKind.WRITE
        assert str(desc) == "W(X, 5)"

    def test_spontaneous_write_carries_old_and_new(self):
        desc = spontaneous_write_desc(item("X"), 1, 2)
        assert desc.values == (1, 2)

    def test_read_request_has_no_values(self):
        assert read_request_desc(item("X")).values == ()

    def test_periodic_takes_no_item(self):
        desc = periodic_desc(300)
        assert desc.item is None and desc.values == (300,)

    def test_item_kind_requires_item(self):
        with pytest.raises(ValueError):
            EventDesc(EventKind.NOTIFY, None, (1,))

    def test_periodic_rejects_item(self):
        with pytest.raises(ValueError):
            EventDesc(EventKind.PERIODIC, item("X"), (1,))

    def test_wrong_value_arity_rejected(self):
        with pytest.raises(ValueError):
            EventDesc(EventKind.WRITE, item("X"), (1, 2))


class TestEvent:
    def _event(self, desc, **kwargs):
        return Event(
            time=10,
            site="a",
            desc=desc,
            old=EMPTY_INTERPRETATION,
            new=EMPTY_INTERPRETATION,
            **kwargs,
        )

    def test_sequence_numbers_increase(self):
        first = self._event(notify_desc(item("X"), 1))
        second = self._event(notify_desc(item("X"), 2))
        assert second.seq > first.seq

    def test_spontaneous_when_no_rule(self):
        event = self._event(spontaneous_write_desc(item("X"), 0, 1))
        assert event.is_spontaneous

    def test_written_value_for_both_write_kinds(self):
        w = self._event(write_desc(item("X"), 7))
        ws = self._event(spontaneous_write_desc(item("X"), 1, 9))
        assert w.written_value == 7
        assert ws.written_value == 9

    def test_written_value_rejects_non_writes(self):
        event = self._event(read_response_desc(item("X"), 7))
        with pytest.raises(ValueError):
            __ = event.written_value

    def test_str_mentions_site_and_descriptor(self):
        event = self._event(write_request_desc(item("X"), 3))
        assert "@a" in str(event) and "WR(X, 3)" in str(event)
