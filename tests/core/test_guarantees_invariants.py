"""Tests for invariant, periodic, and periodic-copy guarantees."""

from repro.core.guarantees import invariant, periodic
from repro.core.guarantees.invariants import PeriodicCopyGuarantee
from repro.core.items import DataItemRef
from repro.core.timebase import DAY, clock_time, hours, seconds

from conftest import make_timeline_trace

X = DataItemRef("X")
Y = DataItemRef("Y")


def leq(state):
    return state[X] <= state[Y]


class TestInvariant:
    def test_holds_throughout(self):
        trace = make_timeline_trace(
            {
                "X": [(0, 1), (seconds(10), 5)],
                "Y": [(0, 10), (seconds(20), 6)],
            },
            horizon=seconds(60),
        )
        assert invariant("x<=y", [X, Y], leq).check(trace).valid

    def test_transient_violation_detected(self):
        trace = make_timeline_trace(
            {
                "X": [(0, 1), (seconds(10), 20), (seconds(30), 2)],
                "Y": [(0, 10)],
            },
            horizon=seconds(60),
        )
        report = invariant("x<=y", [X, Y], leq).check(trace)
        assert not report.valid
        # The violation lasted exactly [10s, 30s).
        assert report.stats["violation_time_seconds"] == 20.0

    def test_violation_at_final_segment(self):
        trace = make_timeline_trace(
            {"X": [(0, 1), (seconds(50), 99)], "Y": [(0, 10)]},
            horizon=seconds(60),
        )
        report = invariant("x<=y", [X, Y], leq).check(trace)
        assert not report.valid
        assert report.stats["violation_time_seconds"] == 10.0


class TestPeriodic:
    def window(self):
        return clock_time(17), clock_time(8)  # wraps midnight

    def test_windows_wrap_midnight(self):
        start, end = self.window()
        guarantee = periodic("w", [X, Y], leq, start, end)
        windows = guarantee.windows(2 * DAY)
        assert windows[0].start == clock_time(17)
        assert windows[0].end == DAY + clock_time(8)

    def test_daytime_violation_is_ignored(self):
        start, end = self.window()
        trace = make_timeline_trace(
            {
                # X spikes above Y at noon, recovers by 16:00.
                "X": [(0, 1), (hours(12), 50), (hours(16), 1)],
                "Y": [(0, 10)],
            },
            horizon=DAY,
        )
        assert periodic("w", [X, Y], leq, start, end).check(trace).valid

    def test_window_violation_detected(self):
        start, end = self.window()
        trace = make_timeline_trace(
            {
                "X": [(0, 1), (hours(20), 50)],  # violates inside window
                "Y": [(0, 10)],
            },
            horizon=DAY,
        )
        report = periodic("w", [X, Y], leq, start, end).check(trace)
        assert not report.valid
        assert report.stats["windows_violated"] == 1


class TestPeriodicCopy:
    def test_pairs_and_checks_each_instance(self):
        from repro.core.events import spontaneous_write_desc
        from repro.core.trace import ExecutionTrace

        trace = ExecutionTrace()
        for key in ("a1", "a2"):
            trace.seed(DataItemRef("src", (key,)), 100)
            trace.seed(DataItemRef("dst", (key,)), 100)
        # A business-hours divergence on a1, fixed by 17:00.
        trace.record(
            hours(10),
            "s",
            spontaneous_write_desc(DataItemRef("src", ("a1",)), 100, 150),
        )
        trace.record(
            hours(17),
            "s",
            spontaneous_write_desc(DataItemRef("dst", ("a1",)), 100, 150),
        )
        trace.close(DAY)
        guarantee = PeriodicCopyGuarantee(
            "src", "dst", clock_time(17, 15), clock_time(8)
        )
        report = guarantee.check(trace)
        assert report.valid
        assert report.checked_instances == 2  # one window x two accounts

    def test_window_divergence_fails(self):
        from repro.core.events import spontaneous_write_desc
        from repro.core.trace import ExecutionTrace

        trace = ExecutionTrace()
        trace.seed(DataItemRef("src", ("a1",)), 100)
        trace.seed(DataItemRef("dst", ("a1",)), 100)
        trace.record(
            hours(20),  # inside the guaranteed window!
            "s",
            spontaneous_write_desc(DataItemRef("src", ("a1",)), 100, 150),
        )
        trace.close(DAY)
        guarantee = PeriodicCopyGuarantee(
            "src", "dst", clock_time(17, 15), clock_time(8)
        )
        assert not guarantee.check(trace).valid
