"""Copy-on-write interpretations: journal views vs the dict-backed form.

The contract under test: a :class:`VersionedInterpretation` pinned to a
journal version is observationally identical to a plain dict-backed
:class:`Interpretation` holding the same mapping — item access, iteration,
equality, hashing, ``updated``/``restricted`` — while old views stay frozen
as the journal moves on (snapshot isolation).
"""

import pytest

from repro.core.interpretations import (
    EMPTY_INTERPRETATION,
    Interpretation,
    StateJournal,
    VersionedInterpretation,
    write_delta,
)
from repro.core.items import MISSING, DataItemRef, item

X = DataItemRef("X")
Y = DataItemRef("Y")
Z = DataItemRef("Z")


def _dict_of(view: Interpretation) -> dict:
    return {ref: view[ref] for ref in view}


class TestJournalViews:
    def test_view_matches_dict_backed_equivalent(self):
        journal = StateJournal()
        journal.seed(X, 1)
        journal.write(Y, "a")
        journal.write(X, 2)
        view = journal.view()
        plain = Interpretation({X: 2, Y: "a"})
        assert view == plain
        assert plain == view
        assert dict(view) == dict(plain)
        assert len(view) == 2
        assert view[X] == 2 and view[Y] == "a"
        assert X in view and Z not in view
        assert view.specifies(Y) and not view.specifies(Z)
        assert hash(view) == hash(plain)

    def test_snapshot_isolation_old_views_stay_frozen(self):
        journal = StateJournal()
        journal.seed(X, 1)
        v0 = journal.view()
        journal.write(X, 2)
        v1 = journal.view()
        journal.write(Y, 3)
        journal.write(X, 4)
        assert v0[X] == 1 and not v0.specifies(Y)
        assert v1[X] == 2 and not v1.specifies(Y)
        assert journal.view()[X] == 4 and journal.view()[Y] == 3
        assert _dict_of(v0) == {X: 1}
        assert _dict_of(v1) == {X: 2}

    def test_current_view_interned_until_next_write(self):
        journal = StateJournal()
        journal.write(X, 1)
        first = journal.view()
        assert journal.view() is first
        journal.write(X, 2)
        assert journal.view() is not first

    def test_missing_vs_unspecified(self):
        journal = StateJournal()
        journal.seed(X, MISSING)
        view = journal.view()
        assert view.specifies(X) and not view.exists(X)
        assert not view.specifies(Y) and not view.exists(Y)
        assert view[X] is MISSING
        with pytest.raises(KeyError):
            view[Y]

    def test_seed_after_write_rejected(self):
        journal = StateJournal()
        journal.write(X, 1)
        with pytest.raises(ValueError):
            journal.seed(Y, 2)

    def test_same_journal_equality_sees_through_noop_writes(self):
        journal = StateJournal()
        journal.write(X, 1)
        early = journal.view()
        journal.write(X, 1)  # no-op: new version, same state
        late = journal.view()
        assert early is not late
        assert early == late
        journal.write(X, 2)
        assert early != journal.view()

    def test_updated_and_restricted_match_dict_backed(self):
        journal = StateJournal()
        journal.write(X, 1)
        journal.write(Y, 2)
        view = journal.view()
        assert view.updated(X, 9) == Interpretation({X: 9, Y: 2})
        assert view.updated(Z, 0) == Interpretation({X: 1, Y: 2, Z: 0})
        assert view.restricted({X}) == Interpretation({X: 1})
        # the originals are untouched (interpretations are immutable)
        assert view == Interpretation({X: 1, Y: 2})

    def test_versioned_view_usable_as_dict_key(self):
        journal = StateJournal()
        journal.write(X, 1)
        view = journal.view()
        table = {view: "hit"}
        assert table[Interpretation({X: 1})] == "hit"

    def test_parameterized_refs(self):
        journal = StateJournal()
        a, b = item("phone", "p1"), item("phone", "p2")
        journal.write(a, "555")
        journal.write(b, "666")
        view = journal.view()
        assert view[a] == "555" and view[b] == "666"
        assert set(view) == {a, b}


class TestWriteDelta:
    def test_delta_between_views_is_the_log_slice(self):
        journal = StateJournal()
        journal.seed(X, 0)
        old = journal.view()
        journal.write(X, 1)
        new = journal.view()
        assert write_delta(old, new) == [(X, 1)]
        journal.write(Y, 2)
        assert write_delta(old, journal.view()) == [(X, 1), (Y, 2)]
        assert write_delta(old, old) == []

    def test_unrelated_interpretations_give_none(self):
        journal = StateJournal()
        journal.write(X, 1)
        view = journal.view()
        other_journal = StateJournal()
        other_journal.write(X, 1)
        assert write_delta(view, Interpretation({X: 1})) is None
        assert write_delta(Interpretation({X: 1}), view) is None
        assert write_delta(view, other_journal.view()) is None

    def test_reversed_versions_give_none(self):
        journal = StateJournal()
        journal.write(X, 1)
        old = journal.view()
        journal.write(X, 2)
        new = journal.view()
        assert write_delta(new, old) is None


class TestMaterializationAccounting:
    def test_item_access_never_materializes(self):
        journal = StateJournal()
        for index in range(50):
            journal.write(item("f", str(index)), index)
        view = journal.view()
        ref = item("f", "7")
        assert view[ref] == 7
        assert view.specifies(ref) and view.exists(ref)
        assert len(view) == 50
        assert journal.materializations == 0

    def test_foreign_comparison_materializes_once(self):
        journal = StateJournal()
        journal.write(X, 1)
        view = journal.view()
        plain = Interpretation({X: 1})
        assert view == plain
        assert view == plain
        assert journal.materializations == 1  # cached after the first

    def test_empty_interpretation_comparisons(self):
        journal = StateJournal()
        assert journal.view() == EMPTY_INTERPRETATION
        journal.write(X, 1)
        assert journal.view() != EMPTY_INTERPRETATION


class TestVersionedViewType:
    def test_view_is_an_interpretation(self):
        journal = StateJournal()
        journal.write(X, 1)
        assert isinstance(journal.view(), Interpretation)
        assert isinstance(journal.view(), VersionedInterpretation)

    def test_pinned_version_views(self):
        journal = StateJournal()
        journal.write(X, 1)
        journal.write(X, 2)
        assert journal.view(1)[X] == 1
        assert journal.view(2)[X] == 2
        assert journal.view(0) == EMPTY_INTERPRETATION
