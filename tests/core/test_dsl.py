"""Unit tests for the rule DSL parser."""

import pytest

from repro.core.conditions import Binary, Call, ItemRead, Literal, Name
from repro.core.dsl import (
    parse_condition,
    parse_event_template,
    parse_rule,
    parse_rules,
    tokenize,
)
from repro.core.errors import DslSyntaxError
from repro.core.events import EventKind
from repro.core.items import MISSING
from repro.core.terms import WILDCARD, Const, Var
from repro.core.timebase import seconds


class TestTokenizer:
    def test_positions_reported(self):
        tokens = tokenize("N(X, b)\nWR(Y, b)")
        wr = next(t for t in tokens if t.text == "WR")
        assert wr.line == 2 and wr.column == 1

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            tokenize("N(X, b) @ 5")
        assert excinfo.value.column == 9

    def test_comments_are_skipped(self):
        tokens = tokenize("# hello\nN(X, b)")
        assert tokens[0].kind in ("newline", "ident")


class TestEventTemplates:
    def test_all_kinds_parse(self):
        cases = {
            "W(X, b)": EventKind.WRITE,
            "Ws(X, b)": EventKind.SPONTANEOUS_WRITE,
            "WR(X, b)": EventKind.WRITE_REQUEST,
            "RR(X)": EventKind.READ_REQUEST,
            "R(X, b)": EventKind.READ_RESPONSE,
            "N(X, b)": EventKind.NOTIFY,
            "P(300)": EventKind.PERIODIC,
        }
        for text, kind in cases.items():
            assert parse_event_template(text).kind is kind

    def test_periodic_period_converted_to_ticks(self):
        tmpl = parse_event_template("P(300)")
        assert tmpl.values[0] == Const(seconds(300))

    def test_parameterized_item(self):
        tmpl = parse_event_template("N(salary1(n), b)")
        assert tmpl.item.args == (Var("n"),)

    def test_wildcard_value(self):
        tmpl = parse_event_template("W(X, *)")
        assert tmpl.values[0] is WILDCARD

    def test_literal_values(self):
        tmpl = parse_event_template("W(X, 5)")
        assert tmpl.values[0] == Const(5)
        tmpl = parse_event_template("W(X, 'abc')")
        assert tmpl.values[0] == Const("abc")
        tmpl = parse_event_template("W(X, MISSING)")
        assert tmpl.values[0] == Const(MISSING)
        tmpl = parse_event_template("W(X, -2)")
        assert tmpl.values[0] == Const(-2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_event_template("Q(X, b)")


class TestConditions:
    def test_precedence(self):
        expr = parse_condition("a + b * 2 > 4 and not c == 1")
        assert isinstance(expr, Binary) and expr.op == "and"

    def test_paper_conditional_notify(self):
        expr = parse_condition("abs(b - a) > a * 0.1")
        assert isinstance(expr, Binary) and expr.op == ">"
        assert isinstance(expr.left, Call)

    def test_item_read_with_args(self):
        expr = parse_condition("cache(n) != b")
        assert isinstance(expr.left, ItemRead)

    def test_exists_call(self):
        expr = parse_condition("exists(project(i))")
        assert isinstance(expr, Call) and expr.func == "exists"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_condition("a > 1 b")


class TestRules:
    def test_delay_is_seconds(self):
        rule = parse_rule("N(X, b) -> [2.5] WR(Y, b)")
        assert rule.delay == seconds(2.5)

    def test_lhs_condition(self):
        rule = parse_rule("Ws(X, a, b) & abs(b - a) > 10 -> [1] N(X, b)")
        assert isinstance(rule.condition, Binary)

    def test_conditional_steps_in_sequence(self):
        rule = parse_rule("N(X, b) -> [5] (Cx != b) ? WR(Y, b), W(Cx, b)")
        assert len(rule.steps) == 2
        assert isinstance(rule.steps[0].condition, Binary)
        assert rule.steps[1].condition is not None

    def test_false_rhs(self):
        rule = parse_rule("Ws(X, b) -> [0] FALSE")
        assert rule.is_prohibition

    def test_document_with_named_rules(self):
        rules = parse_rules(
            """
            # the Section 4.2.3 polling strategy
            rule poll:
                P(60) -> [1] RR(X)
            rule forward:
                R(X, b) -> [5] WR(Y, b)
            """
        )
        assert [r.name for r in rules] == ["poll", "forward"]

    def test_document_with_anonymous_rules(self):
        rules = parse_rules("N(X, b) -> [1] WR(Y, b)\nN(Y, b) -> [1] WR(Z, b)")
        assert len(rules) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_rule("N(X, b) -> [1] WR(Y, b) extra")

    def test_missing_delay_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_rule("N(X, b) -> WR(Y, b)")
