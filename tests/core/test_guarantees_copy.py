"""Unit and property tests for the copy-constraint guarantee checkers.

Uses hand-constructed timelines (via the conftest helper) so each boundary
convention of Section 3.3.1's guarantees is pinned exactly, plus a
hypothesis model test: a simulated perfect propagation must always satisfy
follows/leads/strictly-follows, and value corruption must break follows.
"""

from hypothesis import given, settings, strategies as st

from repro.core.guarantees import follows, leads, strictly_follows
from repro.core.timebase import seconds

from conftest import make_timeline_trace

S = seconds  # brevity: S(3) = 3 virtual seconds in ticks


class TestFollows:
    def test_valid_propagation(self):
        trace = make_timeline_trace(
            {
                "X": [(S(1), "a"), (S(10), "b")],
                "Y": [(S(2), "a"), (S(11), "b")],
            },
            horizon=S(20),
        )
        assert follows("X", "Y").check(trace).valid

    def test_y_invents_value(self):
        trace = make_timeline_trace(
            {"X": [(S(1), "a")], "Y": [(S(2), "zz")]}, horizon=S(10)
        )
        report = follows("X", "Y").check(trace)
        assert not report.valid
        assert "zz" in report.counterexamples[0]

    def test_y_takes_value_before_x(self):
        trace = make_timeline_trace(
            {"X": [(S(5), "a")], "Y": [(S(2), "a")]}, horizon=S(10)
        )
        assert not follows("X", "Y").check(trace).valid

    def test_seeded_agreement_is_allowed(self):
        trace = make_timeline_trace(
            {"X": [(0, "init")], "Y": [(0, "init")]}, horizon=S(10)
        )
        assert follows("X", "Y").check(trace).valid

    def test_simultaneous_acquisition_violates_strictness(self):
        trace = make_timeline_trace(
            {"X": [(S(3), "a")], "Y": [(S(3), "a")]}, horizon=S(10)
        )
        assert not follows("X", "Y").check(trace).valid

    def test_parameterized_families_pair_by_args(self):
        from repro.core.events import spontaneous_write_desc
        from repro.core.items import MISSING, DataItemRef
        from repro.core.trace import ExecutionTrace

        trace = ExecutionTrace()
        trace.record(
            S(1), "a",
            spontaneous_write_desc(DataItemRef("X", ("k1",)), MISSING, 5),
        )
        trace.record(
            S(2), "b",
            spontaneous_write_desc(DataItemRef("Y", ("k1",)), MISSING, 5),
        )
        trace.record(
            S(3), "b",
            spontaneous_write_desc(DataItemRef("Y", ("k2",)), MISSING, 9),
        )
        trace.close(S(10))
        report = follows("X", "Y").check(trace)
        assert report.checked_instances == 2
        assert not report.valid  # Y(k2) holds 9, X(k2) never did

    def test_lag_statistic(self):
        trace = make_timeline_trace(
            {"X": [(S(1), "a")], "Y": [(S(4), "a")]}, horizon=S(10)
        )
        report = follows("X", "Y").check(trace)
        assert report.stats["max_lag_seconds"] == 3.0


class TestMetricFollows:
    def test_fresh_enough_witness(self):
        trace = make_timeline_trace(
            {
                "X": [(S(1), "a"), (S(5), "b")],
                "Y": [(S(2), "a"), (S(6), "b")],
            },
            horizon=S(20),
        )
        assert follows("X", "Y", within_seconds=3).check(trace).valid

    def test_stale_value_violates(self):
        # X moves on at t=5; Y still holds "a" at t=20, far beyond kappa.
        trace = make_timeline_trace(
            {
                "X": [(S(1), "a"), (S(5), "b")],
                "Y": [(S(2), "a")],
            },
            horizon=S(30),
        )
        assert not follows("X", "Y", within_seconds=3).check(trace).valid

    def test_kappa_exactly_at_staleness_boundary(self):
        # X holds "a" during [1s, 5s); Y holds it during [2s, 6s).
        # For t1 just below 6s the freshest witness is just below 5s:
        # lag approaches 1s, so kappa=2s passes and kappa=0.5s fails.
        trace = make_timeline_trace(
            {
                "X": [(S(1), "a"), (S(5), "b")],
                "Y": [(S(2), "a"), (S(6), "b")],
            },
            horizon=S(20),
        )
        assert follows("X", "Y", within_seconds=2).check(trace).valid
        assert not follows("X", "Y", within_seconds=0.5).check(trace).valid


class TestLeads:
    def test_every_value_reflected(self):
        trace = make_timeline_trace(
            {
                "X": [(S(1), "a"), (S(10), "b")],
                "Y": [(S(2), "a"), (S(11), "b")],
            },
            horizon=S(30),
        )
        assert leads("X", "Y").check(trace).valid

    def test_missed_value_detected(self):
        trace = make_timeline_trace(
            {
                "X": [(S(1), "a"), (S(2), "skipped"), (S(3), "b")],
                "Y": [(S(2), "a"), (S(4), "b")],
            },
            horizon=S(30),
        )
        report = leads("X", "Y").check(trace)
        assert not report.valid
        assert report.stats["values_missed"] == 1

    def test_obligation_near_horizon_is_inconclusive(self):
        trace = make_timeline_trace(
            {"X": [(S(1), "a"), (S(9), "b")]}, horizon=S(10)
        )
        report = leads("X", "Y", horizon_slack_seconds=5).check(trace)
        # "b" acquired 1s before the horizon: witness may still come.
        assert report.inconclusive >= 1

    def test_seeded_value_exempt(self):
        trace = make_timeline_trace(
            {"X": [(0, "preexisting"), (S(5), "a")], "Y": [(S(6), "a")]},
            horizon=S(30),
        )
        report = leads("X", "Y").check(trace)
        assert report.valid
        assert report.stats["values_exempt_seeded"] == 1

    def test_metric_bound(self):
        trace = make_timeline_trace(
            {
                "X": [(S(1), "a"), (S(10), "b")],
                "Y": [(S(8), "a"), (S(12), "b")],
            },
            horizon=S(40),
        )
        # "a" took 7s to propagate: fails within 5s, passes within 10s.
        assert not leads("X", "Y", within_seconds=5).check(trace).valid
        assert leads("X", "Y", within_seconds=10).check(trace).valid


class TestStrictlyFollows:
    def test_in_order_propagation(self):
        trace = make_timeline_trace(
            {
                "X": [(S(1), 1), (S(2), 2), (S(3), 3)],
                "Y": [(S(2), 1), (S(3), 2), (S(4), 3)],
            },
            horizon=S(10),
        )
        assert strictly_follows("X", "Y").check(trace).valid

    def test_reordered_values_detected(self):
        trace = make_timeline_trace(
            {
                "X": [(S(1), 1), (S(2), 2)],
                "Y": [(S(3), 2), (S(4), 1)],  # arrived out of order
            },
            horizon=S(10),
        )
        report = strictly_follows("X", "Y").check(trace)
        assert not report.valid

    def test_skipping_values_is_allowed(self):
        # Order only: missing intermediate values do not violate (3).
        trace = make_timeline_trace(
            {
                "X": [(S(1), 1), (S(2), 2), (S(3), 3)],
                "Y": [(S(2), 1), (S(4), 3)],
            },
            horizon=S(10),
        )
        assert strictly_follows("X", "Y").check(trace).valid

    def test_repeated_value_needs_two_x_instants(self):
        trace = make_timeline_trace(
            {
                "X": [(S(1), 1), (S(2), 2)],
                "Y": [(S(3), 1), (S(4), 2), (S(5), 1)],
            },
            horizon=S(10),
        )
        # Y sees 2 then 1 again, but X never held 1 after 2.
        assert not strictly_follows("X", "Y").check(trace).valid


class TestPropagationModel:
    """Property: a faithful delayed copy satisfies all three guarantees."""

    values = st.lists(
        st.integers(0, 5), min_size=1, max_size=12, unique=False
    )

    @given(values, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_perfect_propagation_satisfies_all(self, xs, delay_s):
        gap = S(10)
        x_history = [(S(1) + i * gap, v) for i, v in enumerate(xs)]
        y_history = [(t + S(delay_s), v) for t, v in x_history]
        trace = make_timeline_trace(
            {"X": x_history, "Y": y_history},
            horizon=x_history[-1][0] + S(delay_s) + gap,
        )
        assert follows("X", "Y").check(trace).valid
        assert strictly_follows("X", "Y").check(trace).valid
        assert leads(
            "X", "Y", horizon_slack_seconds=delay_s + 10
        ).check(trace).valid
        assert follows(
            "X", "Y", within_seconds=delay_s + 10.001
        ).check(trace).valid

    @given(values, st.integers(0, 11))
    @settings(max_examples=60, deadline=None)
    def test_corrupted_copy_breaks_follows(self, xs, corrupt_index):
        gap = S(10)
        x_history = [(S(1) + i * gap, v) for i, v in enumerate(xs)]
        y_history = [(t + S(1), v) for t, v in x_history]
        index = corrupt_index % len(y_history)
        time, __ = y_history[index]
        y_history[index] = (time, 999)  # a value X never held
        trace = make_timeline_trace(
            {"X": x_history, "Y": y_history},
            horizon=x_history[-1][0] + gap,
        )
        assert not follows("X", "Y").check(trace).valid
