"""Unit tests for event templates and matching (Appendix A.1)."""

import pytest

from repro.core.events import (
    EventKind,
    notify_desc,
    spontaneous_write_desc,
    write_desc,
)
from repro.core.items import item
from repro.core.templates import (
    FALSE_TEMPLATE,
    instantiate,
    match_desc,
    template,
)
from repro.core.terms import WILDCARD, Const, pattern


class TestTemplateConstruction:
    def test_ws_single_value_shorthand_inserts_wildcard_old(self):
        tmpl = template(
            EventKind.SPONTANEOUS_WRITE, pattern("X"), "b"
        )
        assert tmpl.values[0] is WILDCARD

    def test_variables_include_item_parameters(self):
        tmpl = template(EventKind.NOTIFY, pattern("salary1", "n"), "b")
        assert tmpl.variables() == {"n", "b"}

    def test_false_template_str(self):
        assert str(FALSE_TEMPLATE) == "FALSE"

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            template(EventKind.NOTIFY, pattern("X"), "a", "b")


class TestMatching:
    def test_match_builds_interpretation(self):
        tmpl = template(EventKind.NOTIFY, pattern("salary1", "n"), "b")
        desc = notify_desc(item("salary1", "e1"), 100)
        assert match_desc(tmpl, desc) == {"n": "e1", "b": 100}

    def test_kind_mismatch(self):
        tmpl = template(EventKind.NOTIFY, pattern("X"), "b")
        assert match_desc(tmpl, write_desc(item("X"), 1)) is None

    def test_ws_shorthand_matches_any_old_value(self):
        tmpl = template(EventKind.SPONTANEOUS_WRITE, pattern("X"), "b")
        desc = spontaneous_write_desc(item("X"), 111, 222)
        assert match_desc(tmpl, desc) == {"b": 222}

    def test_false_matches_nothing(self):
        assert match_desc(FALSE_TEMPLATE, write_desc(item("X"), 1)) is None

    def test_constant_in_template_filters(self):
        tmpl = template(EventKind.WRITE, pattern("X"), Const(5))
        assert match_desc(tmpl, write_desc(item("X"), 5)) == {}
        assert match_desc(tmpl, write_desc(item("X"), 6)) is None


class TestInstantiation:
    def test_roundtrip_through_bindings(self):
        src = template(EventKind.NOTIFY, pattern("salary1", "n"), "b")
        dst = template(
            EventKind.WRITE_REQUEST, pattern("salary2", "n"), "b"
        )
        bindings = match_desc(src, notify_desc(item("salary1", "e7"), 55))
        assert bindings is not None
        desc = instantiate(dst, bindings)
        assert desc.kind is EventKind.WRITE_REQUEST
        assert desc.item == item("salary2", "e7")
        assert desc.values == (55,)

    def test_instantiate_false_rejected(self):
        with pytest.raises(ValueError):
            instantiate(FALSE_TEMPLATE, {})
