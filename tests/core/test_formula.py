"""Tests for the generic guarantee-formula language and checker.

The centerpiece is cross-validation: on randomized propagation/corruption
traces the generic enumerative checker must agree with the specialized
interval-algebra checkers for every guarantee family of Section 3.3.1.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core.errors import CheckError, DslSyntaxError
from repro.core.formula import (
    ExistsAtom,
    FormulaChecker,
    GuaranteeFormula,
    StateAtom,
    TimeConstraint,
    TimeExpr,
)
from repro.core.guarantee_dsl import parse_guarantee
from repro.core.guarantees import follows, leads, strictly_follows
from repro.core.items import DataItemRef
from repro.core.timebase import seconds

from conftest import make_timeline_trace

S = seconds

GUARANTEE_1 = "(Y = y)@t1 => (X = y)@t2 & t2 < t1"
GUARANTEE_2 = "(X = x)@t1 => (Y = x)@t2 & t2 > t1"
GUARANTEE_3 = (
    "(Y = y1)@t1 & (Y = y2)@t2 & t1 < t2 "
    "=> (X = y1)@t3 & (X = y2)@t4 & t3 < t4"
)


def metric_guarantee(kappa_s: float) -> str:
    return f"(Y = y)@t1 => (X = y)@t2 & t1 - {kappa_s} < t2 & t2 < t1"


def check(text: str, trace) -> bool:
    return not FormulaChecker(parse_guarantee(text)).check(trace)


class TestParser:
    def test_guarantee_1_shape(self):
        formula = parse_guarantee(GUARANTEE_1)
        assert len(formula.lhs) == 1 and len(formula.rhs) == 2
        atom = formula.lhs[0]
        assert isinstance(atom, StateAtom)
        assert atom.item == DataItemRef("Y") and atom.value_var == "y"

    def test_time_offsets_in_seconds(self):
        formula = parse_guarantee(metric_guarantee(6))
        constraint = next(
            a for a in formula.rhs if isinstance(a, TimeConstraint)
        )
        assert constraint.left.offset == -seconds(6)

    def test_exists_atoms(self):
        formula = parse_guarantee(
            "E(project('e1'))@t1 => E(salary('e1'))@t2 & t2 >= t1"
        )
        assert isinstance(formula.lhs[0], ExistsAtom)
        assert formula.lhs[0].item == DataItemRef("project", ("e1",))

    def test_negated_exists(self):
        formula = parse_guarantee("!E(X)@t1 => (Y = 0)@t1")
        assert formula.lhs[0].negated

    def test_literal_values(self):
        formula = parse_guarantee("(Flag = true)@t1 => (X = 5)@t1")
        assert formula.lhs[0].value_const is True
        assert formula.rhs[0].value_const == 5

    def test_str_roundtrips_reparse(self):
        formula = parse_guarantee(GUARANTEE_3)
        # Rendering uses ticks for offsets; reparse of structure-only texts:
        reparsed = parse_guarantee(GUARANTEE_3)
        assert reparsed == formula

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_guarantee(GUARANTEE_1 + " nonsense(")

    def test_unordered_time_constraint_rejected_at_check(self):
        formula = parse_guarantee("t2 < t1 => (X = 1)@t1")
        trace = make_timeline_trace({"X": [(S(1), 1)]}, horizon=S(5))
        with pytest.raises(CheckError):
            FormulaChecker(formula).check(trace)


class TestGenericChecking:
    def propagation_trace(self):
        return make_timeline_trace(
            {
                "X": [(S(1), "a"), (S(10), "b"), (S(20), "c")],
                "Y": [(S(2), "a"), (S(11), "b"), (S(21), "c")],
            },
            horizon=S(40),
        )

    def test_guarantee_1_valid_on_propagation(self):
        assert check(GUARANTEE_1, self.propagation_trace())

    def test_guarantee_1_violated_by_invention(self):
        trace = make_timeline_trace(
            {"X": [(S(1), "a")], "Y": [(S(2), "zz")]}, horizon=S(10)
        )
        violations = FormulaChecker(parse_guarantee(GUARANTEE_1)).check(trace)
        assert violations
        assert violations[0].values["y"] == "zz"

    def test_guarantee_3_detects_reordering(self):
        trace = make_timeline_trace(
            {
                "X": [(S(1), 1), (S(2), 2)],
                "Y": [(S(3), 2), (S(4), 1)],
            },
            horizon=S(10),
        )
        assert not check(GUARANTEE_3, trace)

    def test_metric_variant(self):
        trace = self.propagation_trace()
        assert check(metric_guarantee(3), trace)
        # Y holds "a" during [2s, 11s) while X left "a" at 10s: with a tiny
        # kappa the tail of that segment has no fresh witness.
        assert not check(metric_guarantee(0.5), trace)

    def test_exists_formula(self):
        from repro.core.items import MISSING

        trace = make_timeline_trace(
            {
                "P": [(S(1), "rec"), (S(30), MISSING)],
                "C": [(S(5), "rec")],
            },
            horizon=S(60),
        )
        # Every time P exists, C exists within 10 s.
        formula = (
            "E(P)@t1 => E(C)@t2 & t2 >= t1 - 0 & t2 <= t1 + 10"
        )
        assert check(formula, trace)
        tight = "E(P)@t1 => E(C)@t2 & t2 >= t1 & t2 <= t1 + 1"
        assert not check(tight, trace)


class TestCrossValidation:
    """The generic checker must agree with the specialized ones."""

    histories = st.lists(
        st.integers(0, 4), min_size=1, max_size=6
    )

    @given(histories, st.integers(1, 4), st.booleans(), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_agreement_on_guarantee_1_and_4(
        self, xs, delay_s, corrupt, corrupt_at
    ):
        gap = S(10)
        x_history = [(S(1) + i * gap, v) for i, v in enumerate(xs)]
        y_history = [(t + S(delay_s), v) for t, v in x_history]
        if corrupt:
            index = corrupt_at % len(y_history)
            time, __ = y_history[index]
            y_history[index] = (time, 99)
        trace = make_timeline_trace(
            {"X": x_history, "Y": y_history},
            horizon=x_history[-1][0] + gap,
        )
        specialized = follows("X", "Y").check(trace).valid
        generic = check(GUARANTEE_1, trace)
        assert specialized == generic
        kappa = delay_s + 10
        specialized_metric = follows(
            "X", "Y", within_seconds=kappa
        ).check(trace).valid
        generic_metric = check(metric_guarantee(kappa), trace)
        assert specialized_metric == generic_metric

    @given(histories, st.integers(1, 3), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_agreement_on_guarantee_3(self, xs, delay_s, reorder):
        gap = S(10)
        x_history = [(S(1) + i * gap, v) for i, v in enumerate(xs)]
        y_values = list(xs)
        if reorder and len(set(y_values)) > 1:
            y_values = list(reversed(y_values))
        y_history = [
            (t + S(delay_s), v) for (t, __), v in zip(x_history, y_values)
        ]
        trace = make_timeline_trace(
            {"X": x_history, "Y": y_history},
            horizon=x_history[-1][0] + gap,
        )
        specialized = strictly_follows("X", "Y").check(trace).valid
        generic = check(GUARANTEE_3, trace)
        assert specialized == generic
