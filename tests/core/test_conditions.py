"""Unit tests for condition expressions."""

import pytest

from repro.core.conditions import (
    NO_LOCAL_DATA,
    TRUE,
    Binary,
    Call,
    ItemRead,
    Literal,
    Name,
    Unary,
    evaluate,
    evaluate_value,
)
from repro.core.errors import BindingError
from repro.core.items import MISSING, DataItemRef
from repro.core.terms import ItemPattern, Var


class FakeStore:
    def __init__(self, values):
        self.values = values

    def read_local(self, ref):
        return self.values.get(ref, MISSING)


class TestNameResolution:
    def test_bound_variable_wins(self):
        assert evaluate_value(Name("b"), {"b": 3}) == 3

    def test_uppercase_name_reads_local_item(self):
        store = FakeStore({DataItemRef("Cx"): 42})
        assert evaluate_value(Name("Cx"), {}, store) == 42

    def test_unbound_lowercase_name_raises(self):
        with pytest.raises(BindingError):
            evaluate_value(Name("b"), {}, FakeStore({}))

    def test_item_read_grounds_parameters(self):
        store = FakeStore({DataItemRef("cache", ("e1",)): 7})
        expr = ItemRead(ItemPattern("cache", (Var("n"),)))
        assert evaluate_value(expr, {"n": "e1"}, store) == 7


class TestOperators:
    def test_arithmetic(self):
        expr = Binary("+", Literal(2), Binary("*", Literal(3), Literal(4)))
        assert evaluate_value(expr, {}) == 14

    def test_comparison(self):
        assert evaluate(Binary("<", Literal(1), Literal(2)), {})
        assert not evaluate(Binary(">=", Literal(1), Literal(2)), {})

    def test_equality_with_missing(self):
        assert evaluate(Binary("==", Literal(MISSING), Literal(MISSING)), {})
        assert evaluate(Binary("!=", Literal(1), Literal(MISSING)), {})

    def test_ordered_comparison_with_missing_raises(self):
        with pytest.raises(BindingError):
            evaluate(Binary("<", Literal(MISSING), Literal(1)), {})

    def test_boolean_short_circuit(self):
        # The right side would raise if evaluated.
        boom = Name("unbound_var")
        assert not evaluate(Binary("and", Literal(False), boom), {})
        assert evaluate(Binary("or", Literal(True), boom), {})

    def test_not_and_negate(self):
        assert evaluate(Unary("not", Literal(False)), {})
        assert evaluate_value(Unary("-", Literal(5)), {}) == -5

    def test_abs(self):
        assert evaluate_value(Call("abs", (Literal(-3),)), {}) == 3

    def test_exists(self):
        store = FakeStore({DataItemRef("Flag"): True})
        assert evaluate(Call("exists", (Name("Flag"),)), {}, store)
        assert not evaluate(Call("exists", (Name("Gone"),)), {}, store)

    def test_paper_conditional_notify_condition(self):
        # abs(b - a) > a * 0.1  (the 10%-change filter of Section 3.1.1)
        expr = Binary(
            ">",
            Call("abs", (Binary("-", Name("b"), Name("a")),)),
            Binary("*", Name("a"), Literal(0.1)),
        )
        assert evaluate(expr, {"a": 100, "b": 115})
        assert not evaluate(expr, {"a": 100, "b": 105})


class TestTrueConstant:
    def test_true_is_trivially_satisfied(self):
        assert evaluate(TRUE, {}, NO_LOCAL_DATA)
