"""Randomized equivalence: indexed trace queries vs the naive reference.

The trace's record-time indexes and the fused validator are pure
optimizations — :class:`ReferenceTraceQueries` and
:func:`validate_trace_naive` (the pre-index full-scan implementations,
retained in :mod:`repro.core.trace`) are the executable specification.
These tests generate random traces — mixed event kinds, parameterized
families, same-instant writes, seeded items, valid and deliberately broken
provenance — and assert query-by-query agreement.
"""

import random

import pytest

from repro.core.dsl import parse_rule
from repro.core.events import (
    EventKind,
    notify_desc,
    periodic_desc,
    read_request_desc,
    read_response_desc,
    spontaneous_write_desc,
    write_desc,
    write_request_desc,
)
from repro.core.items import MISSING, item
from repro.core.templates import FALSE_TEMPLATE, Template
from repro.core.terms import FAMILY_WILDCARD, ItemPattern, Var
from repro.core.timebase import seconds
from repro.core.trace import (
    ExecutionTrace,
    ReferenceTraceQueries,
    validate_trace,
    validate_trace_naive,
)

FAMILIES = ("phone", "addr", "flag")
ARGS = ("p0", "p1", "p2", "p3")
SITES = ("hub", "replica1", "replica2")
VALUES = (0, 1, "x", "y", 3.5, MISSING)

RULES = [
    parse_rule("N(phone(n), b) -> [5] WR(addr(n), b)", name="propagate"),
    parse_rule("Ws(addr(n), a, b) -> [3] N(addr(n), b)", name="announce"),
    parse_rule("W(flag(n), b) -> [1] FALSE", name="no-flag-writes"),
]

TEMPLATES = [
    RULES[0].lhs,
    RULES[0].steps[0].template,
    RULES[1].lhs,
    RULES[2].lhs,
    Template(
        EventKind.NOTIFY, ItemPattern(FAMILY_WILDCARD, (Var("n"),)), (Var("b"),)
    ),
    FALSE_TEMPLATE,
]


def _random_desc(rng: random.Random):
    ref = item(rng.choice(FAMILIES), rng.choice(ARGS))
    value = rng.choice(VALUES)
    kind = rng.randrange(7)
    if kind == 0:
        return write_desc(ref, value)
    if kind == 1:
        return spontaneous_write_desc(ref, rng.choice(VALUES), value)
    if kind == 2:
        return notify_desc(ref, value)
    if kind == 3:
        return write_request_desc(ref, value)
    if kind == 4:
        return read_request_desc(ref)
    if kind == 5:
        return read_response_desc(ref, value)
    return periodic_desc(seconds(rng.randint(1, 5)))


def _random_trace(seed: int) -> ExecutionTrace:
    rng = random.Random(seed)
    trace = ExecutionTrace()
    for family in FAMILIES:
        for arg in ARGS:
            if rng.random() < 0.4:
                trace.seed(item(family, arg), rng.choice(VALUES))
    clock = 0
    for _ in range(rng.randint(40, 120)):
        clock += rng.choice((0, 0, seconds(1), seconds(2), seconds(7)))
        site = rng.choice(SITES)
        desc = _random_desc(rng)
        provenance = rng.random()
        rule = trigger = None
        if provenance < 0.25 and trace.events:
            # Random (usually inconsistent) provenance: both validators must
            # flag the same property-4/5/6/7 violations.
            rule = rng.choice(RULES)
            trigger = rng.choice(trace.events)
        event = trace.record(clock, site, desc, rule=rule, trigger=trigger)
        if (
            desc.kind is EventKind.NOTIFY
            and desc.item is not None
            and desc.item.name == "phone"
            and rng.random() < 0.6
        ):
            # A well-formed generated follow-up for the propagation rule, so
            # liveness checking sees satisfied obligations too.
            clock += rng.choice((0, seconds(1), seconds(4)))
            trace.record(
                clock,
                rng.choice(SITES),
                write_request_desc(item("addr", desc.item.args[0]), desc.values[0]),
                rule=RULES[0],
                trigger=event,
            )
    trace.close(clock + seconds(rng.randint(0, 10)))
    return trace


SEEDS = [1, 7, 23, 99, 1234]


@pytest.mark.parametrize("seed", SEEDS)
def test_events_matching_agrees(seed):
    trace = _random_trace(seed)
    reference = ReferenceTraceQueries(trace)
    for tmpl in TEMPLATES:
        indexed = [(e.seq, b) for e, b in trace.events_matching(tmpl)]
        naive = [(e.seq, b) for e, b in reference.events_matching(tmpl)]
        assert indexed == naive, f"template {tmpl}"


@pytest.mark.parametrize("seed", SEEDS)
def test_events_of_kind_and_writes_to_agree(seed):
    trace = _random_trace(seed)
    reference = ReferenceTraceQueries(trace)
    for kind in EventKind:
        indexed = [e.seq for e in trace.events_of_kind(kind)]
        naive = [e.seq for e in reference.events_of_kind(kind)]
        assert indexed == naive, f"kind {kind}"
    for family in FAMILIES:
        for arg in ARGS:
            ref = item(family, arg)
            assert [e.seq for e in trace.writes_to(ref)] == [
                e.seq for e in reference.writes_to(ref)
            ], f"writes_to({ref})"


@pytest.mark.parametrize("seed", SEEDS)
def test_refs_of_family_agrees(seed):
    trace = _random_trace(seed)
    reference = ReferenceTraceQueries(trace)
    for family in FAMILIES + ("nonexistent",):
        assert trace.refs_of_family(family) == reference.refs_of_family(family)


@pytest.mark.parametrize("seed", SEEDS)
def test_timelines_agree(seed):
    trace = _random_trace(seed)
    reference = ReferenceTraceQueries(trace)
    rng = random.Random(seed * 31)
    for family in FAMILIES:
        for arg in ARGS:
            ref = item(family, arg)
            incremental = trace.timeline(ref)
            rebuilt = reference.timeline(ref)
            assert incremental.change_points() == rebuilt.change_points(), ref
            assert incremental.horizon == rebuilt.horizon, ref
            for _ in range(10):
                at = rng.randint(-seconds(2), trace.horizon + seconds(2))
                assert incremental.value_at(at) == rebuilt.value_at(at)
            assert list(incremental.segments()) == list(rebuilt.segments())


@pytest.mark.parametrize("seed", SEEDS)
def test_timelines_agree_interleaved_with_recording(seed):
    """Incremental timelines must agree mid-trace, not just at the end."""
    rng = random.Random(seed)
    trace = ExecutionTrace()
    ref = item("phone", "p0")
    clock = 0
    for index in range(60):
        clock += rng.choice((0, seconds(1), seconds(3)))
        trace.record(
            clock,
            "hub",
            spontaneous_write_desc(
                ref, trace.current_value(ref), rng.choice(VALUES)
            ),
        )
        if index % 5 == 0:
            incremental = trace.timeline(ref)
            rebuilt = ReferenceTraceQueries(trace).timeline(ref)
            assert incremental.change_points() == rebuilt.change_points()


@pytest.mark.parametrize("seed", SEEDS)
def test_validator_agrees_with_naive(seed):
    trace = _random_trace(seed)
    fused = validate_trace(trace, RULES)
    naive = validate_trace_naive(trace, RULES)
    assert [
        (v.property_number, v.message, v.event.seq if v.event else None)
        for v in fused
    ] == [
        (v.property_number, v.message, v.event.seq if v.event else None)
        for v in naive
    ]


def test_validator_agrees_on_clean_trace():
    trace = ExecutionTrace()
    x = item("phone", "p0")
    clock = 0
    for index in range(20):
        clock += seconds(1)
        trace.record(
            clock, "hub",
            spontaneous_write_desc(x, trace.current_value(x), index),
        )
    trace.close(clock)
    assert validate_trace(trace, []) == []
    assert validate_trace_naive(trace, []) == []
