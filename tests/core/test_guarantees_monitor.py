"""Tests for the Flag/Tb monitoring guarantee (Section 6.3)."""

from repro.core.events import spontaneous_write_desc, write_desc
from repro.core.guarantees import monitor_window
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import seconds
from repro.core.trace import ExecutionTrace

X = DataItemRef("X")
Y = DataItemRef("Y")
FLAG = DataItemRef("Flag")
TB = DataItemRef("Tb")


def build_trace(events, horizon_s=100):
    """events: list of (time_s, ref, value)."""
    trace = ExecutionTrace()
    for time_s, ref, value in sorted(events, key=lambda e: e[0]):
        old = trace.current_value(ref)
        if ref in (FLAG, TB):
            trace.record(seconds(time_s), "app", write_desc(ref, value))
        else:
            trace.record(
                seconds(time_s), "src",
                spontaneous_write_desc(ref, old, value),
            )
    trace.close(seconds(horizon_s))
    return trace


class TestMonitorGuarantee:
    def test_sound_claim(self):
        trace = build_trace(
            [
                (1, X, 5),
                (2, Y, 5),
                (3, TB, seconds(3)),
                (3.1, FLAG, True),
            ]
        )
        assert monitor_window(X, Y, FLAG, TB, 1.0).check(trace).valid

    def test_false_claim_detected(self):
        # Flag stays true while X has moved on and Y has not.
        trace = build_trace(
            [
                (1, X, 5),
                (2, Y, 5),
                (3, TB, seconds(3)),
                (3.1, FLAG, True),
                (10, X, 6),  # divergence begins; Flag never flipped
            ]
        )
        report = monitor_window(X, Y, FLAG, TB, 1.0).check(trace)
        assert not report.valid

    def test_kappa_excuses_recent_divergence(self):
        # Divergence at t=10; Flag flips false at t=11 (notification lag 1s).
        # With kappa=2s every claim interval [s, t-2] stops before t=10... up
        # to claims made just before 11: [3, 9] is clean.
        trace = build_trace(
            [
                (1, X, 5),
                (2, Y, 5),
                (3, TB, seconds(3)),
                (3.1, FLAG, True),
                (10, X, 6),
                (11, FLAG, False),
            ]
        )
        assert monitor_window(X, Y, FLAG, TB, 2.0).check(trace).valid
        # With kappa=0.5 the claim at t=10.9 covers [3, 10.4]: unsound.
        assert not monitor_window(X, Y, FLAG, TB, 0.5).check(trace).valid

    def test_flag_true_without_tb_is_a_violation(self):
        trace = build_trace([(1, X, 5), (2, Y, 5), (3, FLAG, True)])
        report = monitor_window(X, Y, FLAG, TB, 1.0).check(trace)
        assert not report.valid
        assert "Tb unset" in report.counterexamples[0]

    def test_vacuous_claims_are_fine(self):
        # Tb very recent: t - kappa < s, the claimed interval is empty.
        trace = build_trace(
            [
                (1, X, 5),
                (2, Y, 6),  # actually different!
                (3, TB, seconds(3)),
                (3.1, FLAG, True),
                (3.5, FLAG, False),
            ]
        )
        assert monitor_window(X, Y, FLAG, TB, 5.0).check(trace).valid

    def test_coverage_statistic(self):
        trace = build_trace(
            [
                (1, X, 5),
                (2, Y, 5),
                (3, TB, seconds(3)),
                (3.1, FLAG, True),
            ],
            horizon_s=50,
        )
        report = monitor_window(X, Y, FLAG, TB, 1.0).check(trace)
        assert report.stats["covered_seconds"] > 40
