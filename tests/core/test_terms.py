"""Unit tests for the term language and matching interpretations."""

import pytest

from repro.core.errors import BindingError
from repro.core.items import DataItemRef
from repro.core.terms import (
    WILDCARD,
    Const,
    ItemPattern,
    Var,
    ground_item,
    ground_term,
    match_item,
    match_term,
    pattern,
)


class TestPatternConstruction:
    def test_bare_strings_become_variables(self):
        p = pattern("salary1", "n")
        assert p.args == (Var("n"),)

    def test_values_become_constants(self):
        p = pattern("phone", 42)
        assert p.args == (Const(42),)

    def test_is_ground(self):
        assert pattern("x", Const(1)).is_ground
        assert not pattern("x", "n").is_ground

    def test_variables(self):
        assert pattern("x", "n", Const(3), "m").variables() == {"n", "m"}

    def test_str(self):
        assert str(pattern("salary1", "n")) == "salary1(n)"


class TestMatching:
    def test_wildcard_matches_anything_binding_nothing(self):
        bindings = {}
        assert match_term(WILDCARD, object(), bindings)
        assert bindings == {}

    def test_const_matches_equal_value_only(self):
        assert match_term(Const(5), 5, {})
        assert not match_term(Const(5), 6, {})

    def test_fresh_variable_binds(self):
        bindings = {}
        assert match_term(Var("b"), 7, bindings)
        assert bindings == {"b": 7}

    def test_bound_variable_must_agree(self):
        bindings = {"b": 7}
        assert match_term(Var("b"), 7, bindings)
        assert not match_term(Var("b"), 8, bindings)

    def test_item_match_produces_interpretation(self):
        bindings = {}
        ok = match_item(
            pattern("salary1", "n"), DataItemRef("salary1", ("e1",)), bindings
        )
        assert ok and bindings == {"n": "e1"}

    def test_item_match_rejects_name_mismatch(self):
        assert not match_item(
            pattern("salary1", "n"), DataItemRef("salary2", ("e1",)), {}
        )

    def test_item_match_rejects_arity_mismatch(self):
        assert not match_item(
            pattern("salary1", "n"), DataItemRef("salary1", ()), {}
        )

    def test_repeated_variable_enforces_equality(self):
        bindings = {}
        assert match_item(
            pattern("pair", "n", "n"), DataItemRef("pair", (1, 1)), bindings
        )
        assert not match_item(
            pattern("pair", "n", "n"), DataItemRef("pair", (1, 2)), {}
        )


class TestGrounding:
    def test_ground_const_and_var(self):
        assert ground_term(Const(3), {}) == 3
        assert ground_term(Var("b"), {"b": 9}) == 9

    def test_ground_unbound_variable_raises(self):
        with pytest.raises(BindingError):
            ground_term(Var("b"), {})

    def test_ground_wildcard_raises(self):
        with pytest.raises(BindingError):
            ground_term(WILDCARD, {})

    def test_ground_item(self):
        ref = ground_item(pattern("salary1", "n"), {"n": "e9"})
        assert ref == DataItemRef("salary1", ("e9",))
