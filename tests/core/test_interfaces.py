"""Tests for the interface menu (Section 3.1.1)."""

import pytest

from repro.core.dsl import parse_condition
from repro.core.errors import SpecError
from repro.core.events import EventKind
from repro.core.interfaces import (
    InterfaceKind,
    InterfaceSet,
    conditional_notify_interface,
    no_spontaneous_write_interface,
    notify_interface,
    periodic_notify_interface,
    read_interface,
    update_window_interface,
    write_interface,
)
from repro.core.rules import RuleRole
from repro.core.timebase import clock_time, seconds


class TestMenuShapes:
    def test_write_interface_rule_shape(self):
        spec = write_interface("salary2", seconds(2), params=("n",))
        rule = spec.rule
        assert rule.lhs.kind is EventKind.WRITE_REQUEST
        assert rule.steps[0].template.kind is EventKind.WRITE
        assert rule.delay == seconds(2)
        assert rule.role is RuleRole.INTERFACE

    def test_read_interface_binds_current_value(self):
        spec = read_interface("X", seconds(1))
        assert [name for name, __ in spec.rule.binders] == ["b"]

    def test_notify_interface(self):
        spec = notify_interface("salary1", seconds(2), params=("n",))
        assert spec.rule.lhs.kind is EventKind.SPONTANEOUS_WRITE
        assert spec.rule.steps[0].template.kind is EventKind.NOTIFY

    def test_conditional_notify_carries_condition(self):
        condition = parse_condition("abs(b - a) > a * 0.1")
        spec = conditional_notify_interface("X", seconds(2), condition)
        assert spec.rule.condition is condition
        # The LHS template uses the two-value Ws form (old, new).
        assert len(spec.rule.lhs.values) == 2

    def test_periodic_notify(self):
        spec = periodic_notify_interface("X", seconds(300), seconds(1))
        assert spec.period == seconds(300)
        assert spec.rule.lhs.kind is EventKind.PERIODIC

    def test_no_spontaneous_write_is_prohibition(self):
        spec = no_spontaneous_write_interface("Y")
        assert spec.rule.is_prohibition

    def test_update_window_carries_window(self):
        spec = update_window_interface(
            "balance1", clock_time(17), clock_time(8), params=("n",)
        )
        assert spec.window_start == clock_time(17)
        assert spec.window_end == clock_time(8)
        assert spec.rule.is_prohibition


class TestInterfaceSet:
    def build(self) -> InterfaceSet:
        interfaces = InterfaceSet()
        interfaces.add(notify_interface("X", seconds(2)))
        interfaces.add(read_interface("X", seconds(1)))
        interfaces.add(write_interface("Y", seconds(3)))
        return interfaces

    def test_kinds_for(self):
        interfaces = self.build()
        assert interfaces.kinds_for("X") == {
            InterfaceKind.NOTIFY,
            InterfaceKind.READ,
        }

    def test_get_and_bound(self):
        interfaces = self.build()
        assert interfaces.bound("Y", InterfaceKind.WRITE) == seconds(3)

    def test_get_missing_raises_with_available_list(self):
        interfaces = self.build()
        with pytest.raises(SpecError) as excinfo:
            interfaces.get("X", InterfaceKind.WRITE)
        assert "notify" in str(excinfo.value)

    def test_describe_is_readable(self):
        text = self.build().describe()
        assert "X: notify (bound 2s)" in text
