"""Unit tests for the virtual time base."""

import pytest

from repro.core import timebase as tb


class TestConversions:
    def test_seconds_to_ticks(self):
        assert tb.seconds(1) == 1_000_000

    def test_fractional_seconds_round_to_nearest_tick(self):
        assert tb.seconds(0.1) == 100_000
        assert tb.seconds(0.0000014) == 1  # nearest tick (banker's rounding)

    def test_minutes_hours_days(self):
        assert tb.minutes(1) == 60 * tb.seconds(1)
        assert tb.hours(1) == 60 * tb.minutes(1)
        assert tb.days(1) == 24 * tb.hours(1)

    def test_roundtrip(self):
        assert tb.to_seconds(tb.seconds(12.5)) == 12.5

    def test_constants_consistent(self):
        assert tb.DAY == tb.days(1)
        assert tb.HOUR == tb.hours(1)
        assert tb.MINUTE == tb.minutes(1)


class TestCalendar:
    def test_time_of_day_wraps_daily(self):
        tick = tb.days(2) + tb.hours(3)
        assert tb.time_of_day(tick) == tb.hours(3)
        assert tb.day_number(tick) == 2

    def test_clock_time(self):
        assert tb.clock_time(17, 15) == tb.hours(17) + tb.minutes(15)

    @pytest.mark.parametrize(
        "hour,minute,second", [(24, 0, 0), (-1, 0, 0), (0, 60, 0), (0, 0, 61)]
    )
    def test_clock_time_rejects_out_of_range(self, hour, minute, second):
        with pytest.raises(ValueError):
            tb.clock_time(hour, minute, second)

    def test_format_ticks(self):
        tick = tb.days(1) + tb.clock_time(17, 15, 0) + 250_000
        assert tb.format_ticks(tick) == "d1 17:15:00.250000"
