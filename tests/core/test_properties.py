"""Cross-cutting property-based tests on core data structures.

- rule DSL: rendering a parsed rule reparses to an equivalent rule;
- SQL engine: WHERE filtering agrees with a Python-model filter;
- timelines: segments partition [0, horizon) and agree with value_at.
"""

from hypothesis import given, settings, strategies as st

from repro.core.dsl import parse_rule
from repro.core.items import MISSING, DataItemRef
from repro.core.trace import ExecutionTrace
from repro.core.events import spontaneous_write_desc
from repro.ris.relational import RelationalDatabase


identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)


class TestDslRoundTrip:
    @given(
        src=identifiers,
        dst=identifiers,
        param=identifiers,
        value_var=identifiers,
        delay=st.floats(0, 100, allow_nan=False).map(lambda f: round(f, 3)),
    )
    @settings(max_examples=60, deadline=None)
    def test_propagation_rule_roundtrips(
        self, src, dst, param, value_var, delay
    ):
        text = f"N({src}({param}), {value_var}) -> [{delay}] " \
               f"WR({dst}({param}), {value_var})"
        rule = parse_rule(text, name="r")
        reparsed = parse_rule(str(rule), name="r")
        assert reparsed.lhs == rule.lhs
        assert reparsed.delay == rule.delay
        assert reparsed.steps == rule.steps

    @given(
        threshold=st.integers(-1000, 1000),
        delay=st.floats(0, 10, allow_nan=False).map(lambda f: round(f, 2)),
    )
    @settings(max_examples=30, deadline=None)
    def test_conditional_rule_roundtrips(self, threshold, delay):
        text = f"Ws(X, a, b) & abs(b - a) > {threshold} -> [{delay}] N(X, b)"
        rule = parse_rule(text, name="r")
        reparsed = parse_rule(str(rule), name="r")
        assert reparsed.lhs == rule.lhs
        assert str(reparsed.condition) == str(rule.condition)


class TestSqlModelAgreement:
    rows = st.lists(
        st.tuples(
            st.integers(0, 50),
            st.integers(-100, 100),
            st.sampled_from(["eng", "sales", "ops"]),
        ),
        min_size=0,
        max_size=30,
        unique_by=lambda r: r[0],
    )

    @given(rows=rows, low=st.integers(-100, 100), dept=st.sampled_from(
        ["eng", "sales", "ops"]))
    @settings(max_examples=50, deadline=None)
    def test_where_matches_python_filter(self, rows, low, dept):
        db = RelationalDatabase("prop")
        db.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER, d TEXT)"
        )
        for key, value, group in rows:
            db.execute(
                "INSERT INTO t (k, v, d) VALUES (?, ?, ?)",
                (key, value, group),
            )
        got = sorted(
            db.query(
                "SELECT k FROM t WHERE v >= ? AND d = ?", (low, dept)
            )
        )
        expected = sorted(
            (key,) for key, value, group in rows
            if value >= low and group == dept
        )
        assert got == expected

    @given(rows=rows)
    @settings(max_examples=30, deadline=None)
    def test_order_by_matches_sorted(self, rows):
        db = RelationalDatabase("prop")
        db.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER, d TEXT)"
        )
        for key, value, group in rows:
            db.execute(
                "INSERT INTO t (k, v, d) VALUES (?, ?, ?)",
                (key, value, group),
            )
        got = db.query("SELECT k, v FROM t ORDER BY v DESC, k")
        expected = sorted(
            ((key, value) for key, value, __ in rows),
            key=lambda kv: (-kv[1], kv[0]),
        )
        assert got == expected


class TestTimelineProperties:
    changes = st.lists(
        st.tuples(st.integers(1, 1000), st.integers(0, 5)),
        min_size=0,
        max_size=20,
    )

    @given(changes=changes, probe=st.integers(0, 1100))
    @settings(max_examples=60, deadline=None)
    def test_value_at_matches_last_write(self, changes, probe):
        trace = ExecutionTrace()
        ref = DataItemRef("X")
        last = {}
        for time, value in sorted(changes, key=lambda c: c[0]):
            trace.record(
                time, "s",
                spontaneous_write_desc(ref, trace.current_value(ref), value),
            )
            last[time] = value
        trace.close(1100)
        expected = MISSING
        for time in sorted(last):
            if time <= probe:
                expected = last[time]
        assert trace.value_at(ref, probe) == expected

    @given(changes=changes)
    @settings(max_examples=60, deadline=None)
    def test_segments_partition_the_horizon(self, changes):
        trace = ExecutionTrace()
        ref = DataItemRef("X")
        for time, value in sorted(changes, key=lambda c: c[0]):
            trace.record(
                time, "s",
                spontaneous_write_desc(ref, trace.current_value(ref), value),
            )
        trace.close(1100)
        segments = list(trace.timeline(ref).segments())
        assert segments[0].start == 0
        assert segments[-1].end == 1100
        for left, right in zip(segments, segments[1:]):
            assert left.end == right.start
            assert left.value != right.value  # maximality
        for segment in segments:
            assert trace.value_at(ref, segment.start) == segment.value
