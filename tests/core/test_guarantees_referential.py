"""Tests for the weakened referential-integrity guarantee (Section 6.2)."""

from repro.core.events import spontaneous_write_desc
from repro.core.guarantees import referential_within
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import hours
from repro.core.trace import ExecutionTrace


def record(trace, time, family, key, value):
    ref = DataItemRef(family, (key,))
    trace.record(
        time, "s", spontaneous_write_desc(ref, trace.current_value(ref), value)
    )


class TestReferential:
    def test_no_parents_is_vacuously_valid(self):
        trace = ExecutionTrace()
        trace.close(hours(48))
        report = referential_within("project", "salary", 86400).check(trace)
        assert report.valid and report.checked_instances == 0

    def test_violation_within_grace(self):
        trace = ExecutionTrace()
        record(trace, hours(1), "project", "e1", "p")  # orphan for 5 hours
        record(trace, hours(6), "salary", "e1", 100)
        trace.close(hours(48))
        report = referential_within("project", "salary", 86400).check(trace)
        assert report.valid
        assert report.stats["max_violation_window_seconds"] == 5 * 3600

    def test_violation_beyond_grace(self):
        trace = ExecutionTrace()
        record(trace, hours(1), "project", "e1", "p")
        record(trace, hours(30), "salary", "e1", 100)  # 29h orphaned
        trace.close(hours(48))
        report = referential_within("project", "salary", 86400).check(trace)
        assert not report.valid
        assert "e1" in report.counterexamples[0]

    def test_child_deletion_reopens_violation(self):
        trace = ExecutionTrace()
        record(trace, hours(1), "salary", "e1", 100)
        record(trace, hours(2), "project", "e1", "p")
        record(trace, hours(5), "salary", "e1", MISSING)  # orphaned again
        record(trace, hours(40), "project", "e1", MISSING)  # 35h later: too late
        trace.close(hours(48))
        report = referential_within("project", "salary", 86400).check(trace)
        assert not report.valid

    def test_open_window_at_horizon_is_inconclusive(self):
        trace = ExecutionTrace()
        record(trace, hours(1), "project", "e1", "p")
        trace.close(hours(3))  # run ended 2h into the violation
        report = referential_within("project", "salary", 86400).check(trace)
        assert report.valid
        assert report.inconclusive == 1

    def test_per_parameter_instances(self):
        trace = ExecutionTrace()
        record(trace, hours(1), "project", "e1", "p")
        record(trace, hours(1), "project", "e2", "p")
        record(trace, hours(2), "salary", "e1", 100)
        record(trace, hours(40), "salary", "e2", 100)  # too late for e2
        trace.close(hours(48))
        report = referential_within("project", "salary", 86400).check(trace)
        assert not report.valid
        assert report.checked_instances == 2
        assert all("e2" in ce for ce in report.counterexamples)
