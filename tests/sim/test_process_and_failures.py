"""Tests for timers, failure plans, and RNG streams."""

import pytest

from repro.core.timebase import seconds
from repro.sim.failures import FailureKind, FailurePlan, FailureWindow
from repro.sim.process import PeriodicTimer
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.scheduler import Simulator


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        PeriodicTimer(sim, seconds(10), lambda: times.append(sim.now))
        sim.run(until=seconds(35))
        assert times == [seconds(10), seconds(20), seconds(30)]

    def test_fire_immediately(self):
        sim = Simulator()
        times = []
        PeriodicTimer(
            sim, seconds(10), lambda: times.append(sim.now),
            fire_immediately=True,
        )
        sim.run(until=seconds(15))
        assert times == [0, seconds(10)]

    def test_stop(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, seconds(10), lambda: None)
        sim.at(seconds(15), timer.stop)
        sim.run(until=seconds(100))
        assert timer.fire_count == 1

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0, lambda: None)


class TestFailurePlan:
    def test_empty_plan_is_benign(self):
        plan = FailurePlan()
        assert plan.slowdown_at("x", 100) == 1.0
        assert not plan.logically_failed("x", 100)
        assert plan.notify_drop_probability("x", 100) == 0.0

    def test_windows_are_half_open(self):
        plan = FailurePlan()
        plan.add(FailureWindow("x", FailureKind.LOGICAL, 10, 20))
        assert not plan.logically_failed("x", 9)
        assert plan.logically_failed("x", 10)
        assert plan.logically_failed("x", 19)
        assert not plan.logically_failed("x", 20)

    def test_slowdowns_compound(self):
        plan = FailurePlan()
        plan.add(FailureWindow("x", FailureKind.METRIC, 0, 100, slowdown=2))
        plan.add(FailureWindow("x", FailureKind.METRIC, 0, 100, slowdown=3))
        assert plan.slowdown_at("x", 50) == 6.0

    def test_other_sites_unaffected(self):
        plan = FailurePlan()
        plan.add(FailureWindow("x", FailureKind.METRIC, 0, 100, slowdown=2))
        assert plan.slowdown_at("y", 50) == 1.0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            FailureWindow("x", FailureKind.METRIC, 10, 10)

    def test_bad_slowdown_rejected(self):
        with pytest.raises(ValueError):
            FailureWindow("x", FailureKind.METRIC, 0, 10, slowdown=0.5)

    def test_drop_probability_takes_max(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                "x", FailureKind.SILENT_NOTIFY_LOSS, 0, 100,
                drop_probability=0.3,
            )
        )
        plan.add(
            FailureWindow(
                "x", FailureKind.SILENT_NOTIFY_LOSS, 0, 100,
                drop_probability=0.8,
            )
        )
        assert plan.notify_drop_probability("x", 50) == 0.8


class TestRng:
    def test_streams_are_deterministic(self):
        a = RngRegistry(42).stream("workload")
        b = RngRegistry(42).stream("workload")
        assert [a.random() for __ in range(5)] == [
            b.random() for __ in range(5)
        ]

    def test_streams_are_independent(self):
        registry = RngRegistry(42)
        first = registry.stream("one").random()
        # Drawing from another stream must not perturb the first.
        registry2 = RngRegistry(42)
        registry2.stream("two").random()
        assert registry2.stream("one").random() == first

    def test_seed_derivation_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_stream_cached(self):
        registry = RngRegistry(0)
        assert registry.stream("x") is registry.stream("x")
