"""Tests for the simulated network, including the FIFO property."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.timebase import seconds
from repro.sim.failures import FailureKind, FailurePlan, FailureWindow
from repro.sim.network import (
    ExponentialLatency,
    FixedLatency,
    Network,
    UniformLatency,
)
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Simulator


def make_network(in_order=True, latency=None, plan=None):
    sim = Simulator()
    network = Network(
        sim,
        rng_registry=RngRegistry(1),
        default_latency=latency or FixedLatency(seconds(0.1)),
        failure_plan=plan,
        in_order=in_order,
    )
    inbox: dict[str, list] = {"a": [], "b": []}
    network.register_site("a", lambda m: inbox["a"].append(m))
    network.register_site("b", lambda m: inbox["b"].append(m))
    return sim, network, inbox


class TestDelivery:
    def test_payload_and_latency(self):
        sim, network, inbox = make_network()
        network.send("a", "b", "hello")
        sim.run()
        assert [m.payload for m in inbox["b"]] == ["hello"]
        assert inbox["b"][0].deliver_at == seconds(0.1)

    def test_duplicate_site_registration_rejected(self):
        sim, network, __ = make_network()
        with pytest.raises(ValueError):
            network.register_site("a", lambda m: None)

    def test_unknown_destination_rejected(self):
        sim, network, __ = make_network()
        with pytest.raises(ValueError):
            network.send("a", "nowhere", 1)

    def test_local_send_still_queued(self):
        sim, network, inbox = make_network()
        network.send("a", "a", "self")
        assert inbox["a"] == []  # not synchronous
        sim.run()
        assert [m.payload for m in inbox["a"]] == ["self"]


class TestFifo:
    @given(st.lists(st.integers(0, 50), min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_in_order_channels_never_reorder(self, send_gaps):
        sim, network, inbox = make_network(
            in_order=True, latency=UniformLatency(0, seconds(5))
        )
        time = 0
        for index, gap in enumerate(send_gaps):
            time += gap
            sim.at(time, lambda i=index: network.send("a", "b", i))
        sim.run()
        payloads = [m.payload for m in inbox["b"]]
        assert payloads == sorted(payloads)

    def test_free_for_all_can_reorder(self):
        sim, network, inbox = make_network(
            in_order=False, latency=UniformLatency(0, seconds(5))
        )
        for index in range(40):
            sim.at(index, lambda i=index: network.send("a", "b", i))
        sim.run()
        payloads = [m.payload for m in inbox["b"]]
        assert payloads != sorted(payloads)


class TestFailures:
    def test_logical_failure_drops_messages(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                site="b",
                kind=FailureKind.LOGICAL,
                start=0,
                end=seconds(10),
            )
        )
        sim, network, inbox = make_network(plan=plan)
        network.send("a", "b", "lost")
        sim.run(until=seconds(5))
        assert inbox["b"] == []
        assert network.messages_dropped == 1

    def test_messages_after_recovery_flow(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                site="b",
                kind=FailureKind.LOGICAL,
                start=0,
                end=seconds(10),
            )
        )
        sim, network, inbox = make_network(plan=plan)
        sim.at(seconds(20), lambda: network.send("a", "b", "ok"))
        sim.run()
        assert [m.payload for m in inbox["b"]] == ["ok"]

    def test_metric_failure_inflates_latency(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                site="a",
                kind=FailureKind.METRIC,
                start=0,
                end=seconds(10),
                slowdown=10.0,
            )
        )
        sim, network, inbox = make_network(plan=plan)
        network.send("a", "b", "slow")
        sim.run()
        assert inbox["b"][0].deliver_at == seconds(1.0)  # 0.1s x 10


class TestChannelOverrides:
    def test_override_applies_to_one_direction_only(self):
        sim, network, inbox = make_network()
        network.set_channel_latency("a", "b", FixedLatency(seconds(2)))
        network.send("a", "b", "slow")
        network.send("b", "a", "fast")
        sim.run()
        assert inbox["b"][0].deliver_at == seconds(2)
        # The reverse channel still uses the default model.
        assert inbox["a"][0].deliver_at == seconds(0.1)

    def test_latest_override_wins(self):
        sim, network, inbox = make_network()
        network.set_channel_latency("a", "b", FixedLatency(seconds(2)))
        network.set_channel_latency("a", "b", FixedLatency(seconds(3)))
        network.send("a", "b", "x")
        sim.run()
        assert inbox["b"][0].deliver_at == seconds(3)

    def test_fifo_clamp_survives_override_change(self):
        # A slow message followed (after a model swap) by a fast one must
        # still arrive second: the clamp is per-channel state, not
        # per-model.
        sim, network, inbox = make_network()
        network.set_channel_latency("a", "b", FixedLatency(seconds(5)))
        network.send("a", "b", "slow")
        network.set_channel_latency("a", "b", FixedLatency(0))
        sim.at(seconds(1), lambda: network.send("a", "b", "fast"))
        sim.run()
        assert [m.payload for m in inbox["b"]] == ["slow", "fast"]
        assert inbox["b"][1].deliver_at >= inbox["b"][0].deliver_at

    @given(st.lists(st.integers(0, 50), min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_fifo_holds_under_random_override(self, send_gaps):
        sim, network, inbox = make_network(in_order=True)
        network.set_channel_latency("a", "b", UniformLatency(0, seconds(5)))
        time = 0
        for index, gap in enumerate(send_gaps):
            time += gap
            sim.at(time, lambda i=index: network.send("a", "b", i))
        sim.run()
        payloads = [m.payload for m in inbox["b"]]
        assert payloads == sorted(payloads)


class TestChannelMetrics:
    def test_counter_histogram_and_in_flight_gauge(self):
        sim, network, inbox = make_network()
        for index in range(3):
            network.send("a", "b", index)
        registry = network.obs.metrics
        # Messages are counted on *delivery*, not on send: while in flight
        # only the gauge moves.
        assert registry.value("net_messages", src="a", dst="b") == 0
        gauge = registry.get("net_in_flight", src="a", dst="b")
        assert gauge.value == 3
        sim.run()
        assert len(inbox["b"]) == 3
        assert registry.value("net_messages", src="a", dst="b") == 3
        assert gauge.value == 0  # everything landed
        assert gauge.high == 3
        hist = registry.get("net_latency", src="a", dst="b")
        assert hist.count == 3
        assert hist.max == seconds(0.1)

    def test_message_to_failed_site_not_counted_as_delivered(self):
        # Regression: the channel counter used to tick at send time, so a
        # message dropped at a logically-failed destination still inflated
        # net_messages (and its latency entered the histogram).
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                site="b",
                kind=FailureKind.LOGICAL,
                start=seconds(1),
                end=seconds(10),
            )
        )
        sim = Simulator()
        network = Network(
            sim,
            default_latency=FixedLatency(seconds(0.1)),
            failure_plan=plan,
        )
        inbox = []
        network.register_site("a", lambda m: None)
        network.register_site("b", inbox.append)
        network.send("a", "b", "lands")  # delivers at 0.1s, before the window
        sim.at(seconds(2), lambda: network.send("a", "b", "dropped"))
        sim.run()
        registry = network.obs.metrics
        assert [m.payload for m in inbox] == ["lands"]
        assert registry.value("net_messages", src="a", dst="b") == 1
        assert registry.get("net_latency", src="a", dst="b").count == 1
        assert network.messages_sent == 2
        assert network.messages_dropped == 1

    def test_unused_channel_has_no_series(self):
        __, network, ___ = make_network()
        network.send("a", "b", "x")
        assert network.obs.metrics.get("net_messages", src="b", dst="a") is None


class TestLatencyModels:
    def test_fixed(self):
        assert FixedLatency(7).sample(None) == 7

    def test_uniform_in_bounds(self):
        import random

        model = UniformLatency(5, 10)
        rng = random.Random(0)
        samples = [model.sample(rng) for __ in range(100)]
        assert all(5 <= s <= 10 for s in samples)

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(10, 5)

    def test_exponential_at_least_base(self):
        import random

        model = ExponentialLatency(100, 50)
        rng = random.Random(0)
        assert all(model.sample(rng) >= 100 for __ in range(100))

    def test_exponential_mean_near_base_plus_extra(self):
        import random

        model = ExponentialLatency(seconds(0.1), seconds(0.05))
        rng = random.Random(7)
        samples = [model.sample(rng) for __ in range(2000)]
        mean = sum(samples) / len(samples)
        expected = seconds(0.1) + seconds(0.05)
        assert abs(mean - expected) < 0.1 * expected

    def test_models_draw_from_dedicated_channel_stream(self):
        # Two networks with the same seed sample identical latencies for
        # the same channel — reproducibility of the network stream.
        first = make_network(latency=UniformLatency(0, seconds(5)))
        second = make_network(latency=UniformLatency(0, seconds(5)))
        for sim, network, __ in (first, second):
            for index in range(5):
                sim.at(index, lambda i=index: network.send("a", "b", i))
            sim.run()
        assert [m.deliver_at for m in first[2]["b"]] == [
            m.deliver_at for m in second[2]["b"]
        ]
