"""Tests for the simulated network, including the FIFO property."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.timebase import seconds
from repro.sim.failures import FailureKind, FailurePlan, FailureWindow
from repro.sim.network import (
    ExponentialLatency,
    FixedLatency,
    Network,
    UniformLatency,
)
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Simulator


def make_network(in_order=True, latency=None, plan=None):
    sim = Simulator()
    network = Network(
        sim,
        rng_registry=RngRegistry(1),
        default_latency=latency or FixedLatency(seconds(0.1)),
        failure_plan=plan,
        in_order=in_order,
    )
    inbox: dict[str, list] = {"a": [], "b": []}
    network.register_site("a", lambda m: inbox["a"].append(m))
    network.register_site("b", lambda m: inbox["b"].append(m))
    return sim, network, inbox


class TestDelivery:
    def test_payload_and_latency(self):
        sim, network, inbox = make_network()
        network.send("a", "b", "hello")
        sim.run()
        assert [m.payload for m in inbox["b"]] == ["hello"]
        assert inbox["b"][0].deliver_at == seconds(0.1)

    def test_duplicate_site_registration_rejected(self):
        sim, network, __ = make_network()
        with pytest.raises(ValueError):
            network.register_site("a", lambda m: None)

    def test_unknown_destination_rejected(self):
        sim, network, __ = make_network()
        with pytest.raises(ValueError):
            network.send("a", "nowhere", 1)

    def test_local_send_still_queued(self):
        sim, network, inbox = make_network()
        network.send("a", "a", "self")
        assert inbox["a"] == []  # not synchronous
        sim.run()
        assert [m.payload for m in inbox["a"]] == ["self"]


class TestFifo:
    @given(st.lists(st.integers(0, 50), min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_in_order_channels_never_reorder(self, send_gaps):
        sim, network, inbox = make_network(
            in_order=True, latency=UniformLatency(0, seconds(5))
        )
        time = 0
        for index, gap in enumerate(send_gaps):
            time += gap
            sim.at(time, lambda i=index: network.send("a", "b", i))
        sim.run()
        payloads = [m.payload for m in inbox["b"]]
        assert payloads == sorted(payloads)

    def test_free_for_all_can_reorder(self):
        sim, network, inbox = make_network(
            in_order=False, latency=UniformLatency(0, seconds(5))
        )
        for index in range(40):
            sim.at(index, lambda i=index: network.send("a", "b", i))
        sim.run()
        payloads = [m.payload for m in inbox["b"]]
        assert payloads != sorted(payloads)


class TestFailures:
    def test_logical_failure_drops_messages(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                site="b",
                kind=FailureKind.LOGICAL,
                start=0,
                end=seconds(10),
            )
        )
        sim, network, inbox = make_network(plan=plan)
        network.send("a", "b", "lost")
        sim.run(until=seconds(5))
        assert inbox["b"] == []
        assert network.messages_dropped == 1

    def test_messages_after_recovery_flow(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                site="b",
                kind=FailureKind.LOGICAL,
                start=0,
                end=seconds(10),
            )
        )
        sim, network, inbox = make_network(plan=plan)
        sim.at(seconds(20), lambda: network.send("a", "b", "ok"))
        sim.run()
        assert [m.payload for m in inbox["b"]] == ["ok"]

    def test_metric_failure_inflates_latency(self):
        plan = FailurePlan()
        plan.add(
            FailureWindow(
                site="a",
                kind=FailureKind.METRIC,
                start=0,
                end=seconds(10),
                slowdown=10.0,
            )
        )
        sim, network, inbox = make_network(plan=plan)
        network.send("a", "b", "slow")
        sim.run()
        assert inbox["b"][0].deliver_at == seconds(1.0)  # 0.1s x 10


class TestLatencyModels:
    def test_fixed(self):
        assert FixedLatency(7).sample(None) == 7

    def test_uniform_in_bounds(self):
        import random

        model = UniformLatency(5, 10)
        rng = random.Random(0)
        samples = [model.sample(rng) for __ in range(100)]
        assert all(5 <= s <= 10 for s in samples)

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(10, 5)

    def test_exponential_at_least_base(self):
        import random

        model = ExponentialLatency(100, 50)
        rng = random.Random(0)
        assert all(model.sample(rng) >= 100 for __ in range(100))
