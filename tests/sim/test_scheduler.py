"""Tests for the discrete-event scheduler."""

import pytest

from repro.sim.scheduler import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(30, lambda: order.append("c"))
        sim.at(10, lambda: order.append("a"))
        sim.at(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.at(10, lambda: order.append(1))
        sim.at(10, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_now_advances_during_callbacks(self):
        sim = Simulator()
        seen = []
        sim.at(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]

    def test_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.at(10, lambda: sim.after(5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15]

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().after(-1, lambda: None)


class TestRunControl:
    def test_run_until_clamps_clock(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run(until=100)
        assert sim.now == 100

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.at(200, lambda: fired.append(True))
        sim.run(until=100)
        assert not fired
        sim.run(until=300)
        assert fired

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        handle = sim.at(10, lambda: fired.append(True))
        handle.cancel()
        sim.run()
        assert not fired

    def test_stop_from_callback(self):
        sim = Simulator()
        order = []
        sim.at(10, lambda: (order.append(1), sim.stop()))
        sim.at(20, lambda: order.append(2))
        sim.run()
        assert order == [1]

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def reenter():
            with pytest.raises(RuntimeError):
                sim.run()

        sim.at(1, reenter)
        sim.run()

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        handle = sim.at(5, lambda: None)
        sim.at(9, lambda: None)
        handle.cancel()
        assert sim.peek() == 9

    def test_cancelled_tombstones_are_compacted(self):
        # A schedule-then-cancel workload must not grow the heap without
        # bound: once tombstones dominate, the queue is rebuilt in place.
        sim = Simulator()
        keeper = sim.at(10_000, lambda: None)
        handles = [sim.at(t + 1, lambda: None) for t in range(1000)]
        for handle in handles:
            handle.cancel()
        assert not keeper.cancelled
        assert len(sim._queue) <= 2
        assert sim.peek() == 10_000

    def test_compaction_preserves_order_and_delivery(self):
        sim = Simulator()
        ran: list[int] = []
        for t in range(1, 501):
            sim.at(t, lambda t=t: ran.append(t))
        victims = [sim.at(600 + t, lambda: None) for t in range(600)]
        for handle in victims:
            handle.cancel()
        sim.run()
        assert ran == list(range(1, 501))
        assert sim.events_processed == 500

    def test_cancel_after_run_does_not_corrupt_queue(self):
        sim = Simulator()
        handle = sim.at(1, lambda: None)
        sim.at(2, lambda: None)
        sim.run()
        handle.cancel()  # already executed; must stay a no-op
        sim.at(3, lambda: None)
        assert sim.peek() == 3
