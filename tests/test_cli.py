"""Tests for the ``python -m repro`` command-line interface."""

from repro.__main__ import main


class TestCli:
    def test_menu_prints_both_menus(self, capsys):
        assert main(["menu"]) == 0
        out = capsys.readouterr().out
        assert "Interface menu" in out
        assert "Strategy menu" in out
        assert "WR(Y(n), b) -> [2] W(Y(n), b)" in out
        assert "Demarcation Protocol" in out

    def test_experiments_list_forwards(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "e11" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "experiments" in capsys.readouterr().out

    def test_demo_runs_quickstart(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "installing: propagation" in out

    def test_watch_unknown_experiment_exits_2(self, capsys):
        assert main(["watch", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_watch_streams_frames_and_verdict(self, capsys):
        assert main(["watch", "e1", "--interval", "5"]) == 0
        out = capsys.readouterr().out
        assert "watch e1" in out
        assert "shells:" in out
        assert "REPRODUCED" in out
