"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.events import reset_event_sequence
from repro.core.items import DataItemRef
from repro.core.trace import ExecutionTrace


@pytest.fixture(autouse=True)
def _fresh_event_numbering():
    """Keep event sequence numbers independent across tests."""
    reset_event_sequence()
    yield


@pytest.fixture
def trace() -> ExecutionTrace:
    return ExecutionTrace()


def make_timeline_trace(
    histories: dict[str, list[tuple[int, object]]], horizon: int
) -> ExecutionTrace:
    """Build a trace whose item timelines follow the given change lists.

    ``histories`` maps item names to ``[(time_ticks, value), ...]``; a change
    at time 0 becomes a seed, later changes become spontaneous writes.  All
    changes across items are recorded in global time order, as a real
    execution would.
    """
    from repro.core.events import spontaneous_write_desc
    from repro.core.items import MISSING

    trace = ExecutionTrace()
    changes: list[tuple[int, str, object]] = []
    for name, history in histories.items():
        for time, value in history:
            if time == 0:
                trace.seed(DataItemRef(name), value)
            else:
                changes.append((time, name, value))
    for time, name, value in sorted(changes, key=lambda c: c[0]):
        ref = DataItemRef(name)
        old = trace.current_value(ref)
        trace.record(
            time, "site", spontaneous_write_desc(ref, old, value)
        )
    trace.close(horizon)
    return trace
