"""Bench E7 — Section 6.4 periodic guarantees (banking EOD batch)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e7_periodic


def test_e7_periodic(benchmark):
    run_experiment_benchmark(benchmark, e7_periodic.run)
