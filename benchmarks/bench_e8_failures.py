"""Bench E8 — Section 5 failure handling (metric/logical/silent matrix)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e8_failures


def test_e8_failures(benchmark):
    run_experiment_benchmark(benchmark, e8_failures.run)
