"""Bench E6 — Section 6.3 monitor strategy (Flag/Tb soundness vs kappa)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e6_monitor


def test_e6_monitor(benchmark):
    run_experiment_benchmark(benchmark, e6_monitor.run)
