"""The multi-core push: phase-A matching on worker processes.

The throughput bench (``bench_throughput.py``) measures the batched +
sharded hot path inside one interpreter; this one measures what the
process-backed worker pool (``shard_workers=N``) buys *across* cores: a
million-notification workload (reduce with ``BENCH_MULTICORE_EVENTS``;
CI smokes at 50k) is driven through one shell with worker counts
{1, 2, 4, 8} at a fixed shard count, plus the in-process serial
reference (``workers=0``), and the min-of-N events/sec of each
configuration lands in ``BENCH_multicore.json``.

Both rates of the throughput bench are reported per configuration —
``ingest`` (matching + conditions + firing, trace still lazy) and
``settled`` (every Event materialized and indexed, at a reduced count).

The file records ``cpus`` (``os.cpu_count()``) and the hard scaling
guards — >= 2x settled events/sec at 4+ workers over the 1-worker pool,
and >= 600k events/sec best ingest — only arm when the machine actually
has 4+ cores: a 1-CPU container can only measure the pool's overhead,
not its speedup, and the JSON says which measurement it took.

The worker pool is warmed (spawned, rules compiled, match caches
populated) before the clock starts: pool startup is a per-scenario cost,
not a per-event one, and it is reported separately as ``warmup_seconds``.
"""

import os
import time

from bench_helpers import throughput_stats, update_bench_json

from repro.cm import ConstraintManager, Scenario
from repro.core.dsl import parse_rule
from repro.workloads.generators import notification_stream

FAMILIES = 64
KEYS_PER_FAMILY = 16
FIRING_FAMILIES = 16  # one in four events fires a rule

EVENTS = int(os.environ.get("BENCH_MULTICORE_EVENTS", "1000000"))
ROUNDS = int(os.environ.get("BENCH_MULTICORE_ROUNDS", "2"))
#: Event count for the settled (full-flush) probe, bounded like the
#: throughput bench so the materialized trace stays in a sane working set.
SETTLE_EVENTS = min(EVENTS, 200_000)

BATCH = 256
SHARDS = 16
WORKER_COUNTS = (0, 1, 2, 4, 8)  # 0 = in-process serial reference
CPUS = os.cpu_count() or 1


def _build_shell(workers: int):
    cm = ConstraintManager(
        Scenario(
            seed=0,
            dispatch_shards=SHARDS,
            shard_workers=workers,
        )
    )
    cm.add_site("bench")
    shell = cm.shell("bench")
    for i in range(FIRING_FAMILIES):
        shell.install(
            parse_rule(f"N(fam{i}(n), b) -> [1] FALSE", name=f"r{i}")
        )
    return cm, shell


def _workload(count: int):
    return notification_stream(
        [f"fam{i}" for i in range(FAMILIES)],
        KEYS_PER_FAMILY,
        count,
        seed=0,
    )


def _timed_round(descs, workers: int, settle: bool) -> tuple[float, float]:
    """One fresh scenario: returns (warmup seconds, timed seconds)."""
    cm, shell = _build_shell(workers)
    try:
        # Spawn the pool, compile rules on the workers, populate the
        # per-shard candidate caches — none of that is per-event cost.
        warm_started = time.perf_counter()
        shell.ingest_batch(descs[:BATCH], time=0)
        warmup = time.perf_counter() - warm_started
        ingest = shell.ingest_batch
        started = time.perf_counter()
        for start in range(BATCH, len(descs), BATCH):
            ingest(descs[start : start + BATCH], time=0)
        if settle:
            assert len(shell.trace.events) >= len(descs)
        return warmup, time.perf_counter() - started
    finally:
        shell.close()


def _sweep_key(workers: int, count: int) -> str:
    return f"ingest_w{workers}_s{SHARDS}_n{count}"


def test_multicore_sweep():
    """The worker-count sweep plus the scaling guards (4+ core machines):
    settled events/sec at 4+ workers >= 2x the 1-worker pool, and best
    ingest >= 600k events/sec."""
    descs = _workload(EVENTS)
    settle_descs = descs[:SETTLE_EVENTS]
    ingest_rates: dict[int, float] = {}
    settled_rates: dict[int, float] = {}
    for workers in WORKER_COUNTS:
        warmups: list[float] = []
        ingest_walls: list[float] = []
        settled_walls: list[float] = []
        for _ in range(ROUNDS):
            warmup, wall = _timed_round(descs, workers, settle=False)
            warmups.append(warmup)
            ingest_walls.append(wall)
            __, wall = _timed_round(settle_descs, workers, settle=True)
            settled_walls.append(wall)
        timed_events = EVENTS - BATCH  # the warmup batch is not timed
        stats = throughput_stats(timed_events, ingest_walls)
        stats["workers"] = workers
        stats["shards"] = SHARDS
        stats["batch"] = BATCH
        stats["cpus"] = CPUS
        stats["warmup_seconds"] = min(warmups)
        stats["settled"] = throughput_stats(
            SETTLE_EVENTS - BATCH, settled_walls
        )
        ingest_rates[workers] = stats["events_per_second"]
        settled_rates[workers] = stats["settled"]["events_per_second"]
        update_bench_json("multicore", _sweep_key(workers, EVENTS), stats)

    best_workers = max(ingest_rates, key=ingest_rates.get)
    best_ingest = ingest_rates[best_workers]
    wide_settled = max(
        (settled_rates[w] for w in WORKER_COUNTS if w >= 4), default=0.0
    )
    pool_baseline = settled_rates.get(1, 0.0)
    scaling = wide_settled / pool_baseline if pool_baseline else 0.0
    guards_armed = CPUS >= 4
    update_bench_json(
        "multicore",
        "headline",
        {
            "events": EVENTS,
            "rounds": ROUNDS,
            "cpus": CPUS,
            "guards_armed": guards_armed,
            "best_events_per_second": best_ingest,
            "best_workers": best_workers,
            "settled_1_worker": pool_baseline,
            "settled_4plus_workers": wide_settled,
            "settled_scaling_4plus_vs_1": scaling,
        },
    )
    if not guards_armed:
        # One core cannot demonstrate multi-core scaling; the sweep still
        # measured the pool's overhead and the JSON records cpus=<n> so
        # downstream tooling knows which measurement this was.
        return
    assert scaling >= 2.0, (
        f"settled rate at 4+ workers is only {scaling:.2f}x the 1-worker "
        f"pool ({wide_settled:,.0f} vs {pool_baseline:,.0f} events/sec); "
        f"the budget is 2x"
    )
    assert best_ingest >= 600_000, (
        f"best configuration (workers={best_workers}) reached only "
        f"{best_ingest:,.0f} events/sec ingest; the target is 600k"
    )


def test_worker_pool_overhead_is_bounded():
    """Even on one core, the worker pool must not collapse: a 1-worker
    pool pays codec shipping + a pipe round trip per batch, and that tax
    is bounded (>= 1/16 of the serial in-process rate on the same
    workload) — a floor that catches accidental per-event respawns or
    quadratic encode costs without demanding real parallelism.  The
    floor is deliberately loose: on a single busy core the observed
    ratio swings 0.12x-0.50x run to run."""
    descs = _workload(min(EVENTS, 100_000))
    __, serial_wall = _timed_round(descs, 0, settle=False)
    __, pooled_wall = _timed_round(descs, 1, settle=False)
    ratio = serial_wall / pooled_wall if pooled_wall else 0.0
    update_bench_json(
        "multicore",
        f"pool_overhead_n{len(descs)}",
        {
            "events": len(descs),
            "cpus": CPUS,
            "serial_wall_seconds": serial_wall,
            "one_worker_wall_seconds": pooled_wall,
            "one_worker_relative_rate": ratio,
        },
    )
    assert ratio >= 0.0625, (
        f"a 1-worker pool runs at {ratio:.3f}x the serial in-process rate; "
        f"the floor is 0.0625x (pipe + codec tax must stay bounded)"
    )
