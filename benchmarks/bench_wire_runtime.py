"""Bench the wire runtime: sim-vs-wire equivalence plus socket latency.

Runs the randomized equivalence harness on several seeds (the wire
execution must be Appendix-A valid with guarantee verdicts identical to
the sim kernel's) and one dedicated wire run whose per-channel
``wire_latency_ms`` histograms digest what loopback TCP actually cost in
real milliseconds.  Writes ``BENCH_wire_runtime.json`` for CI upload.
"""

import time

from bench_helpers import write_bench_json

from repro.core.timebase import seconds
from repro.experiments.common import build_salary_scenario
from repro.runtime import AsyncRuntime, run_equivalence
from repro.workloads import PersonnelWorkload

SEEDS = (0, 1, 2)
#: Conservative on purpose: CI runners are noisy, and the scenario's
#: tightest rule-delay bound (1 virtual second) must stay comfortably
#: above event-loop scheduling jitter (50 wall ms of headroom at 20x).
TIME_SCALE = 20.0
VIRTUAL_SECONDS = 40.0


def wire_latency_digest() -> dict:
    """One wire run; real-ms latency stats per channel."""
    salary = build_salary_scenario(
        strategy_kind="propagation",
        seed=0,
        runtime=AsyncRuntime(time_scale=TIME_SCALE),
    )
    PersonnelWorkload(
        salary.cm,
        employee_count=6,
        rate=0.5,
        duration=seconds(VIRTUAL_SECONDS - 10.0),
    )
    started = time.perf_counter()
    salary.cm.run(until=seconds(VIRTUAL_SECONDS))
    wall = time.perf_counter() - started
    registry = salary.scenario.obs.metrics
    channels = {}
    for hist in registry.series("wire_latency_ms"):
        if not hist.count:
            continue
        labels = dict(hist.labels)
        channels[f"{labels['src']}->{labels['dst']}"] = {
            "count": hist.count,
            "mean_ms": round(hist.mean, 3),
            "min_ms": round(hist.min, 3),
            "max_ms": round(hist.max, 3),
        }
    network = salary.scenario.network
    return {
        "time_scale": TIME_SCALE,
        "virtual_seconds": VIRTUAL_SECONDS,
        "wall_seconds": round(wall, 3),
        "messages_delivered": network.messages_delivered,
        "channels": channels,
    }


def test_wire_equivalence_and_latency(benchmark):
    def run_all():
        reports = [run_equivalence(seed=s) for s in SEEDS]
        return reports, wire_latency_digest()

    reports, latency = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert all(r.ok for r in reports), "\n".join(r.render() for r in reports)
    assert latency["messages_delivered"] >= 1
    benchmark.extra_info["equivalence_ok"] = True
    benchmark.extra_info["seeds"] = list(SEEDS)
    write_bench_json(
        "wire_runtime",
        {
            "seeds": list(SEEDS),
            "equivalence": {
                str(report.seed): report.to_dict() for report in reports
            },
            "wire_latency": latency,
        },
    )
