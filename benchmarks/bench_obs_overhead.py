"""Observability-overhead guards for the flight recorder and rule profiling.

The flight recorder is pitched as *always affordable*: one dict lookup and
one bounded-deque append per digest, no formatting on the hot path.  This
file holds it to that pitch — flight-recorder-on dispatch must stay within
10% of the no-sink baseline — and records the measured ratios (plus the
opt-in rule-profiling cost, which has no budget but is tracked) into
``BENCH_obs_overhead.json``.

It also regenerates ``flight_dump_sample.json``: a real incident dump from
a failure-injection run, uploaded as a CI artifact so the dump format the
docs describe is always one click away.
"""

import json
import time

from bench_helpers import REPO_ROOT, update_bench_json

from bench_core_micro import N_DISPATCH_EVENTS, _build_dispatch_shell

FLIGHT_OVERHEAD_BUDGET = 1.10  # flight-on dispatch <= 110% of no-sink


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _best_of_alternating(first, second, rounds: int = 30):
    """Min-of-N with alternating order: the least-noise cost estimate of
    each loop, insulated from cache-warming and scheduling drift."""
    for fn in (first, second, first, second):
        fn()  # warm-up
    best_first = best_second = float("inf")
    for round_index in range(rounds):
        if round_index % 2 == 0:
            t_1, t_2 = _timed(first), _timed(second)
        else:
            t_2, t_1 = _timed(second), _timed(first)
        best_first = min(best_first, t_1)
        best_second = min(best_second, t_2)
    return best_first, best_second


def test_flight_recorder_overhead_under_budget():
    """Dispatch with the flight recorder on must cost < 10% over the
    no-sink baseline (same rules, same events, compiled dispatch)."""
    baseline_shell, baseline_events = _build_dispatch_shell(1000)
    flight_shell, flight_events = _build_dispatch_shell(1000)
    flight = flight_shell.obs.enable_flight()
    assert not baseline_shell.obs.enabled
    assert flight_shell.obs.enabled and not flight_shell.obs.tracer.enabled

    def baseline() -> None:
        for event in baseline_events:
            baseline_shell.deliver_local_event(event)

    def flight_on() -> None:
        for event in flight_events:
            flight_shell.deliver_local_event(event)

    best_flight, best_baseline = _best_of_alternating(flight_on, baseline)
    ratio = best_flight / best_baseline
    update_bench_json(
        "obs_overhead",
        "flight_recorder_dispatch",
        {
            "flight_seconds": best_flight,
            "baseline_seconds": best_baseline,
            "overhead_ratio": ratio,
            "budget_ratio": FLIGHT_OVERHEAD_BUDGET,
            "events_per_run": N_DISPATCH_EVENTS,
            "records_taken": flight.records_taken,
        },
    )
    assert flight.records_taken > 0, "the recorder must actually record"
    assert len(flight) <= flight.capacity  # bounded, however long the run
    assert ratio < FLIGHT_OVERHEAD_BUDGET, (
        f"flight-recorder overhead {100 * (ratio - 1):.1f}% exceeds the "
        f"10% budget "
        f"({best_flight * 1e3:.2f}ms vs {best_baseline * 1e3:.2f}ms)"
    )


def test_rule_profiling_cost_is_tracked():
    """Per-rule profiling is opt-in and allowed to cost more (it times
    every firing with ``perf_counter_ns``); there is no budget, but the
    ratio lands in the bench JSON so its trajectory is visible."""
    baseline_shell, baseline_events = _build_dispatch_shell(1000)
    profiled_shell, profiled_events = _build_dispatch_shell(1000)
    profiled_shell.obs.enable_rule_profiling()

    def baseline() -> None:
        for event in baseline_events:
            baseline_shell.deliver_local_event(event)

    def profiled() -> None:
        for event in profiled_events:
            profiled_shell.deliver_local_event(event)

    best_profiled, best_baseline = _best_of_alternating(profiled, baseline)
    update_bench_json(
        "obs_overhead",
        "rule_profiling_dispatch",
        {
            "profiled_seconds": best_profiled,
            "baseline_seconds": best_baseline,
            "overhead_ratio": best_profiled / best_baseline,
        },
    )
    stats = profiled_shell.stats()
    assert stats["match_hits"] + stats["match_misses"] > 0


def test_regenerate_flight_dump_sample():
    """A real incident dump for the CI artifact: the salary scenario with
    the flight recorder on, a logical failure injected mid-run, and the
    run report's flight section written to ``flight_dump_sample.json``."""
    from repro.cm.failures import FailureNotice
    from repro.core.timebase import seconds
    from repro.experiments.common import build_salary_scenario
    from repro.sim.failures import FailureKind

    salary = build_salary_scenario("propagation")
    cm = salary.cm
    cm.scenario.obs.enable_flight()
    cm.spontaneous_write("salary1", ("e1",), 50_000.0)
    cm.scenario.sim.at(
        seconds(10),
        lambda: cm.shell("ny").report_failure(
            FailureNotice(
                site="ny",
                source_name="hq",
                kind=FailureKind.LOGICAL,
                time=seconds(10),
                detail="injected outage (benchmark sample)",
            )
        ),
    )
    cm.run(seconds(30))
    report = cm.run_report()
    assert report.flight["dumps"], "the injected failure must dump"

    path = REPO_ROOT / "flight_dump_sample.json"
    path.write_text(
        json.dumps(report.flight, indent=2, sort_keys=True, default=str)
        + "\n",
        encoding="utf-8",
    )
    sample = json.loads(path.read_text(encoding="utf-8"))
    reasons = [dump["reason"] for dump in sample["dumps"]]
    assert any(reason.startswith("failure:ny:hq:") for reason in reasons)
    assert any(reason.startswith("guarantee:") for reason in reasons)
