"""Bench E9 — Sections 4.2.3/4.3 reconfiguration cost (spec-only changes)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e9_reconfig


def test_e9_reconfig(benchmark):
    run_experiment_benchmark(benchmark, e9_reconfig.run)
