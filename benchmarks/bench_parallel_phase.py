"""Plan-driven dispatch: what certified parallel phases cost and buy.

A shell carries ``2*PAIRS`` rules arranged so the certified plan is
non-trivial by construction: ``rA_i`` and ``rB_i`` both blind-write the
shared ``count{i}`` marker (a real ww conflict per pair), while every
cross-pair combination commutes — so the greedy coloring yields exactly
two open phases with ``PAIRS`` rules each and ``2 * C(PAIRS, 2)``
certified pairs.  Every rule's condition is store-free (compares the
notified value against a constant), which makes the whole rule set
eligible for both hoisting and worker-side condition evaluation.

The sweep drives the same notification workload (reduce with
``BENCH_PARALLEL_PHASE_EVENTS``; CI smokes at 50k) through the sharded
batch path with the plan off and on, in-process and with a worker pool,
and records min-of-N ingest rates in ``BENCH_parallel_phase.json``.

Hoisting moves condition evaluation, it does not delete it, so the
in-process configurations measure the plan's *overhead*; the worker
configurations measure what shipping store-free conditions off the GIL
buys.  The hard guard — plan-on must hold >= 0.5x the plan-off rate on
the same substrate — only arms on 4+ core machines, where the numbers
mean what they say.
"""

import os
import time

from bench_helpers import throughput_stats, update_bench_json

from repro.cm import ConstraintManager, Scenario
from repro.core.dsl import parse_rule
from repro.workloads.generators import notification_stream

PAIRS = 8
KEYS_PER_FAMILY = 16

EVENTS = int(os.environ.get("BENCH_PARALLEL_PHASE_EVENTS", "400000"))
ROUNDS = int(os.environ.get("BENCH_PARALLEL_PHASE_ROUNDS", "2"))

BATCH = 256
SHARDS = 16
CPUS = os.cpu_count() or 1
#: (label, parallel_phases, shard_workers) configurations swept.
CONFIGS = (
    ("plan_off", False, 0),
    ("plan_on", True, 0),
    ("plan_off_w4", False, 4),
    ("plan_on_w4", True, 4),
)


def _build_shell(parallel: bool, workers: int):
    cm = ConstraintManager(
        Scenario(
            seed=0,
            dispatch_shards=SHARDS,
            shard_workers=workers,
            parallel_phases=parallel,
        )
    )
    cm.add_site("bench")
    shell = cm.shell("bench")
    for i in range(PAIRS):
        shell.install(
            parse_rule(
                f"N(famA{i}(n), b) & (b > 2) -> [0] W(count{i}, b)",
                name=f"rA{i}",
            )
        )
        shell.install(
            parse_rule(
                f"N(famB{i}(n), b) & (b > 2) -> [0] W(count{i}, b)",
                name=f"rB{i}",
            )
        )
    return cm, shell


def _workload(count: int):
    families = [f"famA{i}" for i in range(PAIRS)] + [
        f"famB{i}" for i in range(PAIRS)
    ]
    return notification_stream(families, KEYS_PER_FAMILY, count, seed=0)


def _timed_round(descs, parallel: bool, workers: int) -> float:
    cm, shell = _build_shell(parallel, workers)
    try:
        # Warm outside the clock: pool spawn, rule compilation, plan
        # construction, candidate caches.
        shell.ingest_batch(descs[:BATCH], time=0)
        ingest = shell.ingest_batch
        started = time.perf_counter()
        for start in range(BATCH, len(descs), BATCH):
            ingest(descs[start : start + BATCH], time=0)
        return time.perf_counter() - started
    finally:
        shell.close()


def test_plan_shape_is_non_trivial():
    """The construction's promise: two open phases of PAIRS rules each,
    everything hoistable and store-free, every ww conflict anticipated."""
    cm, shell = _build_shell(parallel=True, workers=0)
    try:
        plan = shell.parallel_plan()
        open_phases = [p for p in plan.phases if not p.barrier]
        assert len(open_phases) == 2
        assert all(len(p.rules) == PAIRS for p in open_phases)
        assert plan.certified_pairs == 2 * (PAIRS * (PAIRS - 1) // 2)
        assert len(plan.conflicts) == PAIRS
        assert len(plan.store_free) == 2 * PAIRS
        update_bench_json(
            "parallel_phase",
            "plan",
            {
                "rules": 2 * PAIRS,
                "open_phases": len(open_phases),
                "certified_pairs": plan.certified_pairs,
                "conflicts": len(plan.conflicts),
                "store_free": len(plan.store_free),
            },
        )
    finally:
        shell.close()


def test_parallel_phase_sweep():
    """Plan off/on, serial and worker-pooled, same workload; the guard
    (4+ cores only) is an overhead ceiling, not a speedup claim."""
    descs = _workload(EVENTS)
    rates: dict[str, float] = {}
    for label, parallel, workers in CONFIGS:
        walls = [
            _timed_round(descs, parallel, workers) for _ in range(ROUNDS)
        ]
        stats = throughput_stats(EVENTS - BATCH, walls)
        stats["parallel_phases"] = parallel
        stats["workers"] = workers
        stats["shards"] = SHARDS
        stats["batch"] = BATCH
        stats["cpus"] = CPUS
        rates[label] = stats["events_per_second"]
        update_bench_json(
            "parallel_phase", f"ingest_{label}_n{EVENTS}", stats
        )

    guards_armed = CPUS >= 4
    update_bench_json(
        "parallel_phase",
        "headline",
        {
            "events": EVENTS,
            "rounds": ROUNDS,
            "cpus": CPUS,
            "guards_armed": guards_armed,
            "plan_off": rates["plan_off"],
            "plan_on": rates["plan_on"],
            "plan_overhead_ratio": (
                rates["plan_on"] / rates["plan_off"]
                if rates["plan_off"]
                else 0.0
            ),
            "plan_off_w4": rates["plan_off_w4"],
            "plan_on_w4": rates["plan_on_w4"],
        },
    )
    if not guards_armed:
        # Undersized machines still record the sweep; cpus=<n> in the
        # JSON tells downstream tooling which measurement this was.
        return
    for off, on in (("plan_off", "plan_on"), ("plan_off_w4", "plan_on_w4")):
        ratio = rates[on] / rates[off] if rates[off] else 0.0
        assert ratio >= 0.5, (
            f"plan-driven dispatch holds only {ratio:.2f}x of the "
            f"{off} rate ({rates[on]:,.0f} vs {rates[off]:,.0f} "
            f"events/sec); the overhead budget is 2x"
        )
