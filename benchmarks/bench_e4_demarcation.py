"""Bench E4 — Section 6.1 Demarcation Protocol (X <= Y always; policies)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e4_demarcation


def test_e4_demarcation(benchmark):
    run_experiment_benchmark(benchmark, e4_demarcation.run)
