"""Microbenchmarks of the toolkit's hot paths.

Not tied to a paper table — these quantify the substrate itself (simulator
event throughput, SQL engine, rule matching, guarantee checking) so
regressions in the machinery underneath the experiments are visible.

Each test also records its wall-clock cost (and, for dispatch, the counter
values) into ``BENCH_core_micro.json``; the instrumentation-overhead guard
additionally asserts the no-sink observability hooks cost < 5% of dispatch.
"""

import time

import pytest

from bench_helpers import update_bench_json

from repro.cm import ConstraintManager, Scenario
from repro.core.dsl import parse_rule
from repro.core.events import EventKind, notify_desc, spontaneous_write_desc
from repro.core.guarantees import follows
from repro.core.items import MISSING, DataItemRef, item
from repro.core.rules import RhsStep, Rule
from repro.core.templates import FALSE_TEMPLATE, Template, match_desc
from repro.core.terms import FAMILY_WILDCARD, ItemPattern, Var
from repro.core.trace import ExecutionTrace
from repro.core.timebase import seconds
from repro.ris.relational import RelationalDatabase
from repro.sim.scheduler import Simulator


def _record_micro(key: str, run, extra: dict | None = None) -> None:
    """One extra timed run, persisted to BENCH_core_micro.json."""
    started = time.perf_counter()
    run()
    payload = {"wall_seconds": time.perf_counter() - started}
    if extra:
        payload.update(extra)
    update_bench_json("core_micro", key, payload)


def test_simulator_event_throughput(benchmark):
    def run() -> int:
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 10_000:
                sim.after(1, tick)

        sim.after(1, tick)
        sim.run()
        return counter[0]

    assert benchmark(run) == 10_000
    _record_micro("simulator_event_throughput", run, {"events": 10_000})


def test_sql_insert_select_throughput(benchmark):
    def run() -> int:
        db = RelationalDatabase("bench")
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v REAL)")
        for key in range(500):
            db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (key, key * 1.5))
        total = 0
        for key in range(0, 500, 7):
            total += len(db.query("SELECT v FROM t WHERE k = ?", (key,)))
        return total

    assert benchmark(run) > 0
    _record_micro("sql_insert_select_throughput", run)


def test_rule_matching_throughput(benchmark):
    rule = parse_rule("N(salary1(n), b) -> [5] WR(salary2(n), b)")
    descs = [
        notify_desc(item("salary1", f"e{i}"), float(i)) for i in range(1000)
    ]

    def run() -> int:
        matched = 0
        for desc in descs:
            if match_desc(rule.lhs, desc) is not None:
                matched += 1
        return matched

    assert benchmark(run) == 1000
    _record_micro("rule_matching_throughput", run, {"descs": 1000})


# -- rule dispatch: indexed vs linear -----------------------------------------
#
# The dispatch mix mirrors a big federation: one prohibition rule per item
# family, plus one family-wildcard rule per 50 (those land in the index's
# catch-all bucket, so every event still consults them).  Prohibition RHSs
# keep the measurement pure dispatch — no translator or network work.

N_DISPATCH_EVENTS = 200


def _dispatch_rules(n_rules: int) -> list[Rule]:
    rules = []
    for i in range(n_rules):
        if i % 50 == 49:
            lhs = Template(
                EventKind.NOTIFY,
                ItemPattern(FAMILY_WILDCARD, (Var("n"),)),
                (Var("b"),),
            )
            rules.append(
                Rule(
                    name=f"r{i}",
                    lhs=lhs,
                    delay=0,
                    steps=(RhsStep(FALSE_TEMPLATE),),
                )
            )
        else:
            rules.append(
                parse_rule(f"N(fam{i}(n), b) -> [1] FALSE", name=f"r{i}")
            )
    return rules


def _dispatch_descs(n_rules: int):
    return [
        notify_desc(item(f"fam{i % n_rules}", "e"), float(i))
        for i in range(N_DISPATCH_EVENTS)
    ]


def _build_dispatch_shell(n_rules: int, compiled: bool = True):
    cm = ConstraintManager(Scenario(seed=0))
    cm.add_site("bench")
    shell = cm.shell("bench")
    for rule in _dispatch_rules(n_rules):
        shell.install(rule, compiled=compiled)
    events = [
        cm.scenario.trace.record(seconds(i + 1), "bench", desc)
        for i, desc in enumerate(_dispatch_descs(n_rules))
    ]
    return shell, events


@pytest.mark.parametrize("n_rules", [10, 100, 1000])
def test_indexed_dispatch(benchmark, n_rules):
    # compiled=False: this is the tree-walking reference baseline that the
    # compiled_dispatch benchmarks below are measured against.
    shell, events = _build_dispatch_shell(n_rules, compiled=False)

    def run() -> int:
        for event in events:
            shell.deliver_local_event(event)
        return shell.rules_fired

    assert benchmark(run) > 0
    stats = shell.stats()
    linear_would_consider = (
        stats["rules_installed"] * stats["events_processed"]
    )
    _record_micro(f"indexed_dispatch_{n_rules}", run, {"dispatch": stats})
    # The index must prune hard at scale: >= 5x fewer candidate
    # evaluations than a linear scan at 1000 installed rules.
    if n_rules >= 1000:
        assert stats["candidates_considered"] * 5 <= linear_would_consider


@pytest.mark.parametrize("n_rules", [10, 100, 1000])
def test_compiled_dispatch(benchmark, n_rules):
    shell, events = _build_dispatch_shell(n_rules)
    assert shell.stats()["rules_compiled"] == n_rules

    def run() -> int:
        for event in events:
            shell.deliver_local_event(event)
        return shell.rules_fired

    assert benchmark(run) > 0
    _record_micro(
        f"compiled_dispatch_{n_rules}", run, {"dispatch": shell.stats()}
    )


def test_compiled_dispatch_speedup_at_scale():
    """The install-time rule programs must beat the tree-walking reference
    by >= 3x on the 1000-rule dispatch mix (the ISSUE's acceptance bar)."""
    compiled_shell, compiled_events = _build_dispatch_shell(1000)
    reference_shell, reference_events = _build_dispatch_shell(
        1000, compiled=False
    )

    def compiled_run() -> None:
        for event in compiled_events:
            compiled_shell.deliver_local_event(event)

    def reference_run() -> None:
        for event in reference_events:
            reference_shell.deliver_local_event(event)

    def timed(fn) -> float:
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    for fn in (compiled_run, reference_run, compiled_run, reference_run):
        fn()  # warm-up
    best_compiled = best_reference = float("inf")
    for round_index in range(20):
        if round_index % 2 == 0:
            t_c, t_r = timed(compiled_run), timed(reference_run)
        else:
            t_r, t_c = timed(reference_run), timed(compiled_run)
        best_compiled = min(best_compiled, t_c)
        best_reference = min(best_reference, t_r)

    speedup = best_reference / best_compiled
    update_bench_json(
        "core_micro",
        "compiled_dispatch_speedup_1000",
        {
            "compiled_seconds": best_compiled,
            "interpreted_seconds": best_reference,
            "speedup": speedup,
        },
    )
    assert speedup >= 3.0, (
        f"compiled dispatch is only {speedup:.2f}x faster than the "
        f"interpreted baseline at 1000 rules "
        f"({best_compiled * 1e3:.2f}ms vs {best_reference * 1e3:.2f}ms); "
        f"the budget is 3x"
    )


@pytest.mark.parametrize("n_rules", [10, 100, 1000])
def test_linear_scan_dispatch_baseline(benchmark, n_rules):
    rules = _dispatch_rules(n_rules)
    descs = _dispatch_descs(n_rules)

    def run() -> int:
        fired = 0
        for desc in descs:
            for rule in rules:
                if match_desc(rule.lhs, desc) is not None:
                    fired += 1
        return fired

    assert benchmark(run) >= N_DISPATCH_EVENTS
    _record_micro(f"linear_scan_dispatch_{n_rules}", run)


def test_guarantee_checker_on_large_trace(benchmark):
    trace = ExecutionTrace()
    x, y = DataItemRef("X"), DataItemRef("Y")
    time = 0
    for index in range(2000):
        time += seconds(1)
        trace.record(
            time, "a",
            spontaneous_write_desc(x, trace.current_value(x), index),
        )
        trace.record(
            time + seconds(0.1), "b",
            spontaneous_write_desc(y, trace.current_value(y), index),
        )
    trace.close(time + seconds(10))
    guarantee = follows("X", "Y", within_seconds=2)

    def run() -> bool:
        return guarantee.check(trace).valid

    assert benchmark(run)
    _record_micro("guarantee_checker_large_trace", run, {"writes": 4000})


def test_shell_events_per_second(benchmark):
    """End-to-end events/sec budget: the full Section 4.2 salary scenario
    (workload, network, translators, guarantees) with compiled dispatch.

    This is the number the ISSUE's perf budget tracks — dispatched events
    per wall-clock second over a complete scenario, not a microloop.
    """
    from repro.experiments.common import build_salary_scenario
    from repro.workloads import PersonnelWorkload

    def run() -> int:
        salary = build_salary_scenario(strategy_kind="propagation", seed=3)
        PersonnelWorkload(
            salary.cm, employee_count=20, rate=2.0, duration=seconds(300)
        )
        salary.cm.run(until=seconds(400))
        return salary.cm.stats()["total"]["events_processed"]

    events_processed = benchmark(run)
    assert events_processed > 0

    started = time.perf_counter()
    events_processed = run()
    wall = time.perf_counter() - started
    update_bench_json(
        "core_micro",
        "shell_events_per_second",
        {
            "wall_seconds": wall,
            "events_processed": events_processed,
            "events_per_second": events_processed / wall,
        },
    )


# -- instrumentation overhead (PR 2 guard) ------------------------------------
#
# The observability hooks must be near-free when no sink is attached: the
# shell's hot path pays registry-counter increments (attribute increments on
# interned Counter objects) plus one ``obs.enabled`` check.  The baseline
# below replicates the pre-instrumentation dispatch loop — same index, same
# matchers, same RHS execution, plain instance-attribute counters — and the
# instrumented path must stay within 5% of it.


class _UninstrumentedDispatch:
    """Replica of the shell dispatch loop before the metrics registry."""

    def __init__(self, shell):
        self.shell = shell
        self.events_processed = 0
        self.candidates_considered = 0
        self.rules_fired = 0

    def process(self, event) -> None:
        self.events_processed += 1
        shell = self.shell
        for installed in shell._index.candidates(event.desc):
            self.candidates_considered += 1
            bindings = installed.matcher(event.desc)
            if bindings is None:
                continue
            rule = installed.rule
            if not shell._lhs_condition_holds(rule, bindings):
                continue
            self.rules_fired += 1
            rhs_site = installed.rhs_site
            if rhs_site is None or rhs_site == shell.site:
                shell._execute_rhs(rule, bindings, event)


def test_instrumentation_overhead_no_sink():
    # compiled=False: the replica below reproduces the *interpreted*
    # dispatch loop, so the instrumented side must run interpreted too.
    shell, events = _build_dispatch_shell(1000, compiled=False)
    assert not shell.obs.enabled and not shell.obs.sinks
    baseline = _UninstrumentedDispatch(shell)

    def instrumented() -> None:
        for event in events:
            shell.deliver_local_event(event)

    def uninstrumented() -> None:
        for event in events:
            baseline.process(event)

    def timed(fn) -> float:
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    # Warm-up, then alternating-order min-of-N: the minimum over many
    # rounds is the least-noise estimate of each loop's true cost.
    for fn in (instrumented, uninstrumented, instrumented, uninstrumented):
        fn()
    best_instrumented = best_baseline = float("inf")
    for round_index in range(30):
        if round_index % 2 == 0:
            t_i, t_b = timed(instrumented), timed(uninstrumented)
        else:
            t_b, t_i = timed(uninstrumented), timed(instrumented)
        best_instrumented = min(best_instrumented, t_i)
        best_baseline = min(best_baseline, t_b)

    ratio = best_instrumented / best_baseline
    update_bench_json(
        "core_micro",
        "instrumentation_overhead_no_sink",
        {
            "instrumented_seconds": best_instrumented,
            "baseline_seconds": best_baseline,
            "overhead_ratio": ratio,
        },
    )
    assert ratio < 1.05, (
        f"no-sink instrumentation overhead {100 * (ratio - 1):.1f}% "
        f"exceeds the 5% budget "
        f"({best_instrumented * 1e3:.2f}ms vs {best_baseline * 1e3:.2f}ms)"
    )


def _build_lint_cm(n_rules: int):
    """A two-site configuration with ``n_rules`` chained private-write
    rules installed directly on one shell (plus the wired salary sources),
    sized for lint-throughput measurement."""
    from repro.cm import CMRID
    from repro.core.interfaces import InterfaceKind
    from repro.ris.relational import RelationalDatabase

    cm = ConstraintManager(Scenario(seed=0))
    cm.add_site("sf")
    cm.add_site("ny")
    branch = RelationalDatabase("branch")
    branch.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid = CMRID("relational", "branch").bind(
        "salary1",
        params=("n",),
        table="employees",
        key_column="empid",
        value_column="salary",
    )
    rid.offer("salary1", InterfaceKind.NOTIFY, bound_seconds=2.0)
    rid.offer("salary1", InterfaceKind.READ, bound_seconds=1.0)
    cm.add_source("sf", branch, rid)
    shell = cm.shell("sf")
    # A periodic head keeps the whole chain reachable (no CM401 noise);
    # each link triggers on the previous link's private write.
    cm.locations.register("Stage0", "sf")
    shell.install(parse_rule("P(3600) -> [1] W(Stage0, 0)", name="head"))
    for i in range(1, n_rules):
        cm.locations.register(f"Stage{i}", "sf")
        shell.install(
            parse_rule(
                f"W(Stage{i - 1}, b) -> [1] W(Stage{i}, b)",
                name=f"link{i}",
            )
        )
    return cm


@pytest.mark.parametrize("n_rules", [10, 100, 1000])
def test_lint_rules(benchmark, n_rules):
    from repro.analysis import lint_manager

    cm = _build_lint_cm(n_rules)

    def run() -> int:
        return len(lint_manager(cm).diagnostics)

    findings = benchmark(run)
    cm.stop()
    assert findings == 0  # the chain is lint-clean by construction
    _record_micro(f"lint_rules_{n_rules}", run, {"rules": n_rules})


def test_lint_scales_near_linearly():
    # 100x the rules must cost well under 100x^2 the time: allow 100x the
    # per-rule budget times a generous constant, i.e. assert the total is
    # within 8x of linear extrapolation from the small configuration.
    def timed(n_rules: int) -> float:
        from repro.analysis import lint_manager

        cm = _build_lint_cm(n_rules)
        lint_manager(cm)  # warm-up
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            lint_manager(cm)
            best = min(best, time.perf_counter() - started)
        cm.stop()
        return best

    small, large = timed(10), timed(1000)
    ratio = large / small
    update_bench_json(
        "core_micro",
        "lint_scaling",
        {"t_10": small, "t_1000": large, "ratio": ratio},
    )
    assert ratio < 800, f"lint scaled {ratio:.0f}x for 100x the rules"
