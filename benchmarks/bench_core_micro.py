"""Microbenchmarks of the toolkit's hot paths.

Not tied to a paper table — these quantify the substrate itself (simulator
event throughput, SQL engine, rule matching, guarantee checking) so
regressions in the machinery underneath the experiments are visible.
"""

import pytest

from repro.core.dsl import parse_rule
from repro.core.events import notify_desc, spontaneous_write_desc
from repro.core.guarantees import follows
from repro.core.items import MISSING, DataItemRef, item
from repro.core.templates import match_desc
from repro.core.trace import ExecutionTrace
from repro.core.timebase import seconds
from repro.ris.relational import RelationalDatabase
from repro.sim.scheduler import Simulator


def test_simulator_event_throughput(benchmark):
    def run() -> int:
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 10_000:
                sim.after(1, tick)

        sim.after(1, tick)
        sim.run()
        return counter[0]

    assert benchmark(run) == 10_000


def test_sql_insert_select_throughput(benchmark):
    def run() -> int:
        db = RelationalDatabase("bench")
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v REAL)")
        for key in range(500):
            db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (key, key * 1.5))
        total = 0
        for key in range(0, 500, 7):
            total += len(db.query("SELECT v FROM t WHERE k = ?", (key,)))
        return total

    assert benchmark(run) > 0


def test_rule_matching_throughput(benchmark):
    rule = parse_rule("N(salary1(n), b) -> [5] WR(salary2(n), b)")
    descs = [
        notify_desc(item("salary1", f"e{i}"), float(i)) for i in range(1000)
    ]

    def run() -> int:
        matched = 0
        for desc in descs:
            if match_desc(rule.lhs, desc) is not None:
                matched += 1
        return matched

    assert benchmark(run) == 1000


def test_guarantee_checker_on_large_trace(benchmark):
    trace = ExecutionTrace()
    x, y = DataItemRef("X"), DataItemRef("Y")
    time = 0
    for index in range(2000):
        time += seconds(1)
        trace.record(
            time, "a",
            spontaneous_write_desc(x, trace.current_value(x), index),
        )
        trace.record(
            time + seconds(0.1), "b",
            spontaneous_write_desc(y, trace.current_value(y), index),
        )
    trace.close(time + seconds(10))
    guarantee = follows("X", "Y", within_seconds=2)

    def run() -> bool:
        return guarantee.check(trace).valid

    assert benchmark(run)
