"""Bench E3 — Section 3.2 fn. 3 cached propagation (message savings)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e3_caching


def test_e3_caching(benchmark):
    run_experiment_benchmark(benchmark, e3_caching.run)
