"""Bench E10 — Sections 4.3/7.2 scale-out (flat latency with fan-out)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e10_scale


def test_e10_scale(benchmark):
    run_experiment_benchmark(benchmark, e10_scale.run)


def test_e10_scale_scaled(benchmark):
    """The scaled-up federation (16 replicas, ~10x the trace events)."""
    run_experiment_benchmark(benchmark, e10_scale.run_scaled)
