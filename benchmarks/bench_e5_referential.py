"""Bench E5 — Section 6.2 referential integrity (24h violation windows)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e5_referential


def test_e5_referential(benchmark):
    run_experiment_benchmark(benchmark, e5_referential.run)
