#!/usr/bin/env python
"""Benchmark-regression guard for CI.

Compares a freshly generated ``BENCH_core_micro.json`` against the
checked-in baseline (``benchmarks/baseline_core_micro.json``) and fails
only on gross regressions: a benchmark must be more than ``TOLERANCE``
times slower than its baseline to trip the guard.  The tolerance is
deliberately generous — CI runners are noisy and these are single-round
smoke timings — so the guard catches accidental re-quadratification of a
hot path, not jitter.

Timings under ``MIN_SECONDS`` are ignored entirely: at sub-5ms scale a
cache hiccup alone can exceed the tolerance.

Usage::

    python benchmarks/check_bench_regression.py \
        [--fresh BENCH_core_micro.json] \
        [--baseline benchmarks/baseline_core_micro.json] \
        [--tolerance 3.0]

Exit status 1 on regression, 0 otherwise (missing baseline entries and
new benchmarks are reported but never fail).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOLERANCE = 3.0
MIN_SECONDS = 0.005


def _wall_seconds(entry: object) -> float | None:
    if isinstance(entry, dict):
        value = entry.get("wall_seconds")
        if isinstance(value, (int, float)):
            return float(value)
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh",
        type=Path,
        default=REPO_ROOT / "BENCH_core_micro.json",
        help="freshly generated benchmark JSON",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "baseline_core_micro.json",
        help="checked-in baseline JSON",
    )
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"FAIL: fresh benchmark file {args.fresh} not found "
              f"(run the benchmark smoke first)")
        return 1
    if not args.baseline.exists():
        print(f"FAIL: baseline file {args.baseline} not found")
        return 1
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))

    regressions: list[str] = []
    for name, base_entry in sorted(baseline.items()):
        base_wall = _wall_seconds(base_entry)
        fresh_wall = _wall_seconds(fresh.get(name))
        if base_wall is None:
            continue  # baseline entry carries no timing (e.g. ratio guards)
        if fresh_wall is None:
            print(f"  note: {name}: missing from fresh run")
            continue
        floor = max(base_wall, MIN_SECONDS)
        ratio = fresh_wall / floor
        verdict = "REGRESSION" if ratio > args.tolerance else "ok"
        print(
            f"  {verdict}: {name}: {fresh_wall * 1e3:.2f}ms "
            f"vs baseline {base_wall * 1e3:.2f}ms ({ratio:.2f}x)"
        )
        if ratio > args.tolerance:
            regressions.append(name)
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  note: {name}: new benchmark (no baseline)")

    if regressions:
        print(
            f"FAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.tolerance:g}x: {', '.join(regressions)}"
        )
        return 1
    print("benchmark regression guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
