#!/usr/bin/env python
"""Benchmark-regression guard for CI.

Compares a freshly generated ``BENCH_core_micro.json`` against the
checked-in baseline (``benchmarks/baseline_core_micro.json``) and fails
only on gross regressions: a benchmark must be more than ``TOLERANCE``
times slower than its baseline to trip the guard.  The tolerance is
deliberately generous — CI runners are noisy and these are single-round
smoke timings — so the guard catches accidental re-quadratification of a
hot path, not jitter.

Timings under ``MIN_SECONDS`` are ignored entirely: at sub-5ms scale a
cache hiccup alone can exceed the tolerance.

With no arguments every default (fresh, baseline) pair is checked —
currently the core micro-benchmarks, the batched-dispatch throughput
sweep, the multi-core worker sweep, and the parallel-phase plan sweep;
passing ``--fresh``/``--baseline`` restricts the run to that one explicit
pair.  Throughput, multicore, and parallel-phase baselines are recorded
at the CI smoke scale (``BENCH_THROUGHPUT_EVENTS=50000`` /
``BENCH_MULTICORE_EVENTS=50000`` / ``BENCH_PARALLEL_PHASE_EVENTS=50000``)
so the guard compares like-for-like: each sweep entry's key embeds its
configuration and event count, and only matching keys are compared.

Usage::

    python benchmarks/check_bench_regression.py \
        [--fresh BENCH_core_micro.json] \
        [--baseline benchmarks/baseline_core_micro.json] \
        [--tolerance 3.0]

Exit status 1 on regression, 0 otherwise (missing baseline entries and
new benchmarks are reported but never fail).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOLERANCE = 3.0
MIN_SECONDS = 0.005

#: (fresh, baseline) pairs checked when neither --fresh nor --baseline is
#: given.  Keep baselines at the scale CI regenerates the fresh file at.
DEFAULT_PAIRS = (
    (
        REPO_ROOT / "BENCH_core_micro.json",
        REPO_ROOT / "benchmarks" / "baseline_core_micro.json",
    ),
    (
        REPO_ROOT / "BENCH_throughput.json",
        REPO_ROOT / "benchmarks" / "baseline_throughput.json",
    ),
    (
        REPO_ROOT / "BENCH_multicore.json",
        REPO_ROOT / "benchmarks" / "baseline_multicore.json",
    ),
    (
        REPO_ROOT / "BENCH_parallel_phase.json",
        REPO_ROOT / "benchmarks" / "baseline_parallel_phase.json",
    ),
)


def _wall_seconds(entry: object) -> float | None:
    if isinstance(entry, dict):
        value = entry.get("wall_seconds")
        if isinstance(value, (int, float)):
            return float(value)
    return None


def _check_pair(
    fresh_path: Path, baseline_path: Path, tolerance: float
) -> list[str] | None:
    """Compare one (fresh, baseline) file pair.

    Returns the regressed benchmark names, or ``None`` when a file is
    missing (itself a failure — a vanished smoke output must not pass
    silently).
    """
    print(f"{fresh_path.name} vs {baseline_path.name}:")
    if not fresh_path.exists():
        print(
            f"FAIL: fresh benchmark file {fresh_path} not found "
            f"(run the benchmark smoke first)"
        )
        return None
    if not baseline_path.exists():
        print(f"FAIL: baseline file {baseline_path} not found")
        return None
    fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    regressions: list[str] = []
    for name, base_entry in sorted(baseline.items()):
        base_wall = _wall_seconds(base_entry)
        fresh_wall = _wall_seconds(fresh.get(name))
        if base_wall is None:
            continue  # baseline entry carries no timing (e.g. ratio guards)
        if fresh_wall is None:
            print(f"  note: {name}: missing from fresh run")
            continue
        floor = max(base_wall, MIN_SECONDS)
        ratio = fresh_wall / floor
        verdict = "REGRESSION" if ratio > tolerance else "ok"
        print(
            f"  {verdict}: {name}: {fresh_wall * 1e3:.2f}ms "
            f"vs baseline {base_wall * 1e3:.2f}ms ({ratio:.2f}x)"
        )
        if ratio > tolerance:
            regressions.append(name)
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  note: {name}: new benchmark (no baseline)")
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="freshly generated benchmark JSON (default: all known pairs)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="checked-in baseline JSON (default: all known pairs)",
    )
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    args = parser.parse_args(argv)

    if args.fresh is not None or args.baseline is not None:
        pairs = [
            (
                args.fresh or DEFAULT_PAIRS[0][0],
                args.baseline or DEFAULT_PAIRS[0][1],
            )
        ]
    else:
        pairs = list(DEFAULT_PAIRS)

    failed = False
    regressions: list[str] = []
    for fresh_path, baseline_path in pairs:
        found = _check_pair(fresh_path, baseline_path, args.tolerance)
        if found is None:
            failed = True
        else:
            regressions.extend(found)

    if regressions:
        print(
            f"FAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.tolerance:g}x: {', '.join(regressions)}"
        )
        return 1
    if failed:
        return 1
    print("benchmark regression guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
