#!/usr/bin/env python
"""CI soundness sweep for the race sanitizer.

Two sweeps, both of which must come back with **zero races**:

1. *Proc-runtime equivalence* (seeds 0/1/2): each seeded salary scenario
   runs on the sim kernel and on the proc runtime (every CM-Shell its own
   OS process) with ``sanitize=True`` and plan-driven dispatch armed.
   The parent-side sanitizer observes nothing for the proc side — each
   shell process rebuilds its own — so the sim observation carries the
   soundness check; the equivalence verdict itself must also hold.

2. *Throughput smoke* (``SANITIZER_SMOKE_EVENTS``, default 50k): a
   sharded, plan-driven shell ingests the multicore bench's notification
   workload with the sanitizer attached.  This is the volume test the
   seeded scenarios cannot give — every store access of a 50k-event run
   checked against the plan's independence claims.

Exit status 1 on any flagged race (or a failed equivalence verdict),
0 otherwise.

Usage::

    python benchmarks/check_sanitizer_soundness.py [--seeds 0,1,2]
"""

from __future__ import annotations

import argparse
import os
import sys

SMOKE_EVENTS = int(os.environ.get("SANITIZER_SMOKE_EVENTS", "50000"))


def check_proc_equivalence(seeds: list[int]) -> list[str]:
    from repro.runtime.equivalence import run_equivalence

    problems: list[str] = []
    for seed in seeds:
        report = run_equivalence(
            seed=seed, runtime="proc", sanitize=True, parallel_phases=True
        )
        label = f"proc equivalence seed={seed}"
        if not report.ok:
            problems.append(f"{label}: verdict mismatch\n{report.render()}")
            continue
        races = report.sim.sanitizer_races
        accesses = report.sim.sanitizer_accesses
        if races:
            problems.append(f"{label}: {races} race(s) flagged")
        elif accesses == 0:
            problems.append(f"{label}: sanitizer observed nothing (vacuous)")
        else:
            print(f"ok: {label}: 0 races over {accesses} accesses")
    return problems


def check_throughput_smoke(events: int) -> list[str]:
    from repro.cm import ConstraintManager, Scenario
    from repro.core.dsl import parse_rule
    from repro.workloads.generators import notification_stream

    pairs = 8
    cm = ConstraintManager(
        Scenario(
            seed=0, dispatch_shards=16, parallel_phases=True, sanitize=True
        )
    )
    cm.add_site("smoke")
    shell = cm.shell("smoke")
    for i in range(pairs):
        shell.install(
            parse_rule(
                f"N(famA{i}(n), b) & (b > 2) -> [0] W(count{i}, b)",
                name=f"rA{i}",
            )
        )
        shell.install(
            parse_rule(
                f"N(famB{i}(n), b) & (b > 2) -> [0] W(count{i}, b)",
                name=f"rB{i}",
            )
        )
    families = [f"famA{i}" for i in range(pairs)] + [
        f"famB{i}" for i in range(pairs)
    ]
    descs = notification_stream(families, 16, events, seed=0)
    try:
        for start in range(0, len(descs), 256):
            shell.ingest_batch(descs[start : start + 256], time=0)
    finally:
        shell.close()
    report = cm.scenario.sanitizer.report()
    label = f"throughput smoke ({events} events)"
    if report["race_count"]:
        return [f"{label}: {report['race_count']} race(s) flagged"]
    if not report["writes"]:
        return [f"{label}: sanitizer observed no writes (vacuous)"]
    print(
        f"ok: {label}: 0 races over {report['reads']} reads / "
        f"{report['writes']} writes "
        f"({report['predicted_conflicts']} conflicts the plan serialized)"
    )
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", default="0,1,2")
    parser.add_argument("--smoke-events", type=int, default=SMOKE_EVENTS)
    args = parser.parse_args()
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    problems = check_proc_equivalence(seeds)
    problems += check_throughput_smoke(args.smoke_events)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        print("sanitizer soundness sweep: FAILED", file=sys.stderr)
        return 1
    print("sanitizer soundness sweep: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
