"""The 100k events/sec throughput push: batched + sharded dispatch.

The headline benchmark for the batched hot path: a million-notification
workload (reduce with ``BENCH_THROUGHPUT_EVENTS``; CI smokes at 50k) is
driven through a single shell with every combination of batch size
{1, 16, 256} and store/dispatch shard count {1, 4, 16}, and the min-of-N
events/sec of each configuration lands in ``BENCH_throughput.json``.

Two rates are reported per configuration, because the lazy trace makes
them genuinely different things:

- ``ingest`` — :meth:`~repro.cm.shell.CMShell.ingest_batch` end to end:
  time-order check, journal writes, matching, conditions, RHS firing,
  metrics.  Event materialization and trace-index maintenance are still
  pending (flush-on-read).
- ``settled`` — ingest plus the full flush: every Event object built and
  indexed, the trace ready for guarantee checking.  Measured at a reduced
  event count so the materialized-trace working set stays bounded.

Batch size 1 routes through the per-event specification path
(``trace.record`` + ``deliver_local_event``) — the unbatched baseline the
ISSUE's >=5x guard is measured against.

The rule mix installs one compiled per-family propagation-style
prohibition on a quarter of the families (so ~25% of events fire a rule
and the rest exercise the indexed miss path), and deliberately **no**
family-wildcard rules: a catch-all rule pins every event to the barrier
shard, which is a real property of sharded dispatch worth measuring — in
the equivalence tests — but would turn the shard sweep here into a
measurement of shard 0.
"""

import os
import time
import tracemalloc

from bench_helpers import throughput_stats, update_bench_json

from repro.cm import ConstraintManager, Scenario
from repro.core.dsl import parse_rule
from repro.workloads.generators import notification_stream

FAMILIES = 64
KEYS_PER_FAMILY = 16
FIRING_FAMILIES = 16  # one in four events fires a rule

EVENTS = int(os.environ.get("BENCH_THROUGHPUT_EVENTS", "1000000"))
ROUNDS = int(os.environ.get("BENCH_THROUGHPUT_ROUNDS", "2"))
#: Event count for the settled (full-flush) and peak-memory probes: large
#: enough to be meaningful, small enough that materializing every Event
#: object stays within a bounded working set.
SETTLE_EVENTS = min(EVENTS, 200_000)
MEMORY_EVENTS = min(EVENTS, 100_000)

BATCH_SIZES = (1, 16, 256)
SHARD_COUNTS = (1, 4, 16)


def _build_shell(shards: int):
    cm = ConstraintManager(Scenario(seed=0, dispatch_shards=shards))
    cm.add_site("bench")
    shell = cm.shell("bench")
    for i in range(FIRING_FAMILIES):
        shell.install(
            parse_rule(f"N(fam{i}(n), b) -> [1] FALSE", name=f"r{i}")
        )
    return cm, shell


def _workload(count: int):
    return notification_stream(
        [f"fam{i}" for i in range(FAMILIES)],
        KEYS_PER_FAMILY,
        count,
        seed=0,
    )


def _ingest(shell, descs, batch: int) -> None:
    if batch <= 1:
        # The per-event specification path: one trace.record and one
        # deliver_local_event per descriptor.
        record = shell.trace.record
        deliver = shell.deliver_local_event
        site = shell.site
        for desc in descs:
            deliver(record(0, site, desc))
    else:
        ingest = shell.ingest_batch
        for start in range(0, len(descs), batch):
            ingest(descs[start : start + batch], time=0)


def _timed_round(descs, batch: int, shards: int, settle: bool) -> float:
    cm, shell = _build_shell(shards)
    started = time.perf_counter()
    _ingest(shell, descs, batch)
    if settle:
        assert len(shell.trace.events) >= len(descs)
    return time.perf_counter() - started


def _sweep_key(batch: int, shards: int, count: int) -> str:
    return f"ingest_b{batch}_s{shards}_n{count}"


def test_throughput_sweep():
    """The full batch x shard sweep, plus the ISSUE's two hard guards:
    best batched config >= 5x the per-event baseline (min-of-N), and
    >= 100k events/sec on the best configuration."""
    descs = _workload(EVENTS)
    settle_descs = descs[:SETTLE_EVENTS]
    rates: dict[tuple[int, int], float] = {}
    for batch in BATCH_SIZES:
        for shards in SHARD_COUNTS:
            ingest_walls = [
                _timed_round(descs, batch, shards, settle=False)
                for _ in range(ROUNDS)
            ]
            settled_walls = [
                _timed_round(settle_descs, batch, shards, settle=True)
                for _ in range(ROUNDS)
            ]
            stats = throughput_stats(EVENTS, ingest_walls)
            stats["batch"] = batch
            stats["shards"] = shards
            stats["settled"] = throughput_stats(
                SETTLE_EVENTS, settled_walls
            )
            rates[(batch, shards)] = stats["events_per_second"]
            update_bench_json(
                "throughput", _sweep_key(batch, shards, EVENTS), stats
            )

    baseline = rates[(1, 1)]
    best_config = max(rates, key=rates.get)
    best = rates[best_config]
    update_bench_json(
        "throughput",
        "headline",
        {
            "events": EVENTS,
            "rounds": ROUNDS,
            "baseline_events_per_second": baseline,
            "best_events_per_second": best,
            "best_batch": best_config[0],
            "best_shards": best_config[1],
            "speedup_vs_per_event": best / baseline,
        },
    )
    assert best >= 5.0 * baseline, (
        f"batched dispatch is only {best / baseline:.2f}x the per-event "
        f"baseline ({best:,.0f} vs {baseline:,.0f} events/sec); the "
        f"budget is 5x"
    )
    assert best >= 100_000, (
        f"best configuration b{best_config[0]}/s{best_config[1]} reached "
        f"only {best:,.0f} events/sec; the target is 100k"
    )


def test_throughput_memory():
    """Peak-memory probe (separate from timing — tracemalloc taxes every
    allocation): the batched path must not cost more peak memory per event
    than the per-event path on the same settled workload."""
    descs = _workload(MEMORY_EVENTS)
    peaks: dict[str, int] = {}
    for label, batch in (("per_event", 1), ("batched", 256)):
        nested = tracemalloc.is_tracing()
        if not nested:
            tracemalloc.start()
        tracemalloc.reset_peak()
        _timed_round(descs, batch, 1, settle=True)
        peaks[label] = tracemalloc.get_traced_memory()[1]
        if not nested:
            tracemalloc.stop()
    update_bench_json(
        "throughput",
        f"peak_memory_n{MEMORY_EVENTS}",
        {
            "events": MEMORY_EVENTS,
            "per_event_peak_bytes": peaks["per_event"],
            "batched_peak_bytes": peaks["batched"],
        },
    )
    # Generous bound: the lazy blocks must not balloon memory; they share
    # the same settled working set, so 1.5x covers transient slack.
    assert peaks["batched"] <= 1.5 * peaks["per_event"], (
        f"batched settled peak {peaks['batched']:,} bytes exceeds 1.5x "
        f"the per-event peak {peaks['per_event']:,} bytes"
    )
