"""Bench E1 — Section 4.2 propagation strategy (guarantees (1)-(4) valid)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e1_propagation


def test_e1_propagation(benchmark):
    run_experiment_benchmark(benchmark, e1_propagation.run)
