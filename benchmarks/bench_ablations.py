"""Bench ablations — in-order delivery (Appendix A) and echo suppression."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import ablations


def test_ablation_in_order(benchmark):
    run_experiment_benchmark(benchmark, ablations.run_in_order_ablation)


def test_ablation_echo(benchmark):
    run_experiment_benchmark(benchmark, ablations.run_echo_ablation)


def test_ablation_clock_skew(benchmark):
    run_experiment_benchmark(benchmark, ablations.run_clock_skew_ablation)
