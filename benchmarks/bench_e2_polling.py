"""Bench E2 — Section 4.2.3 polling (guarantee (2) lost; misses vs period)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e2_polling


def test_e2_polling(benchmark):
    run_experiment_benchmark(benchmark, e2_polling.run)
