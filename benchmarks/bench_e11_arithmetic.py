"""Bench E11 — Section 7.1 arithmetic decomposition (X = Y + Z)."""

from bench_helpers import run_experiment_benchmark

from repro.experiments import e11_arithmetic


def test_e11_arithmetic(benchmark):
    run_experiment_benchmark(benchmark, e11_arithmetic.run)
