"""Trace hot-path scaling benchmarks.

Sweeps event count x traced-item count and asserts the two scaling claims
of the copy-on-write trace layer:

- per-event ``record()`` cost is flat in the traced-item count (doubling
  items at a fixed event count changes per-event cost by < 1.5x) — the
  old implementation snapshotted two full interpretation dicts per event,
  so its per-event cost grew linearly with the item count;
- the query bundle (``writes_to`` / ``events_of_kind`` / ``refs_of_family``
  / ``timeline`` / ``validate_trace``) scales near-linearly in the event
  count (2x the events costs well under 3x the wall time).

Wall-clock assertions are deliberately generous; the *exact* work counts
are asserted via the trace's probe counters (``ExecutionTrace.stats()``),
which is where O(1)-per-event is actually proven.  Results are persisted
to ``BENCH_trace_scale.json``.
"""

import time

from bench_helpers import update_bench_json

from repro.core.events import EventKind, spontaneous_write_desc
from repro.core.items import DataItemRef, item
from repro.core.timebase import seconds
from repro.core.trace import ExecutionTrace, validate_trace

FAMILY = "F"


def _refs(n_items: int) -> list[DataItemRef]:
    return [item(FAMILY, f"i{index}") for index in range(n_items)]


def _fill(trace: ExecutionTrace, refs: list[DataItemRef], n_events: int) -> None:
    clock = 0
    n_items = len(refs)
    for index in range(n_events):
        ref = refs[index % n_items]
        clock += seconds(0.5)
        trace.record(
            clock,
            "s",
            spontaneous_write_desc(ref, trace.current_value(ref), index % 7),
        )
    trace.close(clock + seconds(10))


def _record_wall(n_events: int, n_items: int, rounds: int = 5) -> float:
    """Min-of-N wall seconds to record ``n_events`` over ``n_items`` items."""
    best = float("inf")
    for _ in range(rounds):
        trace = ExecutionTrace()
        refs = _refs(n_items)
        started = time.perf_counter()
        _fill(trace, refs, n_events)
        best = min(best, time.perf_counter() - started)
    return best


def _query_wall(trace: ExecutionTrace, refs: list[DataItemRef]) -> float:
    """Wall seconds for one pass of every indexed query plus validation."""
    started = time.perf_counter()
    total_writes = 0
    for ref in refs:
        total_writes += sum(1 for _ in trace.writes_to(ref))
        trace.timeline(ref)
    assert total_writes == len(trace.events)
    assert (
        sum(1 for _ in trace.events_of_kind(EventKind.SPONTANEOUS_WRITE))
        == len(trace.events)
    )
    assert len(trace.refs_of_family(FAMILY)) == len(refs)
    assert validate_trace(trace, []) == []
    return time.perf_counter() - started


def test_record_cost_flat_when_items_double():
    """Per-event record() cost must not grow with the traced-item count."""
    n_events = 4000
    _record_wall(n_events, 64, rounds=1)  # warm-up
    per_event: dict[int, float] = {}
    for n_items in (64, 128):
        wall = _record_wall(n_events, n_items)
        per_event[n_items] = wall / n_events
        update_bench_json(
            "trace_scale",
            f"record_{n_events}ev_{n_items}items",
            {
                "events": n_events,
                "items": n_items,
                "wall_seconds": wall,
                "per_event_seconds": wall / n_events,
                "events_per_second": n_events / wall,
            },
        )
    ratio = per_event[128] / per_event[64]
    update_bench_json(
        "trace_scale",
        "record_item_doubling_ratio",
        {"ratio": ratio, "bound": 1.5},
    )
    assert ratio < 1.5, (
        f"per-event record() cost grew {ratio:.2f}x when the item count "
        f"doubled ({per_event[64] * 1e6:.2f}us -> {per_event[128] * 1e6:.2f}us)"
    )


def test_record_and_queries_scale_near_linearly_in_events():
    """2x the events must cost well under 3x the wall time, end to end."""
    n_items = 32
    walls: dict[int, dict[str, float]] = {}
    _record_wall(2000, n_items, rounds=1)  # warm-up
    for n_events in (2000, 4000):
        record_wall = query_wall = float("inf")
        stats: dict[str, int] = {}
        for _ in range(3):
            trace = ExecutionTrace()
            refs = _refs(n_items)
            started = time.perf_counter()
            _fill(trace, refs, n_events)
            record_wall = min(record_wall, time.perf_counter() - started)
            query_wall = min(query_wall, _query_wall(trace, refs))
            stats = trace.stats()
        # Exact work accounting: every write journaled once, every write
        # folded into its item's timeline exactly once, and neither the
        # queries nor the fused validator ever materialized a full
        # interpretation dict.
        assert stats["events_recorded"] == n_events
        assert stats["state_versions"] == n_events
        assert stats["timeline_extend_steps"] == n_events
        assert stats["interpretation_materializations"] == 0

        walls[n_events] = {"record": record_wall, "queries": query_wall}
        update_bench_json(
            "trace_scale",
            f"end_to_end_{n_events}ev_{n_items}items",
            {
                "events": n_events,
                "items": n_items,
                "record_wall_seconds": record_wall,
                "query_wall_seconds": query_wall,
                "stats": stats,
            },
        )
    for stage in ("record", "queries"):
        ratio = walls[4000][stage] / max(walls[2000][stage], 1e-9)
        update_bench_json(
            "trace_scale",
            f"{stage}_event_doubling_ratio",
            {"ratio": ratio, "bound": 3.0},
        )
        assert ratio < 3.0, (
            f"{stage} wall time grew {ratio:.2f}x when the event count "
            f"doubled — super-linear scaling"
        )


def test_timeline_incremental_work_is_exact():
    """Interleaved record+timeline does O(1) extend work per new write."""
    trace = ExecutionTrace()
    ref = item(FAMILY, "hot")
    n = 500
    clock = 0
    for index in range(n):
        clock += seconds(1)
        trace.record(
            clock,
            "s",
            spontaneous_write_desc(ref, trace.current_value(ref), index),
        )
        trace.timeline(ref)
    stats = trace.stats()
    # Each of the N calls consumed exactly the one write appended since the
    # previous call — N steps total, not N*(N+1)/2 as a full rebuild would.
    assert stats["timeline_extend_steps"] == n
    update_bench_json(
        "trace_scale",
        "timeline_incremental_probe",
        {
            "interleaved_calls": n,
            "timeline_extend_steps": stats["timeline_extend_steps"],
            "timeline_builds": stats["timeline_builds"],
            "timeline_cache_hits": stats["timeline_cache_hits"],
        },
    )
