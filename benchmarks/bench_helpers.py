"""Shared plumbing for the benchmark harness.

Every experiment gets one benchmark: it runs the experiment at full scale
under ``pytest-benchmark`` timing, prints the regenerated result table (the
reproduction's analogue of the paper's evaluation output; run with ``-s`` to
see it), asserts the claim reproduced, and attaches the rows to the
benchmark JSON via ``extra_info``.

Experiments are deterministic, so a single round measures them faithfully;
``benchmark.pedantic`` keeps wall-clock time sane.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.common import ExperimentResult


def run_experiment_benchmark(
    benchmark, run: Callable[[], ExperimentResult]
) -> ExperimentResult:
    """Run one experiment under timing; assert its claim reproduced."""
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert isinstance(result, ExperimentResult)
    print()
    print(result.render())
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["claim_holds"] = result.claim_holds
    benchmark.extra_info["rows"] = [
        [str(cell) for cell in row] for row in result.rows
    ]
    assert result.claim_holds, result.render()
    return result
