"""Shared plumbing for the benchmark harness.

Every experiment gets one benchmark: it runs the experiment at full scale
under ``pytest-benchmark`` timing, prints the regenerated result table (the
reproduction's analogue of the paper's evaluation output; run with ``-s`` to
see it), asserts the claim reproduced, and attaches the rows to the
benchmark JSON via ``extra_info``.

Each benchmark also persists a ``BENCH_<name>.json`` file at the repo root
(wall-clock seconds, the virtual-time cost, the dispatch counters, and the
result table), so benchmark runs leave a machine-readable artifact even
without the pytest-benchmark storage machinery — CI uploads these.

Experiments are deterministic, so a single round measures them faithfully;
``benchmark.pedantic`` keeps wall-clock time sane.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path
from typing import Any, Callable

from repro.experiments.common import ExperimentResult

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_json_path(name: str) -> Path:
    """Where ``BENCH_<name>.json`` lives (the repo root)."""
    return REPO_ROOT / f"BENCH_{name}.json"


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist one benchmark's payload as ``BENCH_<name>.json``."""
    path = bench_json_path(name)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def update_bench_json(name: str, key: str, payload: dict) -> Path:
    """Merge one entry into ``BENCH_<name>.json`` (for multi-test files)."""
    path = bench_json_path(name)
    data: dict[str, Any] = {}
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            data = {}
    data[key] = payload
    return write_bench_json(name, data)


def throughput_stats(events: int, wall_times: list[float]) -> dict:
    """Summarize repeated timed rounds of one fixed-size workload.

    ``events_per_second`` is the **min-of-N** rate (best wall time of the
    rounds) — the standard way to strip scheduler noise from a CPU-bound
    measurement — with the mean reported alongside so the JSON shows the
    spread.
    """
    best = min(wall_times)
    mean = sum(wall_times) / len(wall_times)
    return {
        "events": events,
        "rounds": len(wall_times),
        "wall_seconds": best,
        "wall_seconds_mean": mean,
        "events_per_second": events / best if best else 0.0,
        "events_per_second_mean": events / mean if mean else 0.0,
    }


def _bench_name(run: Callable) -> str:
    module = run.__module__.rsplit(".", 1)[-1]
    suffix = run.__name__
    if suffix.startswith("run_"):
        suffix = suffix[len("run_"):]
    elif suffix == "run":
        suffix = ""
    return f"{module}_{suffix}" if suffix else module


def run_experiment_benchmark(
    benchmark, run: Callable[[], ExperimentResult]
) -> ExperimentResult:
    """Run one experiment under timing; assert its claim reproduced."""
    timing: dict[str, float] = {}

    def timed() -> ExperimentResult:
        # Peak-memory tracking rides along so BENCH JSONs record the
        # allocation trajectory across PRs, not just wall time.  tracemalloc
        # slows allocation, but every run pays the same tax, so wall-clock
        # numbers stay comparable between runs and against the baselines.
        nested = tracemalloc.is_tracing()
        if not nested:
            tracemalloc.start()
        started = time.perf_counter()
        try:
            result = run()
            timing["wall_seconds"] = time.perf_counter() - started
            timing["peak_memory_bytes"] = tracemalloc.get_traced_memory()[1]
        finally:
            if not nested:
                tracemalloc.stop()
        return result

    result = benchmark.pedantic(timed, rounds=1, iterations=1)
    assert isinstance(result, ExperimentResult)
    print()
    print(result.render())
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["claim_holds"] = result.claim_holds
    benchmark.extra_info["rows"] = [
        [str(cell) for cell in row] for row in result.rows
    ]
    payload = result.to_dict()
    payload["wall_seconds"] = timing.get("wall_seconds")
    payload["peak_memory_bytes"] = timing.get("peak_memory_bytes")
    events_processed = (
        payload.get("observability", {})
        .get("dispatch", {})
        .get("events_processed")
    )
    wall = timing.get("wall_seconds")
    if events_processed and wall:
        payload["events_per_second"] = events_processed / wall
    write_bench_json(_bench_name(run), payload)
    assert result.claim_holds, result.render()
    return result
