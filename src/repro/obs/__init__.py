"""``repro.obs`` — the toolkit's observability layer.

One :class:`Instrumentation` object per :class:`~repro.cm.manager.Scenario`
bundles the three pillars:

- a :class:`~repro.obs.metrics.MetricsRegistry` of labeled counters,
  gauges, and virtual-time histograms (the shells' ``stats()`` counters
  are an adapter over it);
- a :class:`~repro.obs.spans.Tracer` recording causal firing spans, so a
  cross-site propagation chain is one queryable tree with per-hop
  virtual-time latencies;
- structured sinks (:class:`~repro.obs.sinks.JsonlSink`,
  :class:`~repro.obs.sinks.PrometheusExporter`) and the
  :class:`~repro.obs.report.RunReport` emitted at end of run.

Overhead discipline: metrics are always-on plain attribute increments
(they back ``stats()``); span recording and per-event sink output happen
only while :attr:`Instrumentation.enabled` is true, which every hook
checks with a single attribute load — the no-sink fast path is guarded by
a microbenchmark in ``benchmarks/bench_core_micro.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Union

from repro.obs.bus import TelemetryBus, TelemetryUpdate
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BOUNDS,
)
from repro.obs.report import RunReport, build_run_report
from repro.obs.sinks import JsonlSink, PrometheusExporter, render_prometheus
from repro.obs.spans import Span, SpanContext, SpanTree, Tracer

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "Instrumentation",
    "JsonlSink",
    "PrometheusExporter",
    "render_prometheus",
    "RunReport",
    "build_run_report",
    "Span",
    "SpanContext",
    "SpanTree",
    "TelemetryBus",
    "TelemetryUpdate",
    "Tracer",
]


class Instrumentation:
    """Metrics + tracer + sinks for one scenario.

    ``enabled`` is the one flag hot paths check: false until tracing is
    enabled or a sink is attached, so an unobserved run skips every span
    and per-event record with a single attribute load and branch.
    """

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.sinks: list[JsonlSink] = []
        self.enabled = False
        #: The bounded digest rings, present only after
        #: :meth:`enable_flight`.  Flight-only mode sets :attr:`enabled`
        #: without enabling the tracer, so hooks record digests but skip
        #: span construction entirely (the ring-buffer fast path).
        self.flight: FlightRecorder | None = None
        #: Per-rule dispatch profiling (match hit/miss counters, RHS wall
        #: latency).  Checked directly by the shells' dispatch loop, not
        #: via :attr:`enabled` — profiling a run does not imply tracing it.
        self.rule_profiling = False

    def enable_tracing(self) -> "Instrumentation":
        """Record spans (without attaching any sink)."""
        self.tracer.enable()
        self.enabled = True
        return self

    def enable_flight(self, capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
        """Attach the flight recorder (idempotent; keeps an existing one)."""
        if self.flight is None:
            self.flight = FlightRecorder(capacity)
        self.enabled = True
        return self.flight

    def enable_rule_profiling(self) -> "Instrumentation":
        """Turn on per-rule matcher and RHS-latency profiling."""
        self.rule_profiling = True
        return self

    def attach_sink(self, sink: JsonlSink) -> JsonlSink:
        """Stream finished spans (and per-event records) to ``sink``."""
        self.sinks.append(sink)
        self.tracer.on_finish(self._emit_span)
        self.enabled = True
        return sink

    def attach_jsonl(self, target: Union[str, Path, IO[str]]) -> JsonlSink:
        """Convenience: attach a fresh :class:`JsonlSink` on ``target``."""
        return self.attach_sink(JsonlSink(target))

    def _emit_span(self, span: Span) -> None:
        record = span.to_dict()
        for sink in self.sinks:
            sink.emit(record)

    def emit_event(self, event) -> None:
        """Stream one trace event to every sink (hot paths pre-check
        :attr:`enabled`)."""
        for sink in self.sinks:
            sink.emit_event(event)

    def flush(self) -> None:
        """Write a final metrics snapshot to every sink and flush them."""
        for sink in self.sinks:
            sink.emit_metrics(self.metrics)
            sink.close()
