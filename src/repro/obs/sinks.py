"""Structured sinks: JSONL record streams and Prometheus text export.

Two output shapes:

- :class:`JsonlSink` — newline-delimited JSON records (spans as they
  finish, trace events on demand, a final metrics snapshot), the format
  the perf-trajectory tooling diffs across PRs;
- :func:`render_prometheus` / :class:`PrometheusExporter` — the
  Prometheus text exposition format, for eyeballing a run with standard
  tooling.

Sinks are explicitly *attached*; until one is, the instrumentation layer
stays on its no-op fast path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Optional, Union

from repro.core.timebase import to_seconds
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class JsonlSink:
    """Write one JSON object per line to a path or file-like object.

    Accepts any dict; :meth:`emit` is the single intake used for span
    records, event records, and metric snapshots alike (each carries a
    ``type`` field).  Close flushes and, for path-opened sinks, closes the
    underlying file.
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if isinstance(target, (str, Path)):
            self.path: Optional[Path] = Path(target)
            self._file: IO[str] = self.path.open("w", encoding="utf-8")
            self._owns_file = True
        else:
            self.path = None
            self._file = target
            self._owns_file = False
        self.records_written = 0

    def emit(self, record: dict) -> None:
        self._file.write(json.dumps(record, default=_jsonable) + "\n")
        self.records_written += 1

    def emit_event(self, event) -> None:
        """Record one trace event (:class:`repro.core.events.Event`)."""
        self.emit(
            {
                "type": "event",
                "seq": event.seq,
                "time": event.time,
                "time_s": to_seconds(event.time),
                "site": event.site,
                "desc": str(event.desc),
                "kind": event.desc.kind.value,
                "rule": event.rule.name if event.rule is not None else None,
                "trigger_seq": (
                    event.trigger.seq if event.trigger is not None else None
                ),
            }
        )

    def emit_metrics(self, registry: MetricsRegistry) -> None:
        """Record a full metrics snapshot as one ``metrics`` record."""
        self.emit({"type": "metrics", "metrics": registry.snapshot()})

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _jsonable(value):
    """Fallback serializer: MISSING, refs, enums, etc. become strings."""
    return str(value)


# -- Prometheus text format -----------------------------------------------------


def _format_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, and newline."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


#: Conversion to seconds per histogram unit, for ``le`` bounds and sums.
#: Unknown units render raw (with no pretence of being seconds).
_UNIT_SECONDS = {
    "ticks": to_seconds,
    "ms": lambda value: value / 1_000.0,
    "ns": lambda value: value / 1_000_000_000.0,
    "s": lambda value: value,
}


def _in_seconds(unit: str, value):
    convert = _UNIT_SECONDS.get(unit)
    return convert(value) if convert is not None else value


def _merge_labels(labels, extra: dict) -> list:
    return list(labels) + sorted(extra.items())


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every series in the Prometheus text exposition format.

    Counters get a ``_total`` suffix; histograms expose cumulative
    ``_bucket`` series with ``le`` bounds in *seconds* (the Prometheus
    convention) — converted per the histogram's declared unit (ticks,
    ms, ns) — plus ``_sum``/``_count``.
    """
    by_name: dict[str, list] = {}
    for instrument in registry:
        by_name.setdefault(instrument.name, []).append(instrument)
    lines: list[str] = []
    for name in by_name:
        series = by_name[name]
        first = series[0]
        if isinstance(first, Counter):
            lines.append(f"# TYPE {name}_total counter")
            for counter in series:
                lines.append(
                    f"{name}_total{_format_labels(counter.labels)} "
                    f"{counter.value}"
                )
        elif isinstance(first, Gauge):
            lines.append(f"# TYPE {name} gauge")
            for gauge in series:
                lines.append(
                    f"{name}{_format_labels(gauge.labels)} {gauge.value}"
                )
        else:
            assert isinstance(first, Histogram)
            lines.append(f"# TYPE {name} histogram")
            for hist in series:
                cumulative = 0
                for bound, bucket in zip(hist.bounds, hist.buckets):
                    cumulative += bucket
                    labels = _merge_labels(
                        hist.labels,
                        {"le": f"{_in_seconds(hist.unit, bound):g}"},
                    )
                    lines.append(
                        f"{name}_bucket{_format_labels(labels)} {cumulative}"
                    )
                labels = _merge_labels(hist.labels, {"le": "+Inf"})
                lines.append(
                    f"{name}_bucket{_format_labels(labels)} {hist.count}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(hist.labels)} "
                    f"{_in_seconds(hist.unit, hist.sum):g}"
                )
                lines.append(
                    f"{name}_count{_format_labels(hist.labels)} {hist.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


class PrometheusExporter:
    """Convenience wrapper: render a registry, optionally to a file."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def render(self) -> str:
        return render_prometheus(self.registry)

    def write_to(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.render(), encoding="utf-8")
        return path
