"""TelemetryBus: push-update streaming of metrics-registry deltas.

The metrics registry is a pull surface — ``snapshot()`` and the
Prometheus renderer walk every series on demand.  A live view (the
``python -m repro watch`` dashboard, or any future fleet aggregator)
wants the opposite: tell me *what changed* since last time, as the run
progresses.

The bus closes that gap without touching any hot path.  Instruments keep
doing bare ``value += 1`` increments; the bus diffs the registry against
its previously published state whenever :meth:`TelemetryBus.publish` is
called (a scenario timer, a dashboard poll, an end-of-run flush) and
pushes one :class:`TelemetryUpdate` — new and changed series only — to
every subscriber.  Cost is proportional to the number of *series*, not
the number of observations, and only at publish time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.timebase import Ticks, to_seconds
from repro.obs.metrics import Gauge, Histogram, MetricsRegistry


@dataclass
class TelemetryUpdate:
    """One published batch of series deltas.

    ``deltas`` holds one dict per series whose state changed since the
    previous publish: ``name``/``labels``/``kind``, the current ``value``
    (count for histograms), and ``delta`` — the change since last publish
    (for gauges, which move both ways, this may be negative).
    """

    seq: int
    time: Ticks
    deltas: list[dict] = field(default_factory=list)

    @property
    def time_s(self) -> float:
        return to_seconds(self.time)

    def to_dict(self) -> dict:
        return {
            "type": "telemetry",
            "seq": self.seq,
            "time": self.time,
            "time_s": round(self.time_s, 6),
            "deltas": self.deltas,
        }


def _state(instrument) -> Any:
    """The comparable published state of one instrument."""
    if isinstance(instrument, Histogram):
        return (instrument.count, instrument.sum)
    return instrument.value


class TelemetryBus:
    """Diff-and-push streaming over one :class:`MetricsRegistry`.

    Subscribers are plain callables receiving each
    :class:`TelemetryUpdate`.  The bus is deliberately synchronous and
    in-process — the watch dashboard subscribes directly, and a future
    fleet plane can subscribe a socket writer without the bus changing.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._last: dict[tuple, Any] = {}
        self._subscribers: list[Callable[[TelemetryUpdate], None]] = []
        self._seq = 0
        self.updates_published = 0

    # -- subscription ----------------------------------------------------------

    def subscribe(
        self, callback: Callable[[TelemetryUpdate], None]
    ) -> Callable[[TelemetryUpdate], None]:
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[TelemetryUpdate], None]) -> None:
        self._subscribers.remove(callback)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- publishing ------------------------------------------------------------

    def publish(self, now: Ticks) -> Optional[TelemetryUpdate]:
        """Diff the registry against the last publish and push changes.

        Returns the update, or ``None`` when nothing changed (subscribers
        are not called for empty diffs — a quiet scenario stays quiet).
        """
        deltas: list[dict] = []
        last = self._last
        for key, instrument in self.registry.items():
            current = _state(instrument)
            previous = last.get(key)
            if current == previous:
                continue
            last[key] = current
            name, labels = key
            entry: dict = {"name": name, "labels": dict(labels)}
            if isinstance(instrument, Histogram):
                prev_count, prev_sum = previous or (0, 0)
                entry["kind"] = "histogram"
                entry["unit"] = instrument.unit
                entry["value"] = instrument.count
                entry["delta"] = instrument.count - prev_count
                entry["sum_delta"] = instrument.sum - prev_sum
            else:
                entry["kind"] = (
                    "gauge" if isinstance(instrument, Gauge) else "counter"
                )
                entry["value"] = instrument.value
                entry["delta"] = instrument.value - (previous or 0)
            deltas.append(entry)
        if not deltas:
            return None
        self._seq += 1
        update = TelemetryUpdate(seq=self._seq, time=now, deltas=deltas)
        self.updates_published += 1
        for subscriber in list(self._subscribers):
            subscriber(update)
        return update
