"""The metrics registry: counters, gauges, and virtual-time histograms.

Every instrument is a *labeled series*: a metric name plus a sorted label
set (``site=...``, ``rule=...``, ``src=.../dst=...``) identifies one series,
and :class:`MetricsRegistry` interns them so repeated lookups return the
same object.  Hot paths therefore resolve their instruments **once** (at
wiring time) and afterwards pay only a ``self.value += 1`` attribute
increment per observation — the same cost as the ad-hoc integer counters
this module replaces.  The shells' PR-1 ``stats()`` counters are now an
adapter over these series (see :meth:`repro.cm.shell.CMShell.stats`).

Histograms bucket virtual-time quantities (:data:`repro.core.timebase.Ticks`,
integer microseconds) by default, with bounds spanning 1 ms to 5 minutes —
the range of interest for propagation latencies whose guarantees quote
``κ`` bounds in seconds.

Nothing here does I/O: structured output is the job of
:mod:`repro.obs.sinks` (JSONL, Prometheus text format) and
:mod:`repro.obs.report`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, Optional

from repro.core.timebase import Ticks, seconds, to_seconds

#: Default histogram bounds in ticks: 1ms .. 5min, roughly log-spaced.
DEFAULT_LATENCY_BOUNDS: tuple[Ticks, ...] = tuple(
    seconds(s)
    for s in (
        0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
        1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0,
    )
)

#: Bounds for real-millisecond series (``wire_latency_ms``): 100µs .. 1s
#: of wall time, the range loopback frames actually land in.
WIRE_MS_BOUNDS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)

#: Bounds for wall-nanosecond series (per-rule RHS execution profiling):
#: 1µs .. 100ms.  A compiled RHS runs in single-digit microseconds; the
#: upper decades catch translator-bound and pathological rules.
RULE_EXEC_NS_BOUNDS: tuple[float, ...] = (
    1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 1e6, 1e7, 1e8,
)

#: Bounds for batch-size series (``shell_batch_size``): power-of-two
#: buckets covering single-event "batches" up to the largest blocks the
#: throughput benchmark sweeps.
BATCH_SIZE_BOUNDS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)

LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count.

    Hot paths may increment ``value`` directly (``c.value += 1``); the
    :meth:`inc` method exists for call sites where readability wins.
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({_series_repr(self.name, self.labels)}={self.value})"


class Gauge:
    """A point-in-time level, with a high-watermark (``high``).

    The watermark is what run reports want from queue depths: "how deep did
    the channel get", not "how deep was it when the run ended".
    """

    __slots__ = ("name", "labels", "value", "high")

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self.high = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high:
            self.high = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({_series_repr(self.name, self.labels)}={self.value})"


class Histogram:
    """A cumulative-bucket histogram over virtual-time quantities.

    ``bounds`` are inclusive upper bucket edges in ticks; observations above
    the last bound land in the implicit +Inf bucket.  ``sum``/``count``/
    ``min``/``max`` are tracked exactly, so reports can quote exact extrema
    alongside bucketed percentile estimates.

    ``unit`` names what an observation *is* — ``"ticks"`` (virtual time,
    the default), ``"ms"`` (real milliseconds, e.g. ``wire_latency_ms``),
    or ``"ns"`` (wall nanoseconds, rule profiling).  Summaries and the
    Prometheus renderer use it to convert bounds honestly instead of
    assuming everything is ticks.
    """

    __slots__ = (
        "name", "labels", "bounds", "unit", "buckets", "count", "sum",
        "min", "max",
    )

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        bounds: tuple[Ticks, ...] = DEFAULT_LATENCY_BOUNDS,
        unit: str = "ticks",
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.unit = unit
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[Ticks] = None
        self.max: Optional[Ticks] = None

    def observe(self, value: Ticks) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[Ticks]:
        """Estimated q-quantile (upper bucket bound holding it), or the
        exact max for observations beyond the last bound."""
        if not self.count:
            return None
        rank = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            cumulative += bucket
            if cumulative >= rank and bucket:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def summary(self) -> dict:
        """Compact JSON-friendly digest.

        Tick-unit histograms keep the historical seconds-suffixed keys;
        other units report raw values with an explicit ``unit`` field.
        """
        if self.unit != "ticks":
            return {
                "count": self.count,
                "unit": self.unit,
                "mean": round(self.mean, 3),
                "min": round(self.min, 3) if self.min is not None else None,
                "max": round(self.max, 3) if self.max is not None else None,
                "p50": self.quantile(0.50),
                "p99": self.quantile(0.99),
            }
        return {
            "count": self.count,
            "mean_s": round(to_seconds(round(self.mean)), 6),
            "min_s": to_seconds(self.min) if self.min is not None else None,
            "max_s": to_seconds(self.max) if self.max is not None else None,
            "p50_s": _bound_seconds(self.quantile(0.50)),
            "p99_s": _bound_seconds(self.quantile(0.99)),
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({_series_repr(self.name, self.labels)}: "
            f"n={self.count}, mean={self.mean:.0f})"
        )


def _bound_seconds(value: Optional[Ticks]) -> Optional[float]:
    return to_seconds(value) if value is not None else None


def _series_repr(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v!r}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Interned, labeled metric series.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a ``(name, labels)`` pair creates the series, later calls return the
    same object.  A name is bound to one instrument type for the lifetime of
    the registry.
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, LabelSet], object] = {}
        self._types: dict[str, type] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: tuple[Ticks, ...] | None = None,
        unit: str = "ticks",
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        existing = self._series.get(key)
        if existing is not None:
            assert isinstance(existing, Histogram)
            return existing
        self._check_type(name, Histogram)
        hist = Histogram(
            name, key[1], bounds or DEFAULT_LATENCY_BOUNDS, unit=unit
        )
        self._series[key] = hist
        return hist

    def _get(self, cls: type, name: str, labels: dict[str, str]):
        key = (name, _label_key(labels))
        existing = self._series.get(key)
        if existing is not None:
            assert isinstance(existing, cls), (
                f"metric {name!r} is a {type(existing).__name__}, "
                f"not a {cls.__name__}"
            )
            return existing
        self._check_type(name, cls)
        instrument = cls(name, key[1])
        self._series[key] = instrument
        return instrument

    def _check_type(self, name: str, cls: type) -> None:
        bound = self._types.setdefault(name, cls)
        if bound is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {bound.__name__}"
            )

    # -- queries ---------------------------------------------------------------

    def series(self, name: str) -> list:
        """All series of a metric, in creation order."""
        return [v for (n, __), v in self._series.items() if n == name]

    def get(self, name: str, **labels: str):
        """One series, or ``None`` if it was never created."""
        return self._series.get((name, _label_key(labels)))

    def value(self, name: str, **labels: str) -> float:
        """A counter/gauge value (0 for a series never touched)."""
        instrument = self.get(name, **labels)
        if instrument is None:
            return 0
        assert isinstance(instrument, (Counter, Gauge))
        return instrument.value

    def total(self, name: str) -> float:
        """Sum of a counter metric across all its label sets."""
        return sum(c.value for c in self.series(name))

    def __iter__(self) -> Iterator:
        return iter(self._series.values())

    def items(self) -> Iterator[tuple[tuple[str, LabelSet], object]]:
        """``((name, labels), instrument)`` pairs — the stable series keys
        delta consumers (the telemetry bus) diff against."""
        return iter(self._series.items())

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> dict:
        """JSON-friendly dump of every series, grouped by metric name."""
        out: dict[str, list[dict]] = {}
        for (name, labels), instrument in self._series.items():
            entry: dict = {"labels": dict(labels)}
            if isinstance(instrument, Histogram):
                entry.update(instrument.summary())
            elif isinstance(instrument, Gauge):
                entry["value"] = instrument.value
                entry["high"] = instrument.high
            else:
                assert isinstance(instrument, Counter)
                entry["value"] = instrument.value
            out.setdefault(name, []).append(entry)
        return out
