"""Causal firing spans: one trace tree per propagation chain.

A *span* covers one hop of a causal chain in virtual time: a shell
processing an event, a message crossing the network, a translator
performing a native write.  Spans form trees — each span records its
parent and the tree's root — so a cross-site propagation chain

    Ws at site A  →  N processed by A's shell  →  FireMessage over the
    network  →  RHS executed at B's shell  →  WR/W at B's translator

is queryable as one connected tree whose total extent is exactly the
end-to-end propagation latency the metric guarantees bound with ``κ``.

Causality crosses scheduler callbacks, so the tracer keeps an explicit
*activation stack*: synchronous work pushes its span, and asynchronous
hand-offs (network delivery, translator service-time completions) capture
the current span at schedule time and re-activate it in the callback
(:meth:`Tracer.bind`).  Components consult :attr:`Tracer.enabled` before
touching the tracer at all, so an un-traced run pays one attribute load
and branch per hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Union

from repro.core.timebase import Ticks, to_seconds


@dataclass(frozen=True)
class SpanContext:
    """The wire-portable identity of a span: trace id + span id.

    A context is what crosses a process (or socket) boundary: it carries
    just enough to parent a remote child span — the tree it belongs to
    (``trace_id``, the root span's id) and the span to hang the child on
    (``span_id``).  ``cm.deliver`` frames ship one in their ``trace``
    field, and the receiving endpoint resumes it so the cross-shell chain
    reconnects into a single tree without sharing any Python objects.
    """

    trace_id: int
    span_id: int

    @property
    def root_id(self) -> int:
        """Alias: a context's trace id is its tree's root span id."""
        return self.trace_id

    def to_wire(self) -> dict:
        """The JSON-safe form carried in a ``cm.deliver`` frame."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, data: Any) -> Optional["SpanContext"]:
        """Parse a frame's ``trace`` field; ``None`` for absent/malformed."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not isinstance(trace_id, int) or not isinstance(span_id, int):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass
class Span:
    """One hop of a causal chain, in virtual time."""

    span_id: int
    parent_id: Optional[int]
    root_id: int
    name: str
    site: str
    start: Ticks
    end: Optional[Ticks] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> Ticks:
        """Span extent in ticks (0 while unfinished)."""
        return (self.end - self.start) if self.end is not None else 0

    @property
    def context(self) -> SpanContext:
        """This span's wire-portable identity."""
        return SpanContext(trace_id=self.root_id, span_id=self.span_id)

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "root_id": self.root_id,
            "name": self.name,
            "site": self.site,
            "start": self.start,
            "end": self.end,
            "start_s": to_seconds(self.start),
            "end_s": to_seconds(self.end) if self.end is not None else None,
            "attrs": self.attrs,
        }

    def __str__(self) -> str:
        return (
            f"{self.name}@{self.site} [{self.start}..{self.end}] "
            f"#{self.span_id}<-{self.parent_id}"
        )


class SpanTree:
    """One connected causal tree (all spans sharing a root)."""

    def __init__(self, spans: list[Span]) -> None:
        if not spans:
            raise ValueError("a span tree needs at least one span")
        self.spans = sorted(spans, key=lambda s: (s.start, s.span_id))
        self.root = min(self.spans, key=lambda s: s.span_id)
        self._children: dict[Optional[int], list[Span]] = {}
        for span in self.spans:
            self._children.setdefault(span.parent_id, []).append(span)

    def children(self, span: Span) -> list[Span]:
        return self._children.get(span.span_id, [])

    @property
    def connected(self) -> bool:
        """Every non-root span's parent is in the tree."""
        ids = {s.span_id for s in self.spans}
        return all(
            s.parent_id in ids for s in self.spans if s is not self.root
        )

    @property
    def sites(self) -> list[str]:
        """Sites visited, in span start order."""
        seen: list[str] = []
        for span in self.spans:
            if not seen or seen[-1] != span.site:
                seen.append(span.site)
        return seen

    def end_to_end(self) -> Ticks:
        """Root start to the latest finish anywhere in the tree — the
        chain's total propagation latency."""
        last = max(
            (s.end for s in self.spans if s.end is not None),
            default=self.root.start,
        )
        return last - self.root.start

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in start order."""
        return [s for s in self.spans if s.name == name]

    def render(self) -> str:
        """Indented text rendering of the tree."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            extent = (
                f"{to_seconds(span.start):.3f}s"
                + (
                    f" +{to_seconds(span.duration):.3f}s"
                    if span.duration
                    else ""
                )
            )
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            lines.append(
                f"{'  ' * depth}{span.name}@{span.site} {extent}"
                + (f"  {attrs}" if attrs else "")
            )
            for child in self.children(span):
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)


class Tracer:
    """Span recorder with an explicit activation stack.

    Disabled by default: every instrumentation hook checks
    :attr:`enabled` first, so tracing costs nothing until a sink is
    attached or :meth:`enable` is called.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.spans: list[Span] = []
        self._stack: list[Union[Span, SpanContext]] = []
        self._next_id = 1
        self._emit: Optional[Callable[[Span], None]] = None

    def enable(self) -> None:
        self.enabled = True

    def on_finish(self, emit: Callable[[Span], None]) -> None:
        """Stream finished spans to a sink callback."""
        self._emit = emit
        self.enabled = True

    # -- recording -------------------------------------------------------------

    @property
    def current(self) -> Optional[Union[Span, SpanContext]]:
        """The innermost activation (a local :class:`Span`, or a
        :class:`SpanContext` resumed off the wire); ``None`` outside any
        chain."""
        return self._stack[-1] if self._stack else None

    def start(
        self,
        name: str,
        site: str,
        start: Ticks,
        parent: Optional[Union[Span, SpanContext]] = None,
        **attrs,
    ) -> Span:
        """Open a span parented on ``parent`` (or the current activation).

        ``parent`` may be a remote :class:`SpanContext` — the new span
        then joins the remote tree by id, reconnecting a chain that
        crossed a socket.
        """
        if parent is None:
            parent = self.current
        span_id = self._next_id
        self._next_id += 1
        span = Span(
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            root_id=parent.root_id if parent is not None else span_id,
            name=name,
            site=site,
            start=start,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def finish(self, span: Span, end: Ticks) -> None:
        span.end = end
        if self._emit is not None:
            self._emit(span)

    def push(self, span: Union[Span, SpanContext]) -> None:
        self._stack.append(span)

    def pop(self) -> None:
        self._stack.pop()

    def bind(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Capture the current activation for a scheduled callback.

        The returned callable re-activates the captured span around ``fn``,
        which is how causality survives a trip through the discrete-event
        scheduler (translator service completions, retry backoffs).
        """
        captured = self.current
        if captured is None:
            return fn

        def bound() -> None:
            self._stack.append(captured)
            try:
                fn()
            finally:
                self._stack.pop()

        return bound

    # -- queries ---------------------------------------------------------------

    def roots(self) -> list[Span]:
        """All tree roots, in creation order."""
        return [s for s in self.spans if s.span_id == s.root_id]

    def tree(self, root: Span | int) -> SpanTree:
        """The full causal tree containing ``root`` (a span or a root id)."""
        root_id = root if isinstance(root, int) else root.root_id
        members = [s for s in self.spans if s.root_id == root_id]
        return SpanTree(members)

    def trees(self) -> Iterator[SpanTree]:
        """Every causal tree, in root-creation order."""
        for root in self.roots():
            yield self.tree(root)

    def __len__(self) -> int:
        return len(self.spans)
