"""Flight recorder: bounded per-site ring buffers of telemetry digests.

Full tracing keeps every span of a run alive — exactly right for
experiments, exactly wrong for a long-running deployment.  The flight
recorder is the always-affordable middle ground the ROADMAP's
ring-buffer item asks for: each site appends compact digests (event
processed, rule fired, frame sent/received, failure notice) into a
bounded ``deque``, so memory is O(sites × capacity) no matter how long
the run, and the hot path is one tuple append.

The payoff comes at failure time.  :meth:`FlightRecorder.dump` freezes
the current ring contents into a *dump* — the last-N-things-that-happened
digest a post-mortem wants — and the shells and run-report builder call
it on every :class:`~repro.cm.failures.FailureNotice` intake and on every
guarantee found violated, so the run report carries the evidence trail
for each incident without anyone having enabled full tracing up front.

Digests store their ``detail`` payload by reference and stringify it
only when a dump or rendering actually happens; recording never formats.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Optional

from repro.core.timebase import Ticks, to_seconds

#: Default per-site ring capacity.  256 digests cover several seconds of
#: salary-scenario traffic — enough context around an incident without
#: letting an idle site pin unbounded history.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Per-site bounded digest rings with dump-on-incident.

    - :meth:`record` is the hot path: resolve the site's ring (one dict
      lookup) and append a ``(time, kind, detail)`` tuple.  The ring is a
      ``deque(maxlen=capacity)``, so overflow discards the oldest digest
      in O(1).
    - :meth:`dump` snapshots all rings (merged, time-ordered) under a
      ``reason`` string.  Dumps are deduplicated by reason: one incident
      relayed to N shells produces one dump, not N copies.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"flight ring capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._rings: dict[str, deque] = {}
        #: Frozen incident digests, in dump order.
        self.dumps: list[dict] = []
        self._dumped_reasons: set[str] = set()
        #: Total digests ever recorded (rings only keep the newest).
        self.records_taken = 0

    # -- recording (hot path) --------------------------------------------------

    def record(self, site: str, kind: str, time: Ticks, detail: Any) -> None:
        """Append one digest to ``site``'s ring."""
        ring = self._rings.get(site)
        if ring is None:
            ring = self._rings[site] = deque(maxlen=self.capacity)
        ring.append((time, kind, detail))
        self.records_taken += 1

    # -- dumping ----------------------------------------------------------------

    def digest(self, site: Optional[str] = None) -> list[dict]:
        """The current ring contents as JSON-safe dicts, time-ordered.

        ``site=None`` merges every site's ring.  This is where ``detail``
        payloads are finally stringified.
        """
        if site is not None:
            rings = [(site, self._rings.get(site, ()))]
        else:
            rings = sorted(self._rings.items())
        rows = [
            (time, ring_site, kind, detail)
            for ring_site, ring in rings
            for (time, kind, detail) in ring
        ]
        rows.sort(key=lambda row: row[0])
        return [
            {
                "time": time,
                "time_s": round(to_seconds(time), 6),
                "site": ring_site,
                "kind": kind,
                "detail": str(detail),
            }
            for (time, ring_site, kind, detail) in rows
        ]

    def dump(self, reason: str, time: Ticks) -> Optional[dict]:
        """Freeze the rings into an incident dump (once per ``reason``).

        Returns the dump dict, or ``None`` when ``reason`` already dumped
        — the dedup that keeps a notice relayed to every peer from
        multiplying into identical dumps.
        """
        if reason in self._dumped_reasons:
            return None
        self._dumped_reasons.add(reason)
        dump = {
            "reason": reason,
            "time": time,
            "time_s": round(to_seconds(time), 6),
            "records": self.digest(),
        }
        self.dumps.append(dump)
        return dump

    # -- introspection -----------------------------------------------------------

    @property
    def sites(self) -> list[str]:
        return sorted(self._rings)

    def ring_sizes(self) -> dict[str, int]:
        return {site: len(ring) for site, ring in sorted(self._rings.items())}

    def to_dict(self) -> dict:
        """The run-report form: configuration, fill levels, and dumps."""
        return {
            "capacity": self.capacity,
            "records_taken": self.records_taken,
            "ring_sizes": self.ring_sizes(),
            "dumps": list(self.dumps),
        }

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    def __iter__(self) -> Iterator[tuple]:
        for site, ring in sorted(self._rings.items()):
            for time, kind, detail in ring:
                yield (time, site, kind, detail)
