"""The live telemetry dashboard: ``python -m repro watch <experiment>``.

A :class:`WatchDashboard` subscribes to a :class:`~repro.obs.bus.TelemetryBus`
and renders shell, channel, rule, and failure telemetry as text frames
while the experiment runs.  On a TTY each frame repaints in place (ANSI
home+clear); on a pipe frames append, so the output stays greppable in CI
logs.

Attachment uses the scenario-hook seam
(:func:`repro.cm.manager.add_scenario_hook`): experiments build their
scenarios internally, so the watcher registers a hook, lets the
experiment run as usual, and every scenario the experiment constructs
gets a bus plus a self-rescheduling publish timer in *virtual* time —
which means the dashboard ticks at the same scenario-relative cadence on
the sim kernel (where a 60-virtual-second run finishes in milliseconds)
and on the wire runtime (where virtual time maps to scaled wall time and
the frames genuinely stream).
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.core.timebase import Ticks, seconds, to_seconds
from repro.obs.bus import TelemetryBus, TelemetryUpdate

#: Virtual seconds between dashboard frames.
DEFAULT_INTERVAL_S = 1.0


class WatchDashboard:
    """Aggregate telemetry updates and render terminal frames."""

    def __init__(
        self,
        experiment: str = "?",
        out: Optional[IO[str]] = None,
        interval_s: float = DEFAULT_INTERVAL_S,
    ) -> None:
        self.experiment = experiment
        self.out = out if out is not None else sys.stdout
        self.interval = seconds(interval_s)
        #: Current value per series key ``(name, labels_tuple)``.
        self.values: dict[tuple, float] = {}
        #: Delta of the most recent update, same keys.
        self.recent: dict[tuple, float] = {}
        self.frames_rendered = 0
        self.buses: list[TelemetryBus] = []
        self._last_time: Ticks = 0

    # -- scenario attachment ---------------------------------------------------

    def attach(self, scenario) -> TelemetryBus:
        """Scenario hook: give ``scenario`` a bus and a publish timer."""
        bus = TelemetryBus(scenario.obs.metrics)
        bus.subscribe(self.on_update)
        self.buses.append(bus)
        sim = scenario.sim

        def tick() -> None:
            bus.publish(sim.now)
            sim.after(self.interval, tick)

        sim.after(self.interval, tick)
        return bus

    # -- update intake -----------------------------------------------------------

    def on_update(self, update: TelemetryUpdate) -> None:
        self.recent = {}
        for delta in update.deltas:
            key = (delta["name"], tuple(sorted(delta["labels"].items())))
            self.values[key] = delta["value"]
            self.recent[key] = delta["delta"]
        self._last_time = update.time
        self.render_frame()

    # -- rendering ---------------------------------------------------------------

    def _rows(self, name: str) -> list[tuple[dict, float, float]]:
        """(labels, value, recent_delta) rows for one metric name."""
        rows = []
        for (series, labels), value in sorted(self.values.items()):
            if series == name:
                rows.append(
                    (dict(labels), value, self.recent.get((series, labels), 0))
                )
        return rows

    def _value(self, name: str, **labels) -> float:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.values.get(key, 0)

    def frame(self) -> str:
        """One rendered dashboard frame."""
        lines = [
            f"watch {self.experiment} · t={to_seconds(self._last_time):.1f}s "
            f"virtual · frame {self.frames_rendered + 1}"
        ]
        shell_rows = self._rows("shell_events_processed")
        if shell_rows:
            lines.append("  shells:")
            for labels, events, delta in shell_rows:
                site = labels.get("site", "?")
                fired = self._value("shell_rules_fired", site=site)
                failures = self._value("shell_failure_notices", site=site)
                marker = f" (+{delta:g})" if delta else ""
                line = (
                    f"    {site:12s} events={events:g}{marker} "
                    f"fired={fired:g}"
                )
                if failures:
                    line += f" failures={failures:g}"
                lines.append(line)
        channel_rows = self._rows("net_messages")
        if channel_rows:
            lines.append("  channels:")
            for labels, delivered, delta in channel_rows:
                src, dst = labels.get("src", "?"), labels.get("dst", "?")
                in_flight = self._value("net_in_flight", src=src, dst=dst)
                marker = f" (+{delta:g})" if delta else ""
                line = (
                    f"    {src}->{dst:10s} delivered={delivered:g}{marker} "
                    f"in_flight={in_flight:g}"
                )
                wire = self._value("wire_latency_ms", src=src, dst=dst)
                if wire:
                    line += f" wire_frames={wire:g}"
                drops = self._value("wire_fault_drops", src=src, dst=dst)
                if drops:
                    line += f" fault_drops={drops:g}"
                lines.append(line)
        rule_rows = self._rows("rule_fired")
        if rule_rows:
            lines.append("  rules:")
            for labels, fired, delta in rule_rows:
                marker = f" (+{delta:g})" if delta else ""
                lines.append(
                    f"    {labels.get('rule', '?'):40s} "
                    f"@{labels.get('site', '?'):8s} "
                    f"fired={fired:g}{marker}"
                )
        return "\n".join(lines)

    def render_frame(self) -> None:
        text = self.frame()
        if self.out.isatty():  # pragma: no cover - interactive path
            self.out.write("\x1b[H\x1b[2J" + text + "\n")
        else:
            self.out.write(text + "\n\n")
        self.out.flush()
        self.frames_rendered += 1


def watch_experiment(
    experiment: str,
    config=None,
    interval_s: float = DEFAULT_INTERVAL_S,
    out: Optional[IO[str]] = None,
) -> int:
    """Run one experiment with the live dashboard attached.

    Returns a process exit code: 0 when the experiment's claim
    reproduced, 1 when it did not, 2 for an unknown experiment id.
    """
    from repro.cm.manager import add_scenario_hook, remove_scenario_hook
    from repro.experiments.runner import EXPERIMENTS

    stream = out if out is not None else sys.stdout
    if experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {experiment!r} "
            f"(have: {', '.join(EXPERIMENTS)})",
            file=sys.stderr,
        )
        return 2
    dashboard = WatchDashboard(
        experiment=experiment, out=stream, interval_s=interval_s
    )
    hook = add_scenario_hook(dashboard.attach)
    try:
        __, run = EXPERIMENTS[experiment]
        result = run(config) if config is not None else run()
    finally:
        remove_scenario_hook(hook)
    # One final publish per scenario: whatever moved after the last timer
    # tick (end-of-run flushes, teardown counters) still reaches the view.
    for bus in dashboard.buses:
        bus.publish(dashboard._last_time)
    claim_holds = bool(getattr(result, "claim_holds", True))
    stream.write(
        f"watch {experiment}: {dashboard.frames_rendered} frames, "
        f"{sum(bus.updates_published for bus in dashboard.buses)} updates "
        f"across {len(dashboard.buses)} scenario(s) — "
        f"{'REPRODUCED' if claim_holds else 'NOT REPRODUCED'}\n"
    )
    stream.flush()
    return 0 if claim_holds else 1
