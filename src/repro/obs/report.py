"""The structured end-of-run report.

A :class:`RunReport` is the one document that makes two runs comparable:
per-constraint firing counts, propagation-latency histograms, network
channel statistics and queue depths, translator RISI op counts, failure
classifications, and per-guarantee staleness.  It is assembled from the
scenario's metrics registry, guarantee-status board, and (when tracing was
on) span store — :meth:`repro.cm.manager.ConstraintManager.run_report`
builds one, and ``experiments/runner.py --json`` persists them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.core.timebase import Ticks, to_seconds
from repro.obs.metrics import Histogram, MetricsRegistry


@dataclass
class RunReport:
    """Structured summary of one scenario run (all times in seconds)."""

    horizon_s: float
    dispatch: dict[str, dict[str, int]]
    constraints: list[dict] = field(default_factory=list)
    propagation: list[dict] = field(default_factory=list)
    network: dict = field(default_factory=dict)
    translators: list[dict] = field(default_factory=list)
    failures: dict = field(default_factory=dict)
    guarantees: list[dict] = field(default_factory=list)
    scheduler: dict = field(default_factory=dict)
    traces: dict = field(default_factory=dict)
    trace_index: dict = field(default_factory=dict)
    #: Static CM-Lint findings over the configuration (list of
    #: ``Diagnostic.to_dict()`` entries), so a persisted run report records
    #: what was statically knowable about the wiring that produced it.
    lint: list[dict] = field(default_factory=list)
    #: Per-site per-rule dispatch profile (matcher hits/misses, RHS wall-ns
    #: histograms); empty unless rule profiling was enabled.
    rule_profile: dict = field(default_factory=dict)
    #: Flight-recorder digest — ring fill levels plus every incident dump
    #: (failures and guarantee violations); empty unless the recorder was
    #: enabled.
    flight: dict = field(default_factory=dict)
    #: Per-site batched-dispatch summary (batch counts, batch-size
    #: histogram, per-shard event counters); empty for sites that never
    #: ran the batched path.
    batching: dict = field(default_factory=dict)
    #: Certified-parallel-phase facts: per-site plan digests (phases,
    #: certified pairs, barrier reasons, hoisted-condition counts) plus
    #: the race sanitizer's verdict when one was attached; empty when
    #: neither ``parallel_phases`` nor ``sanitize`` was on.
    parallelism: dict = field(default_factory=dict)
    #: Shell-process supervision facts (pid, liveness, exit code,
    #: restarts per site plus worker-pool utilization); ``{"enabled":
    #: False}`` on the in-process runtimes.
    processes: dict = field(default_factory=lambda: {"enabled": False})

    def to_dict(self) -> dict:
        return {
            "horizon_s": self.horizon_s,
            "dispatch": self.dispatch,
            "constraints": self.constraints,
            "propagation": self.propagation,
            "network": self.network,
            "translators": self.translators,
            "failures": self.failures,
            "guarantees": self.guarantees,
            "scheduler": self.scheduler,
            "traces": self.traces,
            "trace_index": self.trace_index,
            "lint": self.lint,
            "rule_profile": self.rule_profile,
            "flight": self.flight,
            "batching": self.batching,
            "parallelism": self.parallelism,
            "processes": self.processes,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def write_to(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    def render(self) -> str:
        """Human-readable digest (the JSON carries the full detail)."""
        lines = [f"run report (horizon {self.horizon_s:g}s)"]
        total = self.dispatch.get("total", {})
        lines.append(
            f"  dispatch: {total.get('events_processed', 0)} events, "
            f"{total.get('candidates_considered', 0)} candidates, "
            f"{total.get('rules_fired', 0)} fired "
            f"({total.get('rules_compiled', 0)}/"
            f"{total.get('rules_installed', 0)} rules compiled, "
            f"{total.get('rules_fallback', 0)} fallback)"
        )
        for entry in self.constraints:
            fired = sum(entry["rules_fired"].values())
            lines.append(
                f"  constraint {entry['constraint']}: "
                f"{entry['strategy']} strategy, {fired} firings"
            )
        for entry in self.propagation:
            lines.append(
                f"  propagation {entry['family']}: n={entry['count']}, "
                f"mean={entry['mean_s']:.3f}s, max={entry['max_s']:.3f}s"
            )
        net = self.network
        if net:
            lines.append(
                f"  network: {net.get('messages_sent', 0)} sent, "
                f"{net.get('messages_dropped', 0)} dropped, "
                f"{len(net.get('channels', []))} channels"
            )
        for entry in self.translators:
            lines.append(
                f"  translator {entry['source']}: "
                f"{entry['reads_requested']}r/{entry['writes_requested']}w, "
                f"{entry['notifications_delivered']} notify"
            )
        failures = self.failures
        if failures.get("total", 0):
            lines.append(
                f"  failures: {failures.get('metric', 0)} metric, "
                f"{failures.get('logical', 0)} logical, "
                f"{failures.get('recoveries', 0)} recoveries"
            )
        for entry in self.guarantees:
            staleness = entry["staleness_s"]
            lines.append(
                f"  guarantee {entry['name']}: "
                f"{'standing' if entry['standing'] else 'NOT standing'}, "
                f"stale {staleness:g}s ({entry['staleness_fraction']:.1%})"
            )
        for site, entry in self.batching.items():
            suffix = ""
            if entry.get("shards", 1) > 1:
                suffix = (
                    f", {entry['shards']} shards "
                    f"({entry.get('barrier_events', 0)} barrier)"
                )
            lines.append(
                f"  batching {site}: {entry.get('batch_events', 0)} events "
                f"in {entry.get('batches_processed', 0)} batches "
                f"(p99 size {(entry.get('batch_size') or {}).get('p99') or 0:g})"
                f"{suffix}"
            )
        parallelism = self.parallelism
        for site, entry in parallelism.get("sites", {}).items():
            plan = entry.get("plan") or {}
            lines.append(
                f"  parallelism {site}: {len(plan.get('phases', []))} "
                f"phases, {plan.get('certified_pairs', 0)} certified "
                f"pairs, {entry.get('hoisted_conditions', 0)} hoisted "
                f"conditions"
            )
        sanitizer = parallelism.get("sanitizer", {})
        if sanitizer.get("enabled"):
            verdict = "ok" if sanitizer.get("ok") else "RACES FLAGGED"
            lines.append(
                f"  sanitizer: {verdict} "
                f"({sanitizer.get('race_count', 0)} races, "
                f"{sanitizer.get('predicted_conflicts', 0)} conflicts "
                f"serialized by the plan)"
            )
        processes = self.processes
        if processes.get("enabled"):
            sites = processes.get("sites", {})
            live = sum(1 for entry in sites.values() if entry.get("alive"))
            lines.append(
                f"  processes: {len(sites)} shell processes, {live} alive"
            )
        flight = self.flight
        if flight:
            lines.append(
                f"  flight: {flight.get('records_taken', 0)} digests over "
                f"{len(flight.get('ring_sizes', {}))} rings, "
                f"{len(flight.get('dumps', []))} dumps"
            )
            for dump in flight.get("dumps", []):
                lines.append(
                    f"    dump {dump['reason']} at {dump['time_s']:g}s "
                    f"({len(dump['records'])} records)"
                )
        index = self.trace_index
        if index:
            lines.append(
                f"  trace: {index.get('events_recorded', 0)} events over "
                f"{index.get('items_tracked', 0)} items, "
                f"{index.get('state_versions', 0)} state versions, "
                f"{index.get('interpretation_materializations', 0)} "
                f"materializations"
            )
        return "\n".join(lines)


def _histogram_entry(hist: Histogram) -> dict:
    entry = dict(hist.labels)
    entry.update(hist.summary())
    entry["mean_s"] = entry.pop("mean_s")
    entry["max_s"] = entry.get("max_s") or 0.0
    return entry


def build_run_report(cm: Any) -> RunReport:
    """Assemble the report for a :class:`~repro.cm.manager.ConstraintManager`.

    Typed as ``Any`` to keep :mod:`repro.obs` import-independent of
    :mod:`repro.cm`; the manager's ``run_report()`` method is the public
    entry point.
    """
    scenario = cm.scenario
    registry: MetricsRegistry = scenario.obs.metrics
    horizon: Ticks = scenario.trace.horizon

    report = RunReport(
        horizon_s=to_seconds(horizon),
        dispatch=cm.stats(),
    )

    # -- per-constraint firing counts ---------------------------------------
    for installed in cm.installed:
        rule_names = [rule.name for rule in installed.strategy.rules]
        fired = {
            name: int(
                sum(
                    counter.value
                    for counter in registry.series("rule_fired")
                    if dict(counter.labels).get("rule") == name
                )
            )
            for name in rule_names
        }
        report.constraints.append(
            {
                "constraint": str(installed.constraint),
                "strategy": installed.strategy.name,
                "kind": installed.strategy.kind,
                "rules_fired": fired,
            }
        )

    # -- propagation latency -------------------------------------------------
    for hist in registry.series("propagation_latency"):
        entry = {"family": dict(hist.labels).get("family", "?")}
        entry.update(hist.summary())
        entry["max_s"] = entry.get("max_s") or 0.0
        report.propagation.append(entry)

    # -- network --------------------------------------------------------------
    network = scenario.network
    channels = []
    for hist in registry.series("net_latency"):
        labels = dict(hist.labels)
        channel = f"{labels.get('src', '?')}->{labels.get('dst', '?')}"
        gauge = registry.get(
            "net_in_flight", src=labels.get("src"), dst=labels.get("dst")
        )
        entry = {
            "channel": channel,
            "max_in_flight": int(gauge.high) if gauge is not None else 0,
        }
        entry.update(hist.summary())
        wire_ms = registry.get(
            "wire_latency_ms", src=labels.get("src"), dst=labels.get("dst")
        )
        if wire_ms is not None and wire_ms.count:
            # Wire-runtime channels record real milliseconds next to the
            # virtual-tick series; summarize the exact stats only (the
            # histogram's buckets — and so its quantiles — are tick-scaled).
            entry["wire_ms"] = {
                "count": wire_ms.count,
                "mean_ms": round(wire_ms.mean, 3),
                "min_ms": round(wire_ms.min, 3),
                "max_ms": round(wire_ms.max, 3),
            }
            drops = registry.value(
                "wire_fault_drops", src=labels.get("src"), dst=labels.get("dst")
            )
            if drops:
                entry["wire_fault_drops"] = drops
        channels.append(entry)
    report.network = {
        "messages_sent": network.messages_sent,
        "messages_dropped": network.messages_dropped,
        "channels": channels,
    }

    # -- translators ----------------------------------------------------------
    seen: set[int] = set()
    for shell in cm.shells.values():
        for translator in shell.translators.values():
            if id(translator) in seen:
                continue
            seen.add(id(translator))
            ops = {
                dict(counter.labels)["op"]: counter.value
                for counter in registry.series("ris_ops")
                if dict(counter.labels).get("source") == translator.source.name
            }
            report.translators.append(
                {
                    "source": translator.source.name,
                    "site": shell.site,
                    "kind": translator.kind,
                    "reads_requested": translator.reads_requested,
                    "writes_requested": translator.writes_requested,
                    "notifications_delivered": (
                        translator.notifications_delivered
                    ),
                    "notifications_suppressed": (
                        translator.notifications_suppressed
                    ),
                    "ris_ops": ops,
                }
            )

    # -- failures --------------------------------------------------------------
    notices = cm.board.notices
    by_kind: dict[str, int] = {}
    recoveries = 0
    for notice in notices:
        if notice.recovered:
            recoveries += 1
        else:
            kind = getattr(notice.kind, "value", str(notice.kind))
            by_kind[kind] = by_kind.get(kind, 0) + 1
    report.failures = {
        "total": len(notices),
        "metric": by_kind.get("metric", 0),
        "logical": by_kind.get("logical", 0),
        "recoveries": recoveries,
        "notices": [notice.to_dict() for notice in notices],
    }

    # -- guarantee staleness ---------------------------------------------------
    flight = scenario.obs.flight
    for guarantee in cm.board.guarantees():
        invalid = cm.board.invalid_intervals(guarantee, horizon)
        stale: Ticks = invalid.total_length
        standing = cm.board.is_valid(guarantee)
        if flight is not None and (not standing or stale):
            # A violated (or ever-invalid) guarantee freezes the rings:
            # the report carries the incident's last-N-digests context.
            flight.dump(f"guarantee:{guarantee.name}", horizon)
        report.guarantees.append(
            {
                "name": guarantee.name,
                "metric": guarantee.metric,
                "standing": standing,
                "staleness_s": to_seconds(stale),
                "staleness_fraction": (
                    to_seconds(stale) / to_seconds(horizon) if horizon else 0.0
                ),
            }
        )

    # -- scheduler -------------------------------------------------------------
    sim = scenario.sim
    report.scheduler = {
        "callbacks_run": sim.events_processed,
        "max_queue_depth": sim.max_queue_depth,
    }

    # -- traces (only when tracing was on) ------------------------------------
    tracer = scenario.obs.tracer
    if tracer.spans:
        trees = list(tracer.trees())
        deepest: Optional[Ticks] = max(
            (tree.end_to_end() for tree in trees), default=None
        )
        report.traces = {
            "spans": len(tracer.spans),
            "trees": len(trees),
            "max_end_to_end_s": (
                to_seconds(deepest) if deepest is not None else 0.0
            ),
        }

    # -- per-rule dispatch profile (only when profiling was on) ----------------
    for site, shell in cm.shells.items():
        profile = shell.rule_profile()
        if profile:
            report.rule_profile[site] = profile

    # -- batched dispatch (only for sites that ran the batched path) -----------
    for site, shell in cm.shells.items():
        entry = shell.batching_stats()
        if entry:
            report.batching[site] = entry

    # -- certified parallel phases & the race sanitizer ------------------------
    parallel_sites = {}
    for site, shell in cm.shells.items():
        stats = shell.parallelism_stats()
        if stats:
            parallel_sites[site] = stats
    sanitizer = getattr(scenario, "sanitizer", None)
    if parallel_sites or sanitizer is not None:
        report.parallelism = {
            "enabled": bool(parallel_sites),
            "sites": parallel_sites,
            "sanitizer": (
                sanitizer.report()
                if sanitizer is not None
                else {"enabled": False}
            ),
        }

    # -- shell processes (only the proc runtime has any) -----------------------
    process_report = getattr(scenario.runtime_impl, "process_report", None)
    if process_report is not None:
        report.processes = process_report()

    # -- flight recorder (only when the recorder was attached) -----------------
    if flight is not None:
        report.flight = flight.to_dict()

    # -- execution-trace recording/index counters ------------------------------
    report.trace_index = scenario.trace.stats()

    # -- static lint findings over the (still-wired) configuration -------------
    from repro.analysis import lint_manager

    report.lint = [
        finding.to_dict() for finding in lint_manager(cm).diagnostics
    ]
    return report
