"""repro — a reproduction of *A Toolkit for Constraint Management in
Heterogeneous Information Systems* (Chawathe, Garcia-Molina, Widom;
ICDE 1996).

The package provides:

- :mod:`repro.core` — the formal framework: events, rules (interfaces and
  strategies), guarantees, execution traces, and trace-based checkers.
- :mod:`repro.sim` — the deterministic discrete-event substrate standing in
  for the paper's real network and wall clock.
- :mod:`repro.runtime` — the runtime seam: the :class:`Runtime` protocol
  with a sim-kernel implementation and a wire implementation that runs
  CM-Shells as asyncio tasks over real sockets (length-prefixed JSON-RPC).
- :mod:`repro.ris` — from-scratch heterogeneous information sources
  (relational DBMS, flat-file store, object store, bibliographic server,
  whois directory, flaky legacy system).
- :mod:`repro.cm` — the toolkit itself: CM-Shells, CM-Translators, CM-RID
  configuration, and the :class:`~repro.cm.manager.ConstraintManager` façade.
- :mod:`repro.constraints`, :mod:`repro.protocols` — constraint types and
  the Demarcation Protocol.
- :mod:`repro.obs` — the instrumentation subsystem: metrics registry,
  causal firing traces, structured sinks, and the end-of-run report.
- :mod:`repro.workloads`, :mod:`repro.apps`, :mod:`repro.experiments` —
  scenario generators, guarantee-consuming applications, and the
  experiment harness reproducing the paper's claims.

The stable public surface is re-exported here, so scenarios need only::

    from repro import (
        CMRID, ConstraintManager, Scenario, CopyConstraint,
        InterfaceKind, follows, parse_rule, seconds,
    )

Quickstart: see ``examples/quickstart.py`` or the README.
"""

from repro.cm import (
    CMRID,
    CMShell,
    CMTranslator,
    ConstraintBuilder,
    ConstraintManager,
    FailureNotice,
    GuaranteeStatusBoard,
    InstalledConstraint,
    Scenario,
    ServiceModel,
    SiteBuilder,
    verify,
)
from repro.constraints import (
    ArithmeticConstraint,
    Constraint,
    CopyConstraint,
    InequalityConstraint,
    ReferentialConstraint,
)
from repro.core.dsl import (
    parse_condition,
    parse_event_template,
    parse_rule,
    parse_rules,
)
from repro.core.formula import FormulaChecker
from repro.core.guarantee_dsl import parse_guarantee
from repro.core.guarantees import (
    Guarantee,
    GuaranteeReport,
    follows,
    invariant,
    leads,
    monitor_window,
    periodic,
    referential_within,
    strictly_follows,
)
from repro.core.interfaces import InterfaceKind
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import days, hours, minutes, seconds, to_seconds
from repro.obs import (
    FlightRecorder,
    Instrumentation,
    JsonlSink,
    MetricsRegistry,
    PrometheusExporter,
    RunReport,
    SpanContext,
    SpanTree,
    TelemetryBus,
    Tracer,
)
from repro.runtime import (
    AsyncRuntime,
    ChannelFaults,
    RunConfig,
    Runtime,
    SimRuntime,
    WireFaultPlan,
    resolve_runtime,
    run_equivalence,
)
from repro.sim.scheduler import Simulator

#: Alias for readers who know the class by the paper's component name.
CMManager = ConstraintManager

__all__ = [
    # toolkit façade and wiring
    "ConstraintManager",
    "CMManager",
    "Scenario",
    "SiteBuilder",
    "ConstraintBuilder",
    "InstalledConstraint",
    "CMRID",
    "CMShell",
    "CMTranslator",
    "ServiceModel",
    "FailureNotice",
    "GuaranteeStatusBoard",
    "verify",
    # constraints
    "Constraint",
    "CopyConstraint",
    "InequalityConstraint",
    "ReferentialConstraint",
    "ArithmeticConstraint",
    # rule / guarantee languages
    "parse_rule",
    "parse_rules",
    "parse_condition",
    "parse_event_template",
    "parse_guarantee",
    "FormulaChecker",
    # guarantee checkers
    "Guarantee",
    "GuaranteeReport",
    "follows",
    "leads",
    "strictly_follows",
    "invariant",
    "periodic",
    "referential_within",
    "monitor_window",
    # observability
    "Instrumentation",
    "MetricsRegistry",
    "Tracer",
    "SpanTree",
    "SpanContext",
    "FlightRecorder",
    "TelemetryBus",
    "JsonlSink",
    "PrometheusExporter",
    "RunReport",
    # runtimes (sim kernel and wire/asyncio)
    "Runtime",
    "SimRuntime",
    "AsyncRuntime",
    "RunConfig",
    "ChannelFaults",
    "WireFaultPlan",
    "resolve_runtime",
    "run_equivalence",
    # substrate
    "Simulator",
    "InterfaceKind",
    "MISSING",
    "DataItemRef",
    "seconds",
    "minutes",
    "hours",
    "days",
    "to_seconds",
]

__version__ = "1.3.0"
