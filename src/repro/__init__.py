"""repro — a reproduction of *A Toolkit for Constraint Management in
Heterogeneous Information Systems* (Chawathe, Garcia-Molina, Widom;
ICDE 1996).

The package provides:

- :mod:`repro.core` — the formal framework: events, rules (interfaces and
  strategies), guarantees, execution traces, and trace-based checkers.
- :mod:`repro.sim` — the deterministic discrete-event substrate standing in
  for the paper's real network and wall clock.
- :mod:`repro.ris` — from-scratch heterogeneous information sources
  (relational DBMS, flat-file store, object store, bibliographic server,
  whois directory, flaky legacy system).
- :mod:`repro.cm` — the toolkit itself: CM-Shells, CM-Translators, CM-RID
  configuration, and the :class:`~repro.cm.manager.ConstraintManager` façade.
- :mod:`repro.constraints`, :mod:`repro.protocols` — constraint types and
  the Demarcation Protocol.
- :mod:`repro.workloads`, :mod:`repro.apps`, :mod:`repro.experiments` —
  scenario generators, guarantee-consuming applications, and the
  experiment harness reproducing the paper's claims.

Quickstart: see ``examples/quickstart.py`` or the README.
"""

__version__ = "1.0.0"
