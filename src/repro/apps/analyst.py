"""The financial-analysis application of Section 6.4.

"Such a guarantee permits, for example, a financial analysis application at
the main office to proceed with the assurance of consistency, assuming it
runs in the above time interval."

The analyst runs once per simulated day inside the guaranteed window and
computes an aggregate over the head-office copies; because the periodic
guarantee promises branch/head-office equality throughout the window, the
aggregate equals what the branch data would give.  :meth:`reports` exposes
the computed aggregates together with the true branch-side aggregates at the
same instants, so experiments can verify the promise empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cm.manager import ConstraintManager
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import DAY, Ticks


@dataclass
class AnalystReport:
    """One nightly run: aggregate over copies vs. truth at the branch."""

    run_at: Ticks
    copy_total: float
    branch_total: float

    @property
    def consistent(self) -> bool:
        """Whether the copies' total matched the branch truth."""
        return abs(self.copy_total - self.branch_total) < 1e-9


class AnalystApp:
    """Nightly totals over the head-office balance copies."""

    def __init__(
        self,
        cm: ConstraintManager,
        src_family: str,
        dst_family: str,
        run_at: Ticks,  # tick-of-day inside the guaranteed window
        days: int,
    ):
        self.cm = cm
        self.src_family = src_family
        self.dst_family = dst_family
        self._reports: list[AnalystReport] = []
        for day in range(days):
            cm.scenario.sim.at(day * DAY + run_at, self._run)

    def _run(self) -> None:
        trace = self.cm.scenario.trace
        copy_total = 0.0
        branch_total = 0.0
        for dst_ref in trace.refs_of_family(self.dst_family):
            value = trace.current_value(dst_ref)
            if value is not MISSING:
                copy_total += float(value)
            src_ref = DataItemRef(self.src_family, dst_ref.args)
            branch_value = trace.current_value(src_ref)
            if branch_value is not MISSING:
                branch_total += float(branch_value)
        self._reports.append(
            AnalystReport(
                run_at=self.cm.scenario.sim.now,
                copy_total=round(copy_total, 2),
                branch_total=round(branch_total, 2),
            )
        )

    def reports(self) -> list[AnalystReport]:
        """All nightly runs so far."""
        return list(self._reports)
