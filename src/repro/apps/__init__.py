"""Applications that consume the toolkit's guarantees (Section 7.1).

The paper stresses that weakened guarantees are only useful if applications
can actually act on them.  This package models the four application patterns
the paper discusses:

- :class:`~repro.apps.tabulator.TabulatorApp` — tabulates every value a
  remote item takes; correct iff "Y follows X" AND "X leads Y" hold.
- :class:`~repro.apps.plotter.PlotterApp` — plots a path from a copied
  position stream; correct iff "Y strictly follows X" holds.
- :class:`~repro.apps.auditor.AuditorApp` — validates past query results
  using the Flag/Tb monitor guarantee (Section 6.3 / 7.1).
- :class:`~repro.apps.analyst.AnalystApp` — a financial-analysis batch job
  that runs inside the periodic-guarantee window (Section 6.4).
"""

from repro.apps.tabulator import TabulatorApp
from repro.apps.plotter import PlotterApp
from repro.apps.auditor import AuditorApp
from repro.apps.analyst import AnalystApp

__all__ = ["TabulatorApp", "PlotterApp", "AuditorApp", "AnalystApp"]
