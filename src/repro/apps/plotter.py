"""The path-plotting application of Section 3.3.1.

"If X represents the position of a robot and Y is its copy on a system that
plots the robot's path, we would like to receive the updated positions of
the robot in the order in which the updates are actually made" — the
"Y strictly follows X" guarantee.

The app records the copy's change sequence; :meth:`audit` checks that the
plotted sequence is order-consistent with the primary's true movement
history (every plotted pair appears in the same order at the primary).
The in-order-delivery ablation breaks exactly this audit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cm.manager import ConstraintManager
from repro.core.items import MISSING, DataItemRef


@dataclass
class PlotAudit:
    """Order consistency of the plotted path."""

    points_plotted: int
    out_of_order_pairs: list[tuple[object, object]]

    @property
    def ordered(self) -> bool:
        """Whether every plotted pair respected the primary's order."""
        return not self.out_of_order_pairs


class PlotterApp:
    """Plots the copied position stream (post-hoc, from the trace)."""

    def __init__(
        self,
        cm: ConstraintManager,
        src_ref: DataItemRef,
        dst_ref: DataItemRef,
    ):
        self.cm = cm
        self.src_ref = src_ref
        self.dst_ref = dst_ref

    def plotted_path(self) -> list[object]:
        """The sequence of positions the plotter drew (copy change list)."""
        timeline = self.cm.scenario.trace.timeline(self.dst_ref)
        return [
            value
            for __, value in timeline.change_points()
            if value is not MISSING
        ]

    def audit(self) -> PlotAudit:
        """Check the plotted order against the primary's true order."""
        path = self.plotted_path()
        src_timeline = self.cm.scenario.trace.timeline(self.src_ref)
        first_seen: dict[object, int] = {}
        last_seen: dict[object, int] = {}
        for index, (__, value) in enumerate(src_timeline.change_points()):
            if value is MISSING:
                continue
            first_seen.setdefault(value, index)
            last_seen[value] = index
        bad_pairs: list[tuple[object, object]] = []
        for earlier, later in zip(path, path[1:]):
            if earlier not in first_seen or later not in first_seen:
                bad_pairs.append((earlier, later))
                continue
            if first_seen[earlier] > last_seen[later]:
                bad_pairs.append((earlier, later))
        return PlotAudit(points_plotted=len(path), out_of_order_pairs=bad_pairs)
