"""The tabulating application of Section 7.1.

"Consider guarantees (1) and (2) from the viewpoint of an application that
runs at Y's site and tabulates the different values taken by X.  This
application can read Y and be assured that Y is a value previously taken by
X (due to guarantee (1)) and that Y does not miss any values that X takes
(due to guarantee (2))."

The app samples the local copy frequently and records the distinct values it
observes.  :meth:`audit` then compares the tabulation against the primary's
actual value history from the trace: with both guarantees standing, the
tabulation is complete and truthful; under polling (no guarantee (2)) it
will be missing values — which is precisely the experiment E2 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cm.manager import ConstraintManager
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import Ticks, seconds
from repro.sim.process import PeriodicTimer


@dataclass
class TabulationAudit:
    """How the tabulation compares to the primary's true history."""

    values_tabulated: int
    true_values: int
    missing_values: list[object]
    spurious_values: list[object]

    @property
    def complete(self) -> bool:
        """No value taken by the primary is missing from the tabulation."""
        return not self.missing_values

    @property
    def truthful(self) -> bool:
        """Every tabulated value was really taken by the primary."""
        return not self.spurious_values


class TabulatorApp:
    """Tabulates the values a copied item takes, by sampling the copy."""

    def __init__(
        self,
        cm: ConstraintManager,
        src_ref: DataItemRef,
        dst_ref: DataItemRef,
        sample_period: Ticks = seconds(0.1),
    ):
        self.cm = cm
        self.src_ref = src_ref
        self.dst_ref = dst_ref
        self.observed: list[object] = []
        self._timer = PeriodicTimer(
            cm.scenario.sim, sample_period, self._sample
        )

    def _sample(self) -> None:
        value = self.cm.scenario.trace.current_value(self.dst_ref)
        if value is MISSING:
            return
        if not self.observed or self.observed[-1] != value:
            if value not in self.observed:
                self.observed.append(value)

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    def audit(self) -> TabulationAudit:
        """Compare the tabulation with the primary's actual history."""
        timeline = self.cm.scenario.trace.timeline(self.src_ref)
        true_values = [
            v for v in timeline.distinct_values() if v is not MISSING
        ]
        missing = [v for v in true_values if v not in self.observed]
        spurious = [v for v in self.observed if v not in true_values]
        return TabulationAudit(
            values_tabulated=len(self.observed),
            true_values=len(true_values),
            missing_values=missing,
            spurious_values=spurious,
        )
