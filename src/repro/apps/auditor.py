"""The auditing application of Sections 6.3 and 7.1.

An application received query results computed from ``X`` and ``Y`` at some
past time and wants to know whether that computation saw a consistent state.
It reads the monitor strategy's auxiliary items ``Flag`` and ``Tb`` from the
CM-Shell at its site and applies the guarantee::

    ((Flag = true) ∧ (Tb = s))@t  =>  (X = Y)@@[s, t - κ]

If the query time falls inside ``[s, t - κ]``, the application can proceed
with confidence; otherwise the guarantee is inconclusive and the application
should recompute (the paper's recommended reaction).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.cm.shell import CMShell
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import Ticks


class AuditVerdict(Enum):
    """What the guarantee lets the application conclude."""

    #: The query ran on a provably consistent state.
    CONSISTENT = "consistent"
    #: The guarantee cannot vouch for that instant; recompute.
    INCONCLUSIVE = "inconclusive"


@dataclass
class AuditRecord:
    """One audit: the question asked and the answer obtained."""

    query_time: Ticks
    asked_at: Ticks
    flag: object
    tb: object
    verdict: AuditVerdict


class AuditorApp:
    """Reads Flag/Tb through the local CM-Shell and audits past queries."""

    def __init__(
        self,
        shell: CMShell,
        flag_ref: DataItemRef,
        tb_ref: DataItemRef,
        kappa: Ticks,
    ):
        self.shell = shell
        self.flag_ref = flag_ref
        self.tb_ref = tb_ref
        self.kappa = kappa
        self.audits: list[AuditRecord] = []

    def audit_query(self, query_time: Ticks) -> AuditVerdict:
        """Was the state consistent at ``query_time``?

        Reads the auxiliary data *now*; the consistent interval the guarantee
        certifies is ``[Tb, now - κ]``.
        """
        now = self.shell.sim.now
        flag = self.shell.store.read_local(self.flag_ref)
        tb = self.shell.store.read_local(self.tb_ref)
        if flag is True and tb is not MISSING and (
            int(tb) <= query_time <= now - self.kappa
        ):
            verdict = AuditVerdict.CONSISTENT
        else:
            verdict = AuditVerdict.INCONCLUSIVE
        self.audits.append(
            AuditRecord(
                query_time=query_time,
                asked_at=now,
                flag=flag,
                tb=tb,
                verdict=verdict,
            )
        )
        return verdict
