"""Common vocabulary for raw information sources.

Each RIS advertises a set of :class:`Capability` flags describing what its
native interface can do; CM-Translators consult these when deciding which
CM-Interfaces they can offer (Section 4.1: during initialization the
CM-Shells query the CM-Translators about local capabilities).

Errors raised by a RIS carry an errno-like :class:`RISErrorCode`.  The
CM-Translator maps these codes to the paper's failure classes (Section 5):
transient codes become *metric* failures, permanent codes become *logical*
failures.
"""

from __future__ import annotations

from enum import Enum, Flag, auto


class Capability(Flag):
    """What a source's native interface supports."""

    NONE = 0
    #: Values can be read on demand.
    READ = auto()
    #: Values can be written on demand.
    WRITE = auto()
    #: Records can be created and deleted.
    INSERT_DELETE = auto()
    #: The source can push update notifications (e.g. via triggers).
    NOTIFY = auto()
    #: The source evaluates predicates locally (conditional notification).
    LOCAL_CONDITIONS = auto()
    #: The source has a local constraint manager that can enforce local
    #: predicates (required by the Demarcation Protocol, Section 6.1).
    LOCAL_CONSTRAINTS = auto()
    #: The source supports local transactions (atomic multi-item updates).
    TRANSACTIONS = auto()


class RISErrorCode(Enum):
    """Errno-like error codes surfaced by raw sources.

    ``transient`` codes indicate the operation may succeed if retried (the
    translator classifies these as metric failures); non-transient codes
    indicate the interface contract is broken (logical failures).
    """

    #: The source is overloaded or briefly unavailable (transient).
    BUSY = "busy"
    #: The operation timed out (transient).
    TIMEOUT = "timeout"
    #: The source has crashed / is unreachable (permanent until reset).
    UNAVAILABLE = "unavailable"
    #: The named object does not exist.
    NOT_FOUND = "not-found"
    #: Input was malformed (bad query, wrong type).
    INVALID_REQUEST = "invalid-request"
    #: A local integrity constraint rejected the operation.
    CONSTRAINT_VIOLATION = "constraint-violation"
    #: The operation is not supported by this source at all.
    UNSUPPORTED = "unsupported"

    @property
    def transient(self) -> bool:
        """Whether retrying could help (drives metric-vs-logical mapping)."""
        return self in (RISErrorCode.BUSY, RISErrorCode.TIMEOUT)


class RISError(Exception):
    """Base error for all raw-information-source failures."""

    def __init__(self, code: RISErrorCode, message: str):
        super().__init__(f"[{code.value}] {message}")
        self.code = code
        self.message = message


class RawInformationSource:
    """Base class for raw sources.

    Concrete sources expose their own native APIs (SQL strings, file paths,
    lookup keys, ...); this base class only fixes the capability survey and a
    display name.  The heterogeneity is the point: nothing above the
    CM-Translator layer ever sees these native APIs.
    """

    #: Human-readable kind, e.g. "relational", "flat-file".
    kind: str = "abstract"

    def __init__(self, name: str):
        self.name = name

    def capabilities(self) -> Capability:
        """The capability flags of this source's native interface."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
