"""A small object-oriented database — the "OODB" source of the paper.

Classes declare typed attributes; objects are identified by OIDs and grouped
into class extents.  Unlike the relational engine, the native interface is
navigational (get object, read attribute, follow reference) rather than
declarative, so its CM-Translator is structurally different — which is the
heterogeneity the toolkit is meant to absorb.

The store offers a change hook (:meth:`on_change`), the moral equivalent of
an OODB's event notification service, so translators can implement Notify
Interfaces on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.ris.base import (
    Capability,
    RawInformationSource,
    RISError,
    RISErrorCode,
)

_TYPES: dict[str, type | tuple[type, ...]] = {
    "int": int,
    "float": (int, float),
    "str": str,
    "bool": bool,
    "ref": str,  # a reference is an OID string
}


@dataclass(frozen=True)
class ClassDef:
    """A class: named, typed attributes."""

    name: str
    attributes: dict[str, str]  # attribute name -> type name


@dataclass
class StoredObject:
    """One object: its OID, class, and attribute values."""

    oid: str
    class_name: str
    attributes: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ChangeEvent:
    """Reported to change-hook subscribers."""

    operation: str  # create | update | delete
    oid: str
    class_name: str
    attribute: Optional[str]
    old_value: Any
    new_value: Any


ChangeCallback = Callable[[ChangeEvent], None]


class ObjectStore(RawInformationSource):
    """Classes, extents, objects, and attribute access by OID."""

    kind = "object"

    def __init__(self, name: str):
        super().__init__(name)
        self._classes: dict[str, ClassDef] = {}
        self._objects: dict[str, StoredObject] = {}
        self._extents: dict[str, set[str]] = {}
        self._subscribers: list[ChangeCallback] = []
        self._next_oid = 1
        self._available = True

    def capabilities(self) -> Capability:
        """Full access plus a change feed (an OODB event service)."""
        return (
            Capability.READ
            | Capability.WRITE
            | Capability.INSERT_DELETE
            | Capability.NOTIFY
        )

    def set_available(self, available: bool) -> None:
        """Simulate the object server going down."""
        self._available = available

    def _check_available(self) -> None:
        if not self._available:
            raise RISError(
                RISErrorCode.UNAVAILABLE, f"object store {self.name} down"
            )

    # -- schema ------------------------------------------------------------

    def define_class(self, name: str, attributes: dict[str, str]) -> ClassDef:
        """Declare a class with its attribute types."""
        self._check_available()
        if name in self._classes:
            raise RISError(RISErrorCode.INVALID_REQUEST, f"class exists: {name!r}")
        for attr, type_name in attributes.items():
            if type_name not in _TYPES:
                raise RISError(
                    RISErrorCode.INVALID_REQUEST,
                    f"unknown attribute type {type_name!r} for {attr!r}",
                )
        class_def = ClassDef(name, dict(attributes))
        self._classes[name] = class_def
        self._extents[name] = set()
        return class_def

    def classes(self) -> list[str]:
        """All class names."""
        return sorted(self._classes)

    # -- change hook -----------------------------------------------------------

    def on_change(self, callback: ChangeCallback) -> None:
        """Subscribe to all create/update/delete events."""
        self._subscribers.append(callback)

    def _emit(self, event: ChangeEvent) -> None:
        for callback in self._subscribers:
            callback(event)

    # -- object lifecycle ---------------------------------------------------------

    def _check_value(self, class_def: ClassDef, attr: str, value: Any) -> None:
        if attr not in class_def.attributes:
            raise RISError(
                RISErrorCode.INVALID_REQUEST,
                f"class {class_def.name!r} has no attribute {attr!r}",
            )
        expected = _TYPES[class_def.attributes[attr]]
        if value is not None and not isinstance(value, expected):
            raise RISError(
                RISErrorCode.INVALID_REQUEST,
                f"attribute {attr!r} expects {class_def.attributes[attr]}, "
                f"got {value!r}",
            )

    def create(
        self, class_name: str, attributes: dict[str, Any], oid: str | None = None
    ) -> str:
        """Create an object; returns its OID."""
        self._check_available()
        class_def = self._classes.get(class_name)
        if class_def is None:
            raise RISError(RISErrorCode.NOT_FOUND, f"no class {class_name!r}")
        for attr, value in attributes.items():
            self._check_value(class_def, attr, value)
        if oid is None:
            oid = f"{class_name}:{self._next_oid}"
            self._next_oid += 1
        if oid in self._objects:
            raise RISError(RISErrorCode.INVALID_REQUEST, f"OID exists: {oid!r}")
        stored = StoredObject(oid, class_name, dict(attributes))
        self._objects[oid] = stored
        self._extents[class_name].add(oid)
        self._emit(ChangeEvent("create", oid, class_name, None, None, None))
        return oid

    def get(self, oid: str) -> StoredObject:
        """Fetch an object by OID."""
        self._check_available()
        stored = self._objects.get(oid)
        if stored is None:
            raise RISError(RISErrorCode.NOT_FOUND, f"no object {oid!r}")
        return stored

    def exists(self, oid: str) -> bool:
        """Whether an object with this OID exists."""
        self._check_available()
        return oid in self._objects

    def read_attr(self, oid: str, attr: str) -> Any:
        """Read one attribute."""
        stored = self.get(oid)
        class_def = self._classes[stored.class_name]
        if attr not in class_def.attributes:
            raise RISError(
                RISErrorCode.INVALID_REQUEST,
                f"class {stored.class_name!r} has no attribute {attr!r}",
            )
        return stored.attributes.get(attr)

    def write_attr(self, oid: str, attr: str, value: Any) -> None:
        """Write one attribute, emitting a change event."""
        stored = self.get(oid)
        class_def = self._classes[stored.class_name]
        self._check_value(class_def, attr, value)
        old = stored.attributes.get(attr)
        stored.attributes[attr] = value
        self._emit(
            ChangeEvent("update", oid, stored.class_name, attr, old, value)
        )

    def delete(self, oid: str) -> None:
        """Delete an object."""
        stored = self.get(oid)
        del self._objects[oid]
        self._extents[stored.class_name].discard(oid)
        self._emit(
            ChangeEvent("delete", oid, stored.class_name, None, None, None)
        )

    # -- queries --------------------------------------------------------------------

    def extent(self, class_name: str) -> list[str]:
        """All OIDs of a class."""
        self._check_available()
        if class_name not in self._extents:
            raise RISError(RISErrorCode.NOT_FOUND, f"no class {class_name!r}")
        return sorted(self._extents[class_name])

    def find(self, class_name: str, attr: str, value: Any) -> list[str]:
        """OIDs of class members whose attribute equals a value."""
        return [
            oid
            for oid in self.extent(class_name)
            if self._objects[oid].attributes.get(attr) == value
        ]

    def follow(self, oid: str, path: list[str]) -> Any:
        """Navigate a path of ``ref`` attributes, returning the final value.

        ``follow(emp, ['dept', 'manager', 'phone'])`` reads ``emp.dept`` (an
        OID), then that object's ``manager`` (an OID), then its ``phone``.
        """
        current: Any = oid
        for step_index, attr in enumerate(path):
            if not isinstance(current, str):
                raise RISError(
                    RISErrorCode.INVALID_REQUEST,
                    f"path step {step_index} is not a reference: {current!r}",
                )
            current = self.read_attr(current, attr)
        return current
