"""Raw Information Sources (RIS).

The bottom layer of Figure 2 in the paper: the actual, heterogeneous systems
holding the data.  Each source is implemented from scratch with a genuinely
different native interface (RISI), so the CM-Translators above them have real
heterogeneity to absorb:

- :mod:`repro.ris.relational` — a mini relational DBMS with a SQL subset,
  indexes, triggers and transactions (the "Sybase" of the paper's examples).
- :mod:`repro.ris.filestore` — a flat-file record store (the "Unix files"
  source): whole-file read/write, no transactions, no triggers.
- :mod:`repro.ris.objectstore` — a small object-oriented store with classes,
  typed attributes and OIDs.
- :mod:`repro.ris.bibliodb` — an append-mostly bibliographic server,
  query-only (drives the referential-integrity scenario).
- :mod:`repro.ris.whois` — a key-to-record directory with lookup-only access.
- :mod:`repro.ris.legacy` — an opaque legacy system whose update feed can
  fail silently (the Section 5 cautionary case).
"""

from repro.ris.base import (
    Capability,
    RawInformationSource,
    RISError,
    RISErrorCode,
)

__all__ = [
    "Capability",
    "RawInformationSource",
    "RISError",
    "RISErrorCode",
]
