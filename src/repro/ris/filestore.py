"""A flat-file record store — the paper's "Unix file system" source.

The native interface is deliberately primitive: whole files of text are read
and written by path, with per-file modification times.  There are no
transactions and no notifications; a CM-Translator wanting change detection
must poll (comparing mtimes or contents), exactly the situation the paper's
Section 4 polling strategy addresses.

A conventional record format (one ``key<TAB>value`` pair per line) is
provided by :func:`parse_records` / :func:`render_records` so translators can
map data items onto file entries; the store itself treats content as opaque
text, as a real file system would.
"""

from __future__ import annotations

from typing import Callable

from repro.core.timebase import Ticks
from repro.ris.base import (
    Capability,
    RawInformationSource,
    RISError,
    RISErrorCode,
)


def parse_records(content: str) -> dict[str, str]:
    """Parse ``key<TAB>value`` lines into a dict (later keys win)."""
    records: dict[str, str] = {}
    for line_number, line in enumerate(content.splitlines(), start=1):
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        if "\t" not in line:
            raise RISError(
                RISErrorCode.INVALID_REQUEST,
                f"malformed record on line {line_number}: {line!r}",
            )
        key, __, value = line.partition("\t")
        records[key] = value
    return records


def render_records(records: dict[str, str]) -> str:
    """Serialize a dict back into the line-based record format."""
    return "".join(f"{key}\t{value}\n" for key, value in sorted(records.items()))


class FlatFileStore(RawInformationSource):
    """An in-memory file system: paths, contents, and mtimes.

    ``clock`` supplies the current virtual time for mtimes; wire it to
    ``simulator.now`` via ``lambda: sim.now`` in scenarios (a plain
    ``lambda: 0`` suffices for unit tests).
    """

    kind = "flat-file"

    def __init__(self, name: str, clock: Callable[[], Ticks] = lambda: 0):
        super().__init__(name)
        self._clock = clock
        self._files: dict[str, str] = {}
        self._mtimes: dict[str, Ticks] = {}
        self._available = True
        self.reads = 0
        self.writes = 0

    def capabilities(self) -> Capability:
        """Read/write files; no notifications, no transactions."""
        return Capability.READ | Capability.WRITE | Capability.INSERT_DELETE

    def set_available(self, available: bool) -> None:
        """Simulate the file server becoming unreachable."""
        self._available = available

    def _check_available(self) -> None:
        if not self._available:
            raise RISError(
                RISErrorCode.UNAVAILABLE, f"file store {self.name} unreachable"
            )

    # -- the native interface ------------------------------------------------

    def read_file(self, path: str) -> str:
        """Return a file's content; NOT_FOUND if it does not exist."""
        self._check_available()
        self.reads += 1
        if path not in self._files:
            raise RISError(RISErrorCode.NOT_FOUND, f"no such file: {path!r}")
        return self._files[path]

    def write_file(self, path: str, content: str) -> None:
        """Create or overwrite a file."""
        self._check_available()
        self.writes += 1
        self._files[path] = content
        self._mtimes[path] = self._clock()

    def delete_file(self, path: str) -> None:
        """Remove a file; NOT_FOUND if absent."""
        self._check_available()
        if path not in self._files:
            raise RISError(RISErrorCode.NOT_FOUND, f"no such file: {path!r}")
        del self._files[path]
        del self._mtimes[path]

    def exists(self, path: str) -> bool:
        """Whether a file exists."""
        self._check_available()
        return path in self._files

    def mtime(self, path: str) -> Ticks:
        """Last modification time of a file."""
        self._check_available()
        if path not in self._mtimes:
            raise RISError(RISErrorCode.NOT_FOUND, f"no such file: {path!r}")
        return self._mtimes[path]

    def list_files(self) -> list[str]:
        """All paths, sorted."""
        self._check_available()
        return sorted(self._files)

    # -- record-level conveniences (used by workloads and translators) --------

    def read_record(self, path: str, key: str) -> str:
        """One record's value from a record-format file."""
        records = parse_records(self.read_file(path))
        if key not in records:
            raise RISError(
                RISErrorCode.NOT_FOUND, f"no record {key!r} in {path!r}"
            )
        return records[key]

    def write_record(self, path: str, key: str, value: str) -> None:
        """Upsert one record in a record-format file (creating the file)."""
        try:
            records = parse_records(self.read_file(path))
        except RISError as error:
            if error.code is not RISErrorCode.NOT_FOUND:
                raise
            records = {}
        records[key] = value
        self.write_file(path, render_records(records))

    def delete_record(self, path: str, key: str) -> None:
        """Remove one record from a record-format file."""
        records = parse_records(self.read_file(path))
        if key not in records:
            raise RISError(
                RISErrorCode.NOT_FOUND, f"no record {key!r} in {path!r}"
            )
        del records[key]
        self.write_file(path, render_records(records))
