"""A "whois"-style directory server — lookup-only access.

Models the Stanford whois database of Section 4.3: a key-to-record directory
administered out of band.  The CM can only look entries up, so copy
constraints against it use polling strategies; administrators update entries
through :meth:`admin_update`, which is invisible to the CM until polled.
"""

from __future__ import annotations

from typing import Iterator

from repro.ris.base import (
    Capability,
    RawInformationSource,
    RISError,
    RISErrorCode,
)

Entry = dict[str, str]


class WhoisDirectory(RawInformationSource):
    """Username -> attribute-record directory."""

    kind = "whois"

    def __init__(self, name: str):
        super().__init__(name)
        self._entries: dict[str, Entry] = {}
        self._available = True
        self.lookups = 0

    def capabilities(self) -> Capability:
        """Lookup only."""
        return Capability.READ

    def set_available(self, available: bool) -> None:
        """Simulate the directory being unreachable."""
        self._available = available

    def _check_available(self) -> None:
        if not self._available:
            raise RISError(
                RISErrorCode.UNAVAILABLE, f"whois server {self.name} down"
            )

    # -- administration (out of band, invisible to the CM) -------------------

    def admin_update(self, key: str, **fields: str) -> None:
        """Create or update an entry's fields."""
        entry = self._entries.setdefault(key, {})
        entry.update(fields)

    def admin_remove(self, key: str) -> None:
        """Delete an entry."""
        if key not in self._entries:
            raise RISError(RISErrorCode.NOT_FOUND, f"no entry {key!r}")
        del self._entries[key]

    # -- the lookup protocol -----------------------------------------------------

    def lookup(self, key: str) -> Entry:
        """Fetch an entry by key."""
        self._check_available()
        self.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            raise RISError(RISErrorCode.NOT_FOUND, f"no entry {key!r}")
        return dict(entry)

    def field(self, key: str, field_name: str) -> str:
        """One field of one entry."""
        entry = self.lookup(key)
        if field_name not in entry:
            raise RISError(
                RISErrorCode.NOT_FOUND,
                f"entry {key!r} has no field {field_name!r}",
            )
        return entry[field_name]

    def exists(self, key: str) -> bool:
        """Whether an entry exists."""
        self._check_available()
        self.lookups += 1
        return key in self._entries

    def keys(self) -> Iterator[str]:
        """All entry keys."""
        self._check_available()
        self.lookups += 1
        return iter(sorted(self._entries))
