"""Expression evaluation and statement execution.

Evaluation uses a pragmatic NULL treatment: any comparison involving NULL is
false, arithmetic over NULL yields NULL, ``IS [NOT] NULL`` tests directly.
``WHERE`` planning prefers a unique/hash index for equality predicates and
an ordered index for range predicates; otherwise it scans.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.ris.relational.ast import (
    OrderItem,
    Select,
    SqlAggregate,
    SqlBetween,
    SqlBinary,
    SqlColumn,
    SqlExpr,
    SqlInList,
    SqlIsNull,
    SqlLike,
    SqlLiteral,
    SqlParam,
    SqlUnary,
)
from repro.ris.relational.errors import CatalogError, SqlError
from repro.ris.relational.storage import Row, Table
from repro.ris.base import RISErrorCode

_COMPARE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


def evaluate_expr(expr: SqlExpr, row: Row, params: Sequence[Any]) -> Any:
    """Evaluate an expression against one row."""
    if isinstance(expr, SqlLiteral):
        return expr.value
    if isinstance(expr, SqlColumn):
        if expr.name not in row:
            raise CatalogError(f"no such column: {expr.name!r}")
        return row[expr.name]
    if isinstance(expr, SqlParam):
        if expr.index >= len(params):
            raise SqlError(
                RISErrorCode.INVALID_REQUEST,
                f"statement has placeholder #{expr.index + 1} but only "
                f"{len(params)} parameter(s) were supplied",
            )
        return params[expr.index]
    if isinstance(expr, SqlUnary):
        value = evaluate_expr(expr.operand, row, params)
        if expr.op == "-":
            return None if value is None else -value
        if expr.op == "NOT":
            return not _truthy(value)
        raise SqlError(RISErrorCode.INVALID_REQUEST, f"bad unary op {expr.op!r}")
    if isinstance(expr, SqlBinary):
        if expr.op == "AND":
            return _truthy(evaluate_expr(expr.left, row, params)) and _truthy(
                evaluate_expr(expr.right, row, params)
            )
        if expr.op == "OR":
            return _truthy(evaluate_expr(expr.left, row, params)) or _truthy(
                evaluate_expr(expr.right, row, params)
            )
        left = evaluate_expr(expr.left, row, params)
        right = evaluate_expr(expr.right, row, params)
        if expr.op in _COMPARE:
            if left is None or right is None:
                return False
            return _COMPARE[expr.op](left, right)
        if expr.op in _ARITH:
            if left is None or right is None:
                return None
            return _ARITH[expr.op](left, right)
        raise SqlError(RISErrorCode.INVALID_REQUEST, f"bad operator {expr.op!r}")
    if isinstance(expr, SqlIsNull):
        value = evaluate_expr(expr.operand, row, params)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, SqlInList):
        value = evaluate_expr(expr.operand, row, params)
        if value is None:
            return False
        members = [evaluate_expr(v, row, params) for v in expr.values]
        result = value in members
        return not result if expr.negated else result
    if isinstance(expr, SqlBetween):
        value = evaluate_expr(expr.operand, row, params)
        low = evaluate_expr(expr.low, row, params)
        high = evaluate_expr(expr.high, row, params)
        if value is None or low is None or high is None:
            return False
        result = low <= value <= high
        return not result if expr.negated else result
    if isinstance(expr, SqlLike):
        value = evaluate_expr(expr.operand, row, params)
        pattern = evaluate_expr(expr.pattern, row, params)
        if value is None or pattern is None:
            return False
        result = _like_match(str(value), str(pattern))
        return not result if expr.negated else result
    if isinstance(expr, SqlAggregate):
        raise SqlError(
            RISErrorCode.INVALID_REQUEST,
            "aggregate used outside a SELECT projection",
        )
    raise SqlError(RISErrorCode.INVALID_REQUEST, f"bad expression {expr!r}")


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` any single character."""
    import re

    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    )
    return re.fullmatch(regex, value) is not None


def _truthy(value: Any) -> bool:
    return bool(value) and value is not None


def candidate_rowids(
    table: Table, where: Optional[SqlExpr], params: Sequence[Any]
) -> Optional[list[int]]:
    """Rowids an index can narrow the WHERE clause to, or None for a scan.

    Recognizes equality and range predicates of the shape
    ``column <op> constant`` appearing as the WHERE clause itself or as an
    AND-conjunct of it; the remaining predicate is still applied to each
    candidate row afterwards, so this is purely an access-path optimization.
    """
    if where is None:
        return None
    for conjunct in _conjuncts(where):
        plan = _index_plan(table, conjunct, params)
        if plan is not None:
            return plan
    return None


def _conjuncts(expr: SqlExpr) -> Iterable[SqlExpr]:
    if isinstance(expr, SqlBinary) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _constant_side(expr: SqlExpr, params: Sequence[Any]) -> tuple[bool, Any]:
    if isinstance(expr, SqlLiteral):
        return True, expr.value
    if isinstance(expr, SqlParam):
        if expr.index < len(params):
            return True, params[expr.index]
    return False, None


def _index_plan(
    table: Table, predicate: SqlExpr, params: Sequence[Any]
) -> Optional[list[int]]:
    if not isinstance(predicate, SqlBinary):
        return None
    column: Optional[str] = None
    op = predicate.op
    value: Any = None
    if isinstance(predicate.left, SqlColumn):
        is_const, value = _constant_side(predicate.right, params)
        if is_const:
            column = predicate.left.name
    elif isinstance(predicate.right, SqlColumn):
        is_const, value = _constant_side(predicate.left, params)
        if is_const:
            column = predicate.right.name
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if column is None or value is None:
        return None
    if op == "=" and column in table.hash_indexes:
        return sorted(table.hash_indexes[column].lookup(value))
    if op in ("<", "<=", ">", ">=") and column in table.ordered_indexes:
        index = table.ordered_indexes[column]
        if op == "<":
            return list(index.range(high=value, include_high=False))
        if op == "<=":
            return list(index.range(high=value, include_high=True))
        if op == ">":
            return list(index.range(low=value, include_low=False))
        return list(index.range(low=value, include_low=True))
    return None


def matching_rows(
    table: Table, where: Optional[SqlExpr], params: Sequence[Any]
) -> list[tuple[int, Row]]:
    """All (rowid, row) pairs satisfying the WHERE clause."""
    candidates = candidate_rowids(table, where, params)
    if candidates is None:
        pairs = list(table.scan())
    else:
        pairs = [(rid, table.rows[rid]) for rid in candidates if rid in table.rows]
    if where is None:
        return pairs
    return [
        (rid, row)
        for rid, row in pairs
        if _truthy(evaluate_expr(where, row, params))
    ]


def run_select(
    table: Table, statement: Select, params: Sequence[Any]
) -> tuple[list[str], list[tuple[Any, ...]]]:
    """Execute a SELECT, returning (column names, result rows)."""
    matched = matching_rows(table, statement.where, params)
    rows = [row for __, row in matched]
    if statement.order_by:
        rows = _apply_order(table, rows, statement.order_by)
    if statement.is_aggregate:
        return _run_aggregates(statement, rows, params)
    if statement.is_star:
        names = table.column_names
        result = [tuple(row[name] for name in names) for row in rows]
    else:
        names = []
        for index, item in enumerate(statement.items):
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, SqlColumn):
                names.append(item.expr.name)
            else:
                names.append(f"expr_{index + 1}")
        result = [
            tuple(
                evaluate_expr(item.expr, row, params)
                for item in statement.items
            )
            for row in rows
        ]
    if statement.distinct:
        seen: set = set()
        deduped = []
        for row_tuple in result:
            if row_tuple not in seen:
                seen.add(row_tuple)
                deduped.append(row_tuple)
        result = deduped
    if statement.limit is not None:
        result = result[: statement.limit]
    return names, result


def _apply_order(
    table: Table, rows: list[Row], order_by: tuple[OrderItem, ...]
) -> list[Row]:
    ordered = list(rows)
    # Sort by the last key first so earlier keys dominate (stable sort).
    for item in reversed(order_by):
        table.require_column(item.column)
        ordered.sort(
            key=lambda row: (row[item.column] is None, row[item.column]),
            reverse=item.descending,
        )
    return ordered


def _run_aggregates(
    statement: Select, rows: list[Row], params: Sequence[Any]
) -> tuple[list[str], list[tuple[Any, ...]]]:
    names: list[str] = []
    values: list[Any] = []
    for index, item in enumerate(statement.items):
        expr = item.expr
        if not isinstance(expr, SqlAggregate):
            raise SqlError(
                RISErrorCode.INVALID_REQUEST,
                "cannot mix aggregates and plain expressions "
                "(no GROUP BY support)",
            )
        names.append(item.alias or f"{expr.func.lower()}_{index + 1}")
        if expr.argument is None:
            values.append(len(rows))
            continue
        observed = [
            evaluate_expr(expr.argument, row, params)
            for row in rows
        ]
        observed = [v for v in observed if v is not None]
        if expr.func == "COUNT":
            values.append(len(observed))
        elif not observed:
            values.append(None)
        elif expr.func == "MIN":
            values.append(min(observed))
        elif expr.func == "MAX":
            values.append(max(observed))
        elif expr.func == "SUM":
            values.append(sum(observed))
        else:
            raise SqlError(
                RISErrorCode.INVALID_REQUEST, f"bad aggregate {expr.func!r}"
            )
    return names, [tuple(values)]
