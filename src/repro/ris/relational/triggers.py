"""Row triggers: the hook CM-Translators use to build Notify Interfaces.

Section 4.2.1 of the paper: "a CM-Translator supporting a Notify Interface
for a Sybase RIS may need to declare triggers on the underlying database."
Our engine supports ``AFTER INSERT / UPDATE [OF column] / DELETE`` row
triggers whose bodies are host-language callbacks.

Trigger events fire after the statement completes in autocommit mode; inside
an explicit transaction they are queued and delivered on COMMIT (and dropped
on ROLLBACK), so observers never see effects of undone work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.ris.relational.errors import CatalogError

Row = dict[str, Any]


@dataclass(frozen=True)
class TriggerEvent:
    """What a fired trigger reports to its callback."""

    trigger_name: str
    table: str
    operation: str  # INSERT | UPDATE | DELETE
    old_row: Optional[Row]
    new_row: Optional[Row]


TriggerCallback = Callable[[TriggerEvent], None]


@dataclass
class TriggerDef:
    """One declared trigger (callback may be attached later)."""

    name: str
    operation: str
    table: str
    column: Optional[str]
    callback: Optional[TriggerCallback] = None


class TriggerManager:
    """Registry and dispatcher for row triggers."""

    def __init__(self) -> None:
        self._triggers: dict[str, TriggerDef] = {}

    def create(
        self, name: str, operation: str, table: str, column: Optional[str]
    ) -> TriggerDef:
        """Declare a trigger; CatalogError on duplicate names."""
        if name in self._triggers:
            raise CatalogError(f"trigger {name!r} already exists")
        trigger = TriggerDef(name, operation, table, column)
        self._triggers[name] = trigger
        return trigger

    def drop(self, name: str) -> None:
        """Remove a trigger by name."""
        if name not in self._triggers:
            raise CatalogError(f"no such trigger: {name!r}")
        del self._triggers[name]

    def set_callback(self, name: str, callback: TriggerCallback) -> None:
        """Attach the host-language body to a declared trigger."""
        trigger = self._triggers.get(name)
        if trigger is None:
            raise CatalogError(f"no such trigger: {name!r}")
        trigger.callback = callback

    def triggers_for(self, table: str) -> list[TriggerDef]:
        """All triggers declared on a table."""
        return [t for t in self._triggers.values() if t.table == table]

    def names(self) -> list[str]:
        """All trigger names."""
        return list(self._triggers)

    def events_for(
        self,
        table: str,
        operation: str,
        old_row: Optional[Row],
        new_row: Optional[Row],
        assigned_columns: Optional[set[str]] = None,
    ) -> list[tuple[TriggerDef, TriggerEvent]]:
        """Matching (trigger, event) pairs for one row change.

        ``UPDATE OF col`` follows real-DBMS semantics: it fires when the
        column is *assigned* in the SET clause, even if the new value equals
        the old one — which is why redundant updates still generate
        notifications, and why the paper's CM-side cache (Section 3.2) is
        worth having.
        """
        matched: list[tuple[TriggerDef, TriggerEvent]] = []
        for trigger in self._triggers.values():
            if trigger.table != table or trigger.operation != operation:
                continue
            if (
                trigger.operation == "UPDATE"
                and trigger.column is not None
                and assigned_columns is not None
                and trigger.column not in assigned_columns
            ):
                continue  # UPDATE OF col: that column was not assigned
            matched.append(
                (
                    trigger,
                    TriggerEvent(
                        trigger_name=trigger.name,
                        table=table,
                        operation=operation,
                        old_row=dict(old_row) if old_row is not None else None,
                        new_row=dict(new_row) if new_row is not None else None,
                    ),
                )
            )
        return matched
