"""SQL tokenizer for the mini relational DBMS."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ris.relational.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "ORDER", "BY", "ASC", "DESC", "LIMIT",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "DROP", "TABLE", "INDEX", "TRIGGER", "ON", "OF",
    "AFTER", "PRIMARY", "KEY", "NOT", "NULL", "UNIQUE", "CHECK",
    "AND", "OR", "IS", "IN", "AS", "INTEGER", "INT", "REAL", "FLOAT",
    "TEXT", "VARCHAR", "BOOLEAN", "BOOL", "TRUE", "FALSE",
    "BEGIN", "COMMIT", "ROLLBACK", "COUNT", "MIN", "MAX", "SUM", "DISTINCT",
    "BETWEEN", "LIKE",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+|\d+|\.\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|<>|!=|=|<|>)
  | (?P<sym>[(),.*?+\-/;])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class SqlToken:
    """One SQL token.  ``kind`` is keyword/ident/number/string/op/sym/eof."""

    kind: str
    text: str
    position: int

    @property
    def upper(self) -> str:
        """The token text upper-cased (keyword comparisons)."""
        return self.text.upper()


def tokenize_sql(sql: str) -> list[SqlToken]:
    """Lex SQL text into tokens; comments and whitespace are dropped."""
    tokens: list[SqlToken] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {sql[pos]!r} at position {pos}", pos
            )
        kind = match.lastgroup or ""
        text = match.group()
        start = pos
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind == "ident" and text.upper() in KEYWORDS:
            tokens.append(SqlToken("keyword", text, start))
        else:
            tokens.append(SqlToken(kind, text, start))
    tokens.append(SqlToken("eof", "", pos))
    return tokens
