"""Error taxonomy of the mini relational DBMS.

All errors are :class:`~repro.ris.base.RISError` subclasses carrying an
errno-like code, which is what the relational CM-Translator uses to classify
failures as metric or logical (Section 5 of the paper).
"""

from __future__ import annotations

from repro.ris.base import RISError, RISErrorCode


class SqlError(RISError):
    """Base class for all SQL-engine errors."""


class SqlSyntaxError(SqlError):
    """The SQL text failed to parse."""

    def __init__(self, message: str, position: int = 0):
        super().__init__(RISErrorCode.INVALID_REQUEST, message)
        self.position = position


class CatalogError(SqlError):
    """Unknown (or duplicate) table, column, index, or trigger."""

    def __init__(self, message: str):
        super().__init__(RISErrorCode.NOT_FOUND, message)


class TypeMismatchError(SqlError):
    """A value does not fit the declared column type."""

    def __init__(self, message: str):
        super().__init__(RISErrorCode.INVALID_REQUEST, message)


class ConstraintViolationError(SqlError):
    """Primary-key / unique / not-null / CHECK constraint rejected a change."""

    def __init__(self, message: str):
        super().__init__(RISErrorCode.CONSTRAINT_VIOLATION, message)


class TransactionError(SqlError):
    """Transaction misuse (commit without begin, nested begin, ...)."""

    def __init__(self, message: str):
        super().__init__(RISErrorCode.INVALID_REQUEST, message)


class DatabaseUnavailableError(SqlError):
    """The server is down (injected by failure plans)."""

    def __init__(self, message: str = "database unavailable"):
        super().__init__(RISErrorCode.UNAVAILABLE, message)


class DatabaseBusyError(SqlError):
    """The server is overloaded; retry later (transient)."""

    def __init__(self, message: str = "database busy"):
        super().__init__(RISErrorCode.BUSY, message)
