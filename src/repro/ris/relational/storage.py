"""Row storage, schemas, and constraint enforcement.

Tables store rows as dicts keyed by an internal rowid.  Primary-key and
unique columns are backed by unique hash indexes; secondary indexes can be
added via ``CREATE INDEX``.  Type checking is strict but friendly: INTEGER
accepts ints, REAL accepts ints and floats, TEXT accepts str, BOOLEAN
accepts bool; NULL (None) is accepted anywhere except NOT NULL columns.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.ris.relational.ast import ColumnDef, SqlExpr
from repro.ris.relational.errors import (
    CatalogError,
    ConstraintViolationError,
    TypeMismatchError,
)
from repro.ris.relational.index import HashIndex, OrderedIndex

Row = dict[str, Any]


def _check_type(column: ColumnDef, value: Any) -> Any:
    """Validate (and mildly coerce) a value against a column type."""
    if value is None:
        if column.not_null or column.primary_key:
            raise ConstraintViolationError(
                f"column {column.name!r} may not be NULL"
            )
        return None
    type_name = column.type_name
    if type_name == "INTEGER":
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(
                f"column {column.name!r} expects INTEGER, got {value!r}"
            )
        return value
    if type_name == "REAL":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(
                f"column {column.name!r} expects REAL, got {value!r}"
            )
        return float(value)
    if type_name == "TEXT":
        if not isinstance(value, str):
            raise TypeMismatchError(
                f"column {column.name!r} expects TEXT, got {value!r}"
            )
        return value
    if type_name == "BOOLEAN":
        if not isinstance(value, bool):
            raise TypeMismatchError(
                f"column {column.name!r} expects BOOLEAN, got {value!r}"
            )
        return value
    raise TypeMismatchError(f"unknown type {type_name!r}")


class Table:
    """One table: schema, rows, and indexes."""

    def __init__(
        self, name: str, columns: tuple[ColumnDef, ...], checks: tuple[SqlExpr, ...]
    ):
        self.name = name
        self.columns: dict[str, ColumnDef] = {}
        for column in columns:
            if column.name in self.columns:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            self.columns[column.name] = column
        primary = [c.name for c in columns if c.primary_key]
        if len(primary) > 1:
            raise CatalogError(
                f"table {name!r}: composite primary keys are not supported"
            )
        self.primary_key: Optional[str] = primary[0] if primary else None
        self.checks = checks
        self.rows: dict[int, Row] = {}
        self._next_rowid = 1
        self.hash_indexes: dict[str, HashIndex] = {}
        self.ordered_indexes: dict[str, OrderedIndex] = {}
        for column in columns:
            if column.primary_key or column.unique:
                self.hash_indexes[column.name] = HashIndex(
                    column.name, unique=True
                )

    @property
    def column_names(self) -> list[str]:
        """Schema-order column names."""
        return list(self.columns)

    def require_column(self, name: str) -> ColumnDef:
        """The column definition; CatalogError if absent."""
        column = self.columns.get(name)
        if column is None:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            )
        return column

    def add_hash_index(self, column: str, unique: bool = False) -> None:
        """Create (or reuse) a hash index on a column."""
        self.require_column(column)
        if column in self.hash_indexes:
            return
        index = HashIndex(column, unique)
        for rowid, row in self.rows.items():
            if index.would_violate(row[column]):
                raise ConstraintViolationError(
                    f"cannot create unique index: duplicate {row[column]!r}"
                )
            index.add(row[column], rowid)
        self.hash_indexes[column] = index

    def add_ordered_index(self, column: str) -> None:
        """Create (or reuse) an ordered index for range scans."""
        self.require_column(column)
        if column in self.ordered_indexes:
            return
        index = OrderedIndex(column)
        index.load((row[column], rowid) for rowid, row in self.rows.items())
        self.ordered_indexes[column] = index

    # -- row operations -----------------------------------------------------

    def insert_row(self, values: Row) -> int:
        """Insert a row (dict of column -> value); returns the new rowid."""
        row: Row = {}
        for name, column in self.columns.items():
            row[name] = _check_type(column, values.get(name))
        extraneous = set(values) - set(self.columns)
        if extraneous:
            raise CatalogError(
                f"table {self.name!r} has no column(s) {sorted(extraneous)}"
            )
        for column_name, index in self.hash_indexes.items():
            if index.would_violate(row[column_name]):
                raise ConstraintViolationError(
                    f"duplicate value {row[column_name]!r} for "
                    f"{self.name}.{column_name}"
                )
        rowid = self._next_rowid
        self._next_rowid += 1
        self.rows[rowid] = row
        for column_name, index in self.hash_indexes.items():
            index.add(row[column_name], rowid)
        for column_name, ordered in self.ordered_indexes.items():
            ordered.add(row[column_name], rowid)
        return rowid

    def update_row(self, rowid: int, changes: Row) -> tuple[Row, Row]:
        """Apply ``changes`` to one row; returns (old copy, new copy)."""
        row = self.rows[rowid]
        old = dict(row)
        new = dict(row)
        for name, value in changes.items():
            column = self.require_column(name)
            new[name] = _check_type(column, value)
        for column_name, index in self.hash_indexes.items():
            if new[column_name] != old[column_name] and index.would_violate(
                new[column_name], ignoring_rowid=rowid
            ):
                raise ConstraintViolationError(
                    f"duplicate value {new[column_name]!r} for "
                    f"{self.name}.{column_name}"
                )
        for column_name in changes:
            if column_name in self.hash_indexes:
                self.hash_indexes[column_name].remove(old[column_name], rowid)
                self.hash_indexes[column_name].add(new[column_name], rowid)
            if column_name in self.ordered_indexes:
                self.ordered_indexes[column_name].remove(old[column_name], rowid)
                self.ordered_indexes[column_name].add(new[column_name], rowid)
        self.rows[rowid] = new
        return old, new

    def delete_row(self, rowid: int) -> Row:
        """Remove one row; returns a copy of it."""
        row = self.rows.pop(rowid)
        for column_name, index in self.hash_indexes.items():
            index.remove(row[column_name], rowid)
        for column_name, ordered in self.ordered_indexes.items():
            ordered.remove(row[column_name], rowid)
        return row

    def restore_row(self, rowid: int, row: Row) -> None:
        """Re-insert a previously deleted row under its old rowid (undo)."""
        self.rows[rowid] = dict(row)
        for column_name, index in self.hash_indexes.items():
            index.add(row[column_name], rowid)
        for column_name, ordered in self.ordered_indexes.items():
            ordered.add(row[column_name], rowid)

    def scan(self) -> Iterator[tuple[int, Row]]:
        """All (rowid, row) pairs in insertion order."""
        return iter(self.rows.items())

    def __len__(self) -> int:
        return len(self.rows)


class Catalog:
    """The set of tables in one database."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(
        self, name: str, columns: tuple[ColumnDef, ...], checks: tuple[SqlExpr, ...]
    ) -> Table:
        """Create a table; CatalogError on duplicates."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, columns, checks)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> Table:
        """Remove a table, returning it."""
        if name not in self._tables:
            raise CatalogError(f"no such table: {name!r}")
        return self._tables.pop(name)

    def table(self, name: str) -> Table:
        """Look a table up; CatalogError if absent."""
        table = self._tables.get(name)
        if table is None:
            raise CatalogError(f"no such table: {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        """Whether the table exists."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """All table names, in creation order."""
        return list(self._tables)
