"""Abstract syntax of the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


# -- value expressions ---------------------------------------------------------


class SqlExpr:
    """Base class for SQL value/boolean expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class SqlLiteral(SqlExpr):
    """A constant (number, string, boolean, or NULL as None)."""

    value: Any


@dataclass(frozen=True)
class SqlColumn(SqlExpr):
    """A column reference."""

    name: str


@dataclass(frozen=True)
class SqlParam(SqlExpr):
    """A ``?`` placeholder, filled from the execute() arguments."""

    index: int


@dataclass(frozen=True)
class SqlUnary(SqlExpr):
    """``-x`` or ``NOT x``."""

    op: str
    operand: SqlExpr


@dataclass(frozen=True)
class SqlBinary(SqlExpr):
    """Binary arithmetic / comparison / boolean operation."""

    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class SqlIsNull(SqlExpr):
    """``x IS [NOT] NULL``."""

    operand: SqlExpr
    negated: bool


@dataclass(frozen=True)
class SqlInList(SqlExpr):
    """``x IN (v1, v2, ...)``."""

    operand: SqlExpr
    values: tuple[SqlExpr, ...]
    negated: bool = False


@dataclass(frozen=True)
class SqlBetween(SqlExpr):
    """``x [NOT] BETWEEN low AND high`` (inclusive)."""

    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False


@dataclass(frozen=True)
class SqlLike(SqlExpr):
    """``x [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: SqlExpr
    pattern: SqlExpr
    negated: bool = False


@dataclass(frozen=True)
class SqlAggregate(SqlExpr):
    """``COUNT(*)``, ``COUNT(col)``, ``MIN/MAX/SUM(col)``."""

    func: str
    argument: Optional[SqlExpr]  # None means COUNT(*)


# -- statements -----------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    """One column in a CREATE TABLE."""

    name: str
    type_name: str  # INTEGER | REAL | TEXT | BOOLEAN
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    checks: tuple[SqlExpr, ...] = ()


@dataclass(frozen=True)
class DropTable:
    name: str


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    column: str
    unique: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]  # empty means "all, in schema order"
    rows: tuple[tuple[SqlExpr, ...], ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, SqlExpr], ...]
    where: Optional[SqlExpr]


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[SqlExpr]


@dataclass(frozen=True)
class SelectItem:
    """One projected expression with an optional alias."""

    expr: SqlExpr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]  # empty means SELECT *
    table: str
    where: Optional[SqlExpr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    @property
    def is_star(self) -> bool:
        """Whether this is a SELECT * query."""
        return not self.items

    @property
    def is_aggregate(self) -> bool:
        """Whether any projected expression is an aggregate."""
        return any(isinstance(i.expr, SqlAggregate) for i in self.items)


@dataclass(frozen=True)
class CreateTrigger:
    """``CREATE TRIGGER name AFTER op [OF col] ON table``.

    The trigger body is a host-language callback registered separately via
    :meth:`RelationalDatabase.set_trigger_callback`; the SQL statement only
    declares the hook point, mirroring how the paper's CM-Translator
    "declares triggers on the underlying database" (Section 4.2.1).
    """

    name: str
    operation: str  # INSERT | UPDATE | DELETE
    table: str
    column: Optional[str] = None  # UPDATE OF col


@dataclass(frozen=True)
class DropTrigger:
    name: str


@dataclass(frozen=True)
class BeginTransaction:
    pass


@dataclass(frozen=True)
class CommitTransaction:
    pass


@dataclass(frozen=True)
class RollbackTransaction:
    pass


Statement = (
    CreateTable
    | DropTable
    | CreateIndex
    | Insert
    | Update
    | Delete
    | Select
    | CreateTrigger
    | DropTrigger
    | BeginTransaction
    | CommitTransaction
    | RollbackTransaction
)
