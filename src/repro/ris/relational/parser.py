"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import Optional

from repro.ris.relational.ast import (
    BeginTransaction,
    ColumnDef,
    CommitTransaction,
    CreateIndex,
    CreateTable,
    CreateTrigger,
    Delete,
    DropTable,
    DropTrigger,
    Insert,
    OrderItem,
    RollbackTransaction,
    Select,
    SelectItem,
    SqlAggregate,
    SqlBetween,
    SqlBinary,
    SqlColumn,
    SqlExpr,
    SqlInList,
    SqlIsNull,
    SqlLike,
    SqlLiteral,
    SqlParam,
    SqlUnary,
    Statement,
    Update,
)
from repro.ris.relational.errors import SqlSyntaxError
from repro.ris.relational.tokenizer import SqlToken, tokenize_sql

_TYPE_ALIASES = {
    "INT": "INTEGER",
    "INTEGER": "INTEGER",
    "REAL": "REAL",
    "FLOAT": "REAL",
    "TEXT": "TEXT",
    "VARCHAR": "TEXT",
    "BOOLEAN": "BOOLEAN",
    "BOOL": "BOOLEAN",
}

_AGGREGATES = {"COUNT", "MIN", "MAX", "SUM"}


class _SqlParser:
    def __init__(self, tokens: list[SqlToken]):
        self.tokens = tokens
        self.index = 0
        self.param_count = 0

    # -- plumbing --------------------------------------------------------------

    def peek(self) -> SqlToken:
        return self.tokens[self.index]

    def advance(self) -> SqlToken:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def accept_keyword(self, *words: str) -> Optional[SqlToken]:
        token = self.peek()
        if token.kind == "keyword" and token.upper in words:
            return self.advance()
        return None

    def expect_keyword(self, word: str) -> SqlToken:
        token = self.advance()
        if token.kind != "keyword" or token.upper != word:
            raise SqlSyntaxError(
                f"expected {word}, found {token.text!r}", token.position
            )
        return token

    def accept_sym(self, text: str) -> Optional[SqlToken]:
        token = self.peek()
        if token.kind == "sym" and token.text == text:
            return self.advance()
        return None

    def expect_sym(self, text: str) -> SqlToken:
        token = self.advance()
        if token.kind != "sym" or token.text != text:
            raise SqlSyntaxError(
                f"expected {text!r}, found {token.text!r}", token.position
            )
        return token

    def expect_ident(self) -> str:
        token = self.advance()
        if token.kind == "ident":
            return token.text
        # Permit non-reserved-feeling keywords as identifiers where harmless.
        if token.kind == "keyword" and token.upper in ("KEY", "OF", "BY"):
            return token.text
        raise SqlSyntaxError(
            f"expected an identifier, found {token.text!r}", token.position
        )

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        return SqlSyntaxError(f"{message} (near {token.text!r})", token.position)

    # -- statement dispatch -------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.kind != "keyword":
            raise self.error("expected a statement keyword")
        word = token.upper
        if word == "SELECT":
            return self.parse_select()
        if word == "INSERT":
            return self.parse_insert()
        if word == "UPDATE":
            return self.parse_update()
        if word == "DELETE":
            return self.parse_delete()
        if word == "CREATE":
            return self.parse_create()
        if word == "DROP":
            return self.parse_drop()
        if word == "BEGIN":
            self.advance()
            return BeginTransaction()
        if word == "COMMIT":
            self.advance()
            return CommitTransaction()
        if word == "ROLLBACK":
            self.advance()
            return RollbackTransaction()
        raise self.error(f"unsupported statement {word}")

    # -- DDL ---------------------------------------------------------------------

    def parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self.parse_create_table()
        unique = bool(self.accept_keyword("UNIQUE"))
        if self.accept_keyword("INDEX"):
            return self.parse_create_index(unique)
        if unique:
            raise self.error("UNIQUE must be followed by INDEX")
        if self.accept_keyword("TRIGGER"):
            return self.parse_create_trigger()
        raise self.error("expected TABLE, INDEX, or TRIGGER after CREATE")

    def parse_create_table(self) -> CreateTable:
        name = self.expect_ident()
        self.expect_sym("(")
        columns: list[ColumnDef] = []
        checks: list[SqlExpr] = []
        while True:
            if self.accept_keyword("CHECK"):
                self.expect_sym("(")
                checks.append(self.parse_expr())
                self.expect_sym(")")
            else:
                columns.append(self.parse_column_def())
            if not self.accept_sym(","):
                break
        self.expect_sym(")")
        if not columns:
            raise self.error("a table needs at least one column")
        return CreateTable(name, tuple(columns), tuple(checks))

    def parse_column_def(self) -> ColumnDef:
        name = self.expect_ident()
        type_token = self.advance()
        type_name = _TYPE_ALIASES.get(type_token.upper)
        if type_token.kind != "keyword" or type_name is None:
            raise SqlSyntaxError(
                f"unknown column type {type_token.text!r}", type_token.position
            )
        if type_token.upper == "VARCHAR" and self.accept_sym("("):
            self.advance()  # the length, which we accept and ignore
            self.expect_sym(")")
        primary_key = False
        not_null = False
        unique = False
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
            elif self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                not_null = True
            elif self.accept_keyword("UNIQUE"):
                unique = True
            else:
                break
        return ColumnDef(name, type_name, primary_key, not_null, unique)

    def parse_create_index(self, unique: bool) -> CreateIndex:
        name = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_sym("(")
        column = self.expect_ident()
        self.expect_sym(")")
        return CreateIndex(name, table, column, unique)

    def parse_create_trigger(self) -> CreateTrigger:
        name = self.expect_ident()
        self.expect_keyword("AFTER")
        op_token = self.advance()
        if op_token.kind != "keyword" or op_token.upper not in (
            "INSERT",
            "UPDATE",
            "DELETE",
        ):
            raise SqlSyntaxError(
                f"expected INSERT, UPDATE, or DELETE, found {op_token.text!r}",
                op_token.position,
            )
        column: Optional[str] = None
        if op_token.upper == "UPDATE" and self.accept_keyword("OF"):
            column = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        return CreateTrigger(name, op_token.upper, table, column)

    def parse_drop(self) -> Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            return DropTable(self.expect_ident())
        if self.accept_keyword("TRIGGER"):
            return DropTrigger(self.expect_ident())
        raise self.error("expected TABLE or TRIGGER after DROP")

    # -- DML -----------------------------------------------------------------------

    def parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: list[str] = []
        if self.accept_sym("("):
            columns.append(self.expect_ident())
            while self.accept_sym(","):
                columns.append(self.expect_ident())
            self.expect_sym(")")
        self.expect_keyword("VALUES")
        rows: list[tuple[SqlExpr, ...]] = []
        while True:
            self.expect_sym("(")
            values: list[SqlExpr] = [self.parse_expr()]
            while self.accept_sym(","):
                values.append(self.parse_expr())
            self.expect_sym(")")
            rows.append(tuple(values))
            if not self.accept_sym(","):
                break
        return Insert(table, tuple(columns), tuple(rows))

    def parse_update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments: list[tuple[str, SqlExpr]] = []
        while True:
            column = self.expect_ident()
            op = self.advance()
            if op.kind != "op" or op.text != "=":
                raise SqlSyntaxError(
                    f"expected '=', found {op.text!r}", op.position
                )
            assignments.append((column, self.parse_expr()))
            if not self.accept_sym(","):
                break
        where = self.parse_where()
        return Update(table, tuple(assignments), where)

    def parse_delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        return Delete(table, self.parse_where())

    def parse_where(self) -> Optional[SqlExpr]:
        if self.accept_keyword("WHERE"):
            return self.parse_expr()
        return None

    # -- SELECT -----------------------------------------------------------------------

    def parse_select(self) -> Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items: list[SelectItem] = []
        if self.accept_sym("*"):
            pass  # SELECT * — empty items
        else:
            items.append(self.parse_select_item())
            while self.accept_sym(","):
                items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.parse_where()
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                column = self.expect_ident()
                descending = False
                if self.accept_keyword("DESC"):
                    descending = True
                elif self.accept_keyword("ASC"):
                    pass
                order_by.append(OrderItem(column, descending))
                if not self.accept_sym(","):
                    break
        limit: Optional[int] = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind != "number" or "." in token.text:
                raise SqlSyntaxError(
                    f"LIMIT expects an integer, found {token.text!r}",
                    token.position,
                )
            limit = int(token.text)
        return Select(
            tuple(items), table, where, tuple(order_by), limit, distinct
        )

    def parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        return SelectItem(expr, alias)

    # -- expressions ---------------------------------------------------------------------

    def parse_expr(self) -> SqlExpr:
        return self.parse_or()

    def parse_or(self) -> SqlExpr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = SqlBinary("OR", left, self.parse_and())
        return left

    def parse_and(self) -> SqlExpr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = SqlBinary("AND", left, self.parse_not())
        return left

    def parse_not(self) -> SqlExpr:
        if self.accept_keyword("NOT"):
            return SqlUnary("NOT", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> SqlExpr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "op":
            self.advance()
            op = "!=" if token.text == "<>" else token.text
            return SqlBinary(op, left, self.parse_additive())
        if token.kind == "keyword" and token.upper == "IS":
            self.advance()
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return SqlIsNull(left, negated)
        if token.kind == "keyword" and token.upper == "NOT":
            # x NOT IN (...) / x NOT BETWEEN ... / x NOT LIKE ...
            save = self.index
            self.advance()
            if self.accept_keyword("IN"):
                return self.parse_in_list(left, negated=True)
            if self.accept_keyword("BETWEEN"):
                return self.parse_between(left, negated=True)
            if self.accept_keyword("LIKE"):
                return SqlLike(left, self.parse_additive(), negated=True)
            self.index = save
            return left
        if token.kind == "keyword" and token.upper == "IN":
            self.advance()
            return self.parse_in_list(left, negated=False)
        if token.kind == "keyword" and token.upper == "BETWEEN":
            self.advance()
            return self.parse_between(left, negated=False)
        if token.kind == "keyword" and token.upper == "LIKE":
            self.advance()
            return SqlLike(left, self.parse_additive(), negated=False)
        return left

    def parse_between(self, operand: SqlExpr, negated: bool) -> SqlExpr:
        low = self.parse_additive()
        self.expect_keyword("AND")
        high = self.parse_additive()
        return SqlBetween(operand, low, high, negated)

    def parse_in_list(self, operand: SqlExpr, negated: bool) -> SqlExpr:
        self.expect_sym("(")
        values: list[SqlExpr] = [self.parse_expr()]
        while self.accept_sym(","):
            values.append(self.parse_expr())
        self.expect_sym(")")
        return SqlInList(operand, tuple(values), negated)

    def parse_additive(self) -> SqlExpr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "sym" and token.text in ("+", "-"):
                self.advance()
                left = SqlBinary(token.text, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> SqlExpr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind == "sym" and token.text in ("*", "/"):
                self.advance()
                left = SqlBinary(token.text, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> SqlExpr:
        if self.accept_sym("-"):
            return SqlUnary("-", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> SqlExpr:
        token = self.peek()
        if token.kind == "sym" and token.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect_sym(")")
            return inner
        if token.kind == "sym" and token.text == "?":
            self.advance()
            param = SqlParam(self.param_count)
            self.param_count += 1
            return param
        if token.kind == "number":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return SqlLiteral(value)
        if token.kind == "string":
            self.advance()
            return SqlLiteral(token.text[1:-1].replace("''", "'"))
        if token.kind == "keyword":
            word = token.upper
            if word == "NULL":
                self.advance()
                return SqlLiteral(None)
            if word == "TRUE":
                self.advance()
                return SqlLiteral(True)
            if word == "FALSE":
                self.advance()
                return SqlLiteral(False)
            if word in _AGGREGATES:
                self.advance()
                self.expect_sym("(")
                if word == "COUNT" and self.accept_sym("*"):
                    self.expect_sym(")")
                    return SqlAggregate("COUNT", None)
                argument = self.parse_expr()
                self.expect_sym(")")
                return SqlAggregate(word, argument)
        if token.kind == "ident":
            self.advance()
            return SqlColumn(token.text)
        raise self.error(f"expected an expression, found {token.text!r}")


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement (a trailing semicolon is allowed)."""
    parser = _SqlParser(tokenize_sql(sql))
    statement = parser.parse_statement()
    parser.accept_sym(";")
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise SqlSyntaxError(
            f"trailing input after statement: {trailing.text!r}",
            trailing.position,
        )
    return statement
