"""Index structures for the mini relational DBMS.

Two kinds:

- :class:`HashIndex` — equality lookups; backs primary-key / unique
  constraints and equality predicates.
- :class:`OrderedIndex` — a sorted (value, rowid) list with binary search for
  range predicates.

NULL values are not indexed (SQL-style: NULL never equals anything, and
unique constraints admit multiple NULLs).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterable, Iterator


class HashIndex:
    """Value -> set of rowids."""

    def __init__(self, column: str, unique: bool = False):
        self.column = column
        self.unique = unique
        self._buckets: dict[Any, set[int]] = {}

    def add(self, value: Any, rowid: int) -> None:
        if value is None:
            return
        self._buckets.setdefault(value, set()).add(rowid)

    def remove(self, value: Any, rowid: int) -> None:
        if value is None:
            return
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> set[int]:
        """Rowids holding the value (empty set for NULL)."""
        if value is None:
            return set()
        return set(self._buckets.get(value, ()))

    def would_violate(self, value: Any, ignoring_rowid: int | None = None) -> bool:
        """Whether adding ``value`` would break a unique constraint."""
        if not self.unique or value is None:
            return False
        bucket = self._buckets.get(value, set())
        return bool(bucket - ({ignoring_rowid} if ignoring_rowid is not None else set()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class OrderedIndex:
    """Sorted (value, rowid) pairs supporting range scans."""

    def __init__(self, column: str):
        self.column = column
        self._entries: list[tuple[Any, int]] = []

    def add(self, value: Any, rowid: int) -> None:
        if value is None:
            return
        insort(self._entries, (value, rowid))

    def remove(self, value: Any, rowid: int) -> None:
        if value is None:
            return
        index = bisect_left(self._entries, (value, rowid))
        if index < len(self._entries) and self._entries[index] == (value, rowid):
            del self._entries[index]

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Rowids with ``low <op> value <op> high`` (None bound = open)."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect_left(self._entries, (low,))
        else:
            start = bisect_right(self._entries, (low, float("inf")))
            start = self._skip_value(start, low)
        for value, rowid in self._entries[start:]:
            if high is not None:
                if include_high and value > high:
                    break
                if not include_high and value >= high:
                    break
            if low is not None and not include_low and value == low:
                continue
            yield rowid

    def _skip_value(self, start: int, low: Any) -> int:
        while start < len(self._entries) and self._entries[start][0] == low:
            start += 1
        return start

    def load(self, pairs: Iterable[tuple[Any, int]]) -> None:
        """Bulk-load and sort (used when creating an index on existing data)."""
        self._entries = sorted(
            (value, rowid) for value, rowid in pairs if value is not None
        )

    def __len__(self) -> int:
        return len(self._entries)
