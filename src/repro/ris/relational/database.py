"""The relational database facade: the RISI the translator talks to.

:class:`RelationalDatabase` exposes one native entry point, :meth:`execute`,
taking SQL text plus ``?`` parameters, like a real server's wire protocol.
Everything the CM-Translator does — reads, writes, trigger declaration for
notify interfaces — goes through it.

Failure injection: :meth:`set_available` / :meth:`set_busy` flip the server
into the paper's logical / metric failure modes, making ``execute`` raise
:class:`DatabaseUnavailableError` / :class:`DatabaseBusyError` so translators
can exercise their error-classification path (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.ris.base import Capability, RawInformationSource
from repro.ris.relational.ast import (
    BeginTransaction,
    CommitTransaction,
    CreateIndex,
    CreateTable,
    CreateTrigger,
    Delete,
    DropTable,
    DropTrigger,
    Insert,
    RollbackTransaction,
    Select,
    Update,
)
from repro.ris.relational.errors import (
    CatalogError,
    ConstraintViolationError,
    DatabaseBusyError,
    DatabaseUnavailableError,
)
from repro.ris.relational.executor import (
    evaluate_expr,
    matching_rows,
    run_select,
)
from repro.ris.relational.parser import parse_sql
from repro.ris.relational.storage import Catalog, Row, Table
from repro.ris.relational.transactions import TransactionManager
from repro.ris.relational.triggers import TriggerCallback, TriggerManager


@dataclass
class ResultSet:
    """The result of one statement: rows for SELECTs, rowcount for DML."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    rowcount: int = 0

    def first(self) -> Optional[tuple[Any, ...]]:
        """The first row, or None."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        first = self.first()
        return first[0] if first else None


class RelationalDatabase(RawInformationSource):
    """A complete (mini) SQL database server."""

    kind = "relational"

    def __init__(self, name: str):
        super().__init__(name)
        self.catalog = Catalog()
        self.triggers = TriggerManager()
        self.transactions = TransactionManager()
        self._available = True
        self._busy = False
        self.statements_executed = 0

    def capabilities(self) -> Capability:
        """Everything: the richest source in the federation."""
        return (
            Capability.READ
            | Capability.WRITE
            | Capability.INSERT_DELETE
            | Capability.NOTIFY
            | Capability.LOCAL_CONDITIONS
            | Capability.LOCAL_CONSTRAINTS
            | Capability.TRANSACTIONS
        )

    # -- failure injection -------------------------------------------------

    def set_available(self, available: bool) -> None:
        """Simulate a server crash / recovery (logical failure)."""
        self._available = available

    def set_busy(self, busy: bool) -> None:
        """Simulate overload: requests fail with a transient BUSY error."""
        self._busy = busy

    # -- the native interface ------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Parse and run one SQL statement."""
        if not self._available:
            raise DatabaseUnavailableError(f"{self.name} is down")
        if self._busy:
            raise DatabaseBusyError(f"{self.name} is overloaded")
        self.statements_executed += 1
        statement = parse_sql(sql)
        if isinstance(statement, Select):
            table = self.catalog.table(statement.table)
            columns, rows = run_select(table, statement, params)
            return ResultSet(columns=columns, rows=rows, rowcount=len(rows))
        if isinstance(statement, Insert):
            return self._run_insert(statement, params)
        if isinstance(statement, Update):
            return self._run_update(statement, params)
        if isinstance(statement, Delete):
            return self._run_delete(statement, params)
        if isinstance(statement, CreateTable):
            self.catalog.create_table(
                statement.name, statement.columns, statement.checks
            )
            return ResultSet()
        if isinstance(statement, DropTable):
            self.catalog.drop_table(statement.name)
            return ResultSet()
        if isinstance(statement, CreateIndex):
            table = self.catalog.table(statement.table)
            if statement.unique:
                table.add_hash_index(statement.column, unique=True)
            else:
                table.add_hash_index(statement.column)
                table.add_ordered_index(statement.column)
            return ResultSet()
        if isinstance(statement, CreateTrigger):
            self.catalog.table(statement.table)  # validate the table exists
            self.triggers.create(
                statement.name,
                statement.operation,
                statement.table,
                statement.column,
            )
            return ResultSet()
        if isinstance(statement, DropTrigger):
            self.triggers.drop(statement.name)
            return ResultSet()
        if isinstance(statement, BeginTransaction):
            self.transactions.begin()
            return ResultSet()
        if isinstance(statement, CommitTransaction):
            for trigger, event in self.transactions.commit():
                if trigger.callback is not None:
                    trigger.callback(event)
            return ResultSet()
        if isinstance(statement, RollbackTransaction):
            self.transactions.rollback()
            return ResultSet()
        raise CatalogError(f"unsupported statement: {statement!r}")

    def set_trigger_callback(self, name: str, callback: TriggerCallback) -> None:
        """Attach the host-language body of a declared trigger."""
        self.triggers.set_callback(name, callback)

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple[Any, ...]]:
        """Convenience: execute a SELECT and return its rows."""
        return self.execute(sql, params).rows

    # -- DML internals --------------------------------------------------------

    def _check_constraints(self, table: Table, row: Row) -> None:
        for check in table.checks:
            if not evaluate_expr(check, row, ()):
                raise ConstraintViolationError(
                    f"CHECK constraint failed on {table.name!r}"
                )

    def _fire_or_defer(
        self, table: str, operation: str, old_row, new_row, assigned=None
    ) -> None:
        pairs = self.triggers.events_for(
            table, operation, old_row, new_row, assigned
        )
        transaction = self.transactions.current
        for trigger, event in pairs:
            if transaction is not None:
                transaction.defer_trigger(trigger, event)
            elif trigger.callback is not None:
                trigger.callback(event)

    def _run_insert(self, statement: Insert, params: Sequence[Any]) -> ResultSet:
        table = self.catalog.table(statement.table)
        inserted = 0
        for value_row in statement.rows:
            if statement.columns:
                if len(statement.columns) != len(value_row):
                    raise CatalogError(
                        f"INSERT has {len(statement.columns)} column(s) but "
                        f"{len(value_row)} value(s)"
                    )
                names = statement.columns
            else:
                names = tuple(table.column_names)
                if len(names) != len(value_row):
                    raise CatalogError(
                        f"INSERT needs {len(names)} value(s), got {len(value_row)}"
                    )
            values = {
                name: evaluate_expr(expr, {}, params)
                for name, expr in zip(names, value_row)
            }
            full_row = {name: values.get(name) for name in table.column_names}
            self._check_constraints(table, full_row)
            rowid = table.insert_row(values)
            inserted += 1
            transaction = self.transactions.current
            if transaction is not None:
                transaction.log_undo(
                    lambda t=table, rid=rowid: t.delete_row(rid)
                )
            self._fire_or_defer(
                statement.table, "INSERT", None, table.rows[rowid]
            )
        return ResultSet(rowcount=inserted)

    def _run_update(self, statement: Update, params: Sequence[Any]) -> ResultSet:
        table = self.catalog.table(statement.table)
        matched = matching_rows(table, statement.where, params)
        updated = 0
        for rowid, row in matched:
            changes = {
                name: evaluate_expr(expr, row, params)
                for name, expr in statement.assignments
            }
            candidate = dict(row)
            candidate.update(changes)
            self._check_constraints(table, candidate)
            old, new = table.update_row(rowid, changes)
            updated += 1
            transaction = self.transactions.current
            if transaction is not None:
                undo_changes = {name: old[name] for name in changes}
                transaction.log_undo(
                    lambda t=table, rid=rowid, c=undo_changes: t.update_row(rid, c)
                )
            self._fire_or_defer(
                statement.table, "UPDATE", old, new,
                {name for name, __ in statement.assignments},
            )
        return ResultSet(rowcount=updated)

    def _run_delete(self, statement: Delete, params: Sequence[Any]) -> ResultSet:
        table = self.catalog.table(statement.table)
        matched = matching_rows(table, statement.where, params)
        deleted = 0
        for rowid, __ in matched:
            old = table.delete_row(rowid)
            deleted += 1
            transaction = self.transactions.current
            if transaction is not None:
                transaction.log_undo(
                    lambda t=table, rid=rowid, r=old: t.restore_row(rid, r)
                )
            self._fire_or_defer(statement.table, "DELETE", old, None)
        return ResultSet(rowcount=deleted)
