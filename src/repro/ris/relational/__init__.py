"""A from-scratch mini relational DBMS.

This is the reproduction's stand-in for the Sybase/Oracle servers of the
paper: the CM-Translator for relational sources (Section 4.2.1) speaks SQL to
it, declares triggers on it to implement Notify Interfaces, and maps its
error codes to metric/logical failures.

Features (the subset the constraint-management toolkit exercises):

- DDL: ``CREATE TABLE``, ``DROP TABLE``, ``CREATE INDEX``.
- DML: ``INSERT``, ``UPDATE``, ``DELETE`` with ``WHERE`` predicates and
  ``?`` parameter placeholders.
- Queries: ``SELECT`` with projection, expressions, ``WHERE``, ``ORDER BY``,
  ``LIMIT``, and the aggregates ``COUNT/MIN/MAX/SUM``.
- Row triggers: ``AFTER INSERT / UPDATE [OF col] / DELETE`` firing host
  callbacks with old/new rows (how notify interfaces are implemented).
- Primary-key and unique constraints backed by hash indexes; secondary
  hash/ordered indexes chosen automatically for equality predicates.
- Local transactions with rollback (undo logging) — the facility the
  Demarcation Protocol relies on for local-constraint enforcement.

Public entry point: :class:`~repro.ris.relational.database.RelationalDatabase`.
"""

from repro.ris.relational.database import RelationalDatabase, ResultSet
from repro.ris.relational.errors import (
    CatalogError,
    ConstraintViolationError,
    SqlError,
    SqlSyntaxError,
    TransactionError,
)
from repro.ris.relational.triggers import TriggerEvent

__all__ = [
    "RelationalDatabase",
    "ResultSet",
    "SqlError",
    "SqlSyntaxError",
    "CatalogError",
    "ConstraintViolationError",
    "TransactionError",
    "TriggerEvent",
]
