"""Local transactions with undo logging.

The engine supports simple, single-session transactions: ``BEGIN`` starts an
undo log, ``ROLLBACK`` replays it backwards, ``COMMIT`` discards it and
releases queued trigger events.  There is no concurrency to isolate against
— in the discrete-event world every database operation executes atomically
at one virtual instant — so undo + trigger-deferral is exactly the facility
the paper's scenarios need (notably the Demarcation Protocol's local
constraint checks, Section 6.1).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.ris.relational.errors import TransactionError
from repro.ris.relational.triggers import TriggerDef, TriggerEvent

UndoAction = Callable[[], None]


class Transaction:
    """One open transaction: an undo log plus deferred trigger events."""

    def __init__(self) -> None:
        self._undo: list[UndoAction] = []
        self._deferred_triggers: list[tuple[TriggerDef, TriggerEvent]] = []
        self.statements = 0

    def log_undo(self, action: UndoAction) -> None:
        """Record how to reverse the change just made."""
        self._undo.append(action)

    def defer_trigger(self, trigger: TriggerDef, event: TriggerEvent) -> None:
        """Queue a trigger firing until commit."""
        self._deferred_triggers.append((trigger, event))

    def rollback(self) -> None:
        """Undo everything, newest change first.  Triggers are dropped."""
        while self._undo:
            self._undo.pop()()
        self._deferred_triggers.clear()

    def take_deferred_triggers(self) -> list[tuple[TriggerDef, TriggerEvent]]:
        """Hand the queued trigger firings to the committer."""
        deferred = self._deferred_triggers
        self._deferred_triggers = []
        return deferred


class TransactionManager:
    """Begin/commit/rollback state machine (no nesting)."""

    def __init__(self) -> None:
        self.current: Transaction | None = None
        self.committed = 0
        self.rolled_back = 0

    @property
    def active(self) -> bool:
        """Whether a transaction is open."""
        return self.current is not None

    def begin(self) -> Transaction:
        """Open a transaction; error if one is already open."""
        if self.current is not None:
            raise TransactionError("transaction already in progress")
        self.current = Transaction()
        return self.current

    def commit(self) -> list[tuple[TriggerDef, TriggerEvent]]:
        """Close the transaction, returning its deferred trigger firings."""
        if self.current is None:
            raise TransactionError("no transaction in progress")
        deferred = self.current.take_deferred_triggers()
        self.current = None
        self.committed += 1
        return deferred

    def rollback(self) -> None:
        """Undo the open transaction completely."""
        if self.current is None:
            raise TransactionError("no transaction in progress")
        self.current.rollback()
        self.current = None
        self.rolled_back += 1
