"""A bibliographic information system — read-only from the CM's viewpoint.

Models the bibliographic database of the paper's Stanford scenario
(Section 4.3): records arrive from an external feed (here, a workload
generator calling :meth:`ingest`), and the only access the constraint
manager gets is field queries.  No writes, no notifications — so any
constraint involving this source can at best be *monitored* via polling,
exercising the Section 6.3 monitor strategy and the referential-integrity
scenario of Section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.ris.base import (
    Capability,
    RawInformationSource,
    RISError,
    RISErrorCode,
)


@dataclass(frozen=True)
class BibRecord:
    """One bibliographic record."""

    record_id: str
    title: str
    authors: tuple[str, ...]
    year: int
    venue: str = ""


class BiblioDatabase(RawInformationSource):
    """Append-mostly record store with field queries."""

    kind = "bibliographic"

    def __init__(self, name: str):
        super().__init__(name)
        self._records: dict[str, BibRecord] = {}
        self._by_author: dict[str, set[str]] = {}
        self._available = True
        self.queries = 0

    def capabilities(self) -> Capability:
        """Read-only: field queries are all the CM gets."""
        return Capability.READ

    def set_available(self, available: bool) -> None:
        """Simulate the server being unreachable."""
        self._available = available

    def _check_available(self) -> None:
        if not self._available:
            raise RISError(
                RISErrorCode.UNAVAILABLE, f"biblio server {self.name} down"
            )

    # -- feed side (not exposed to the CM) ---------------------------------

    def ingest(self, record: BibRecord) -> None:
        """Add/replace a record (models the external cataloguing feed)."""
        previous = self._records.get(record.record_id)
        if previous is not None:
            for author in previous.authors:
                self._by_author.get(author, set()).discard(record.record_id)
        self._records[record.record_id] = record
        for author in record.authors:
            self._by_author.setdefault(author, set()).add(record.record_id)

    def withdraw(self, record_id: str) -> None:
        """Remove a record (rare, but catalogues do issue retractions)."""
        record = self._records.pop(record_id, None)
        if record is None:
            raise RISError(RISErrorCode.NOT_FOUND, f"no record {record_id!r}")
        for author in record.authors:
            self._by_author.get(author, set()).discard(record_id)

    # -- the query interface (what the CM-Translator uses) -------------------

    def lookup(self, record_id: str) -> BibRecord:
        """Fetch one record by id."""
        self._check_available()
        self.queries += 1
        record = self._records.get(record_id)
        if record is None:
            raise RISError(RISErrorCode.NOT_FOUND, f"no record {record_id!r}")
        return record

    def exists(self, record_id: str) -> bool:
        """Whether a record id is present."""
        self._check_available()
        self.queries += 1
        return record_id in self._records

    def by_author(self, author: str) -> list[BibRecord]:
        """All records naming an author."""
        self._check_available()
        self.queries += 1
        ids = sorted(self._by_author.get(author, ()))
        return [self._records[i] for i in ids]

    def search(self, **fields) -> list[BibRecord]:
        """Records matching all given field equalities (title, year, venue)."""
        self._check_available()
        self.queries += 1
        results: list[BibRecord] = []
        for record in self._records.values():
            if all(getattr(record, name) == value for name, value in fields.items()):
                results.append(record)
        return sorted(results, key=lambda r: r.record_id)

    def record_ids(self) -> Iterator[str]:
        """All record ids (the polling translator enumerates these)."""
        self._check_available()
        self.queries += 1
        return iter(sorted(self._records))

    def __len__(self) -> int:
        return len(self._records)
