"""A legacy system whose update feed can fail *silently*.

Section 5 of the paper discusses the hard case: "consider a CM-Translator
supporting a Notify Interface for a legacy database, and suppose the database
simply sends a message to the CM-Translator whenever there is an update...
If the database fails silently and does not report some update, there is no
way for the CM-Translator to detect the failure."

:class:`LegacySystem` reproduces that: it is a key-value store with an
update-message hook, and a ``drop_probability`` callback (wired to the
scenario's failure plan) decides whether each update message is silently
swallowed.  The experiment harness uses it to show why the paper recommends
falling back to a Read Interface + polling when undetectable notify loss is
unacceptable.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.ris.base import (
    Capability,
    RawInformationSource,
    RISError,
    RISErrorCode,
)

UpdateCallback = Callable[[str, Any], None]


class LegacySystem(RawInformationSource):
    """Opaque key-value store with an unreliable update feed."""

    kind = "legacy"

    def __init__(
        self,
        name: str,
        drop_decider: Callable[[], bool] | None = None,
    ):
        super().__init__(name)
        self._data: dict[str, Any] = {}
        self._listeners: list[UpdateCallback] = []
        self._drop_decider = drop_decider or (lambda: False)
        self._available = True
        self.updates_sent = 0
        self.updates_dropped = 0

    def capabilities(self) -> Capability:
        """Read, write, and a best-effort notify feed."""
        return Capability.READ | Capability.WRITE | Capability.NOTIFY

    def set_available(self, available: bool) -> None:
        """Simulate the system being down (a detectable failure)."""
        self._available = available

    def set_drop_decider(self, decider: Callable[[], bool]) -> None:
        """Install the silent-loss decision hook (failure injection)."""
        self._drop_decider = decider

    def _check_available(self) -> None:
        if not self._available:
            raise RISError(
                RISErrorCode.UNAVAILABLE, f"legacy system {self.name} down"
            )

    # -- the native interface ------------------------------------------------

    def get(self, key: str) -> Any:
        """Read a value; NOT_FOUND if absent."""
        self._check_available()
        if key not in self._data:
            raise RISError(RISErrorCode.NOT_FOUND, f"no key {key!r}")
        return self._data[key]

    def put(self, key: str, value: Any) -> None:
        """Write a value and (maybe) send update messages to listeners.

        The *write always happens*; only the notification can be lost —
        silently, with no error raised anywhere.  That asymmetry is the whole
        point of this source.
        """
        self._check_available()
        self._data[key] = value
        if self._drop_decider():
            self.updates_dropped += 1
            return
        self.updates_sent += 1
        for listener in self._listeners:
            listener(key, value)

    def subscribe(self, callback: UpdateCallback) -> None:
        """Register for update messages (best effort, see :meth:`put`)."""
        self._listeners.append(callback)

    def keys(self) -> list[str]:
        """All keys (used by recovery/audit polling)."""
        self._check_available()
        return sorted(self._data)
