"""Base class for distributed constraints."""

from __future__ import annotations

from repro.core.items import Locations


class Constraint:
    """A declared inter-site constraint.

    Subclasses expose the item families involved; the manager uses
    :meth:`sites` (via the locations registry) for failure bookkeeping and
    the catalog uses :attr:`kind` to find applicable strategies.
    """

    kind: str = "abstract"

    def __init__(self, name: str):
        self.name = name

    def families(self) -> list[str]:
        """The item families the constraint spans."""
        raise NotImplementedError

    def sites(self, locations: Locations) -> set[str]:
        """The sites the constraint spans."""
        return {locations.site_of(family) for family in self.families()}

    def __str__(self) -> str:
        return f"{self.kind} constraint {self.name!r}"
