"""Inequality constraints: ``X <= Y`` across sites (Section 6.1)."""

from __future__ import annotations

from repro.constraints.base import Constraint


class InequalityConstraint(Constraint):
    """``x_family <= y_family`` over numeric items at different sites.

    The canonical management strategy is the Demarcation Protocol
    (:mod:`repro.protocols.demarcation`), which keeps the constraint valid
    *at all times* using local limits — the strongest guarantee in the paper.
    """

    kind = "inequality"

    def __init__(self, x_family: str, y_family: str, name: str = ""):
        super().__init__(name or f"{x_family} <= {y_family}")
        self.x_family = x_family
        self.y_family = y_family

    def families(self) -> list[str]:
        """The two compared families."""
        return [self.x_family, self.y_family]
