"""Distributed constraint types.

The paper's scenarios cover copy constraints (Sections 3-4), inequality
constraints (the Demarcation Protocol, Section 6.1), referential integrity
(Section 6.2), and the Section 7.1 remark that complex arithmetic constraints
are decomposed into distributed copies plus a local constraint.
"""

from repro.constraints.base import Constraint
from repro.constraints.copy import CopyConstraint
from repro.constraints.inequality import InequalityConstraint
from repro.constraints.referential import ReferentialConstraint
from repro.constraints.arithmetic import ArithmeticConstraint

__all__ = [
    "Constraint",
    "CopyConstraint",
    "InequalityConstraint",
    "ReferentialConstraint",
    "ArithmeticConstraint",
]
