"""Referential-integrity constraints across databases (Section 6.2)."""

from __future__ import annotations

from repro.constraints.base import Constraint
from repro.core.timebase import Ticks, days


class ReferentialConstraint(Constraint):
    """Every ``parent_family(i)`` must have a ``child_family(i)``.

    The paper's weakened form tolerates violations for up to a grace period
    per parameter value (24 hours in the Section 6.2 example).
    """

    kind = "referential"

    def __init__(
        self,
        parent_family: str,
        child_family: str,
        grace: Ticks = days(1),
        name: str = "",
    ):
        super().__init__(
            name or f"E({parent_family}(i)) => E({child_family}(i))"
        )
        self.parent_family = parent_family
        self.child_family = child_family
        self.grace = grace

    def families(self) -> list[str]:
        """Parent and child families."""
        return [self.parent_family, self.child_family]
