"""Arithmetic constraints and their decomposition (Section 7.1).

The paper: "consider the constraint X = Y + Z, where X, Y, and Z are at
three different sites.  A common way to manage this constraint is to have
cached copies Yc and Zc of Y and Z at the site where X is.  Hence, we would
have the constraints X = Yc + Zc, Yc = Y and Zc = Z.  Only the simple copy
constraints are distributed."

:meth:`ArithmeticConstraint.decompose` performs exactly that rewriting: it
returns the distributed :class:`~repro.constraints.copy.CopyConstraint` list
plus a :class:`LocalArithmeticCheck` describing the purely local residue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.base import Constraint
from repro.constraints.copy import CopyConstraint


@dataclass(frozen=True)
class LocalArithmeticCheck:
    """The local residue of a decomposed arithmetic constraint.

    ``target = sum(cached operand families)``, all at ``site`` — enforceable
    by the local database's own constraint facilities, outside the
    distributed CM's scope.
    """

    site: str
    target_family: str
    cached_families: tuple[str, ...]

    def formula(self) -> str:
        """The local residue as text, e.g. 'X = Cached_Y + Cached_Z'."""
        return f"{self.target_family} = " + " + ".join(self.cached_families)


class ArithmeticConstraint(Constraint):
    """``target = operand_1 + operand_2 + ...`` across sites."""

    kind = "arithmetic"

    def __init__(
        self, target_family: str, operand_families: tuple[str, ...], name: str = ""
    ):
        if len(operand_families) < 2:
            raise ValueError(
                "an arithmetic constraint needs at least two operands "
                "(use a copy constraint otherwise)"
            )
        super().__init__(
            name or f"{target_family} = {' + '.join(operand_families)}"
        )
        self.target_family = target_family
        self.operand_families = operand_families

    def families(self) -> list[str]:
        """Target plus operand families."""
        return [self.target_family, *self.operand_families]

    def decompose(
        self, target_site: str
    ) -> tuple[list[CopyConstraint], LocalArithmeticCheck]:
        """Rewrite into distributed copies plus a local check at the target.

        Each operand gets a cache family ``Cached_<operand>`` meant to be
        registered at ``target_site``; the returned copy constraints keep
        the caches fresh and the local check is what remains.
        """
        copies = []
        cached = []
        for family in self.operand_families:
            cache_family = f"Cached_{family}"
            cached.append(cache_family)
            copies.append(
                CopyConstraint(
                    family,
                    cache_family,
                    name=f"{cache_family} = {family}",
                )
            )
        return copies, LocalArithmeticCheck(
            target_site, self.target_family, tuple(cached)
        )
