"""Copy constraints: ``Y`` is a copy of ``X`` (Sections 3.3.1 and 4.2)."""

from __future__ import annotations

from repro.constraints.base import Constraint


class CopyConstraint(Constraint):
    """``src = dst`` with ``src`` the primary copy.

    ``params`` names the constraint's parameters for parameterized families
    (the paper's ``salary1(n) = salary2(n) for all n``); empty for plain
    items like ``X = Y``.
    """

    kind = "copy"

    def __init__(
        self,
        src_family: str,
        dst_family: str,
        params: tuple[str, ...] = (),
        name: str = "",
    ):
        super().__init__(name or f"{src_family} = {dst_family}")
        self.src_family = src_family
        self.dst_family = dst_family
        self.params = params

    def families(self) -> list[str]:
        """Source and destination families."""
        return [self.src_family, self.dst_family]

    @property
    def parameterized(self) -> bool:
        """Whether the constraint ranges over a parameter (e.g. n)."""
        return bool(self.params)
