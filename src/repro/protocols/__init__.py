"""Programmed (non-rule) constraint-management protocols.

Currently one member: the Demarcation Protocol of Barbara & Garcia-Molina,
which the paper uses as its complex-scenario case study (Section 6.1).
"""

from repro.protocols.demarcation import (
    DemarcationAgent,
    DemarcationProtocol,
    SlackPolicy,
)

__all__ = ["DemarcationAgent", "DemarcationProtocol", "SlackPolicy"]
