"""The Demarcation Protocol for inter-site inequality constraints.

Section 6.1 of the paper: for ``X <= Y`` with ``X`` and ``Y`` at different
sites, the protocol maintains local *limit* items ``Lx`` (at X's site) and
``Ly`` (at Y's site) with the three local invariants::

    X <= Lx        (enforced by X's site, using its local constraint manager)
    Ly <= Y        (enforced by Y's site)
    Lx <= Ly       (maintained by the protocol's message discipline)

Together these imply the global guarantee ``X <= Y`` **at all times**, with
no distributed transactions.  Safe unilateral operations: decreasing ``X``,
increasing ``Y``, decreasing ``Lx``, increasing ``Ly`` (up to ``Y``).
Unsafe changes require a one-message handshake that performs the safe side
first: to raise ``Lx``, Y's site first raises ``Ly``, then grants; to lower
``Ly``, X's site first lowers ``Lx``, then grants.

*Policies* (the paper's term) decide how much slack a grant hands over:

- ``EXACT`` — grant exactly what was requested (lazy; most messages);
- ``EAGER`` — grant the request plus a headroom fraction of the remaining
  slack (fewest messages, most slack hoarded by one side);
- ``SPLIT`` — grant up to the midpoint of the available slack (balanced).

An implementation that never changed the limits would also satisfy
``X <= Y`` but would deny every local update beyond the initial limits —
the paper's example of a "valid but undesirable" implementation; the
experiment harness measures denied-update rates to compare policies
(including that degenerate ``FROZEN`` one).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.core.items import DataItemRef
from repro.core.timebase import Ticks
from repro.cm.shell import CMShell
from repro.sim.network import Message, Network


class SlackPolicy(Enum):
    """How much slack a limit-change grant hands over."""

    EXACT = "exact"
    EAGER = "eager"
    SPLIT = "split"
    #: Never change limits (valid but useless; for the ablation experiment).
    FROZEN = "frozen"


@dataclass(frozen=True)
class _LimitRequest:
    """X-side asks to raise Lx to at least ``needed`` (or Y-side asks to
    lower Ly to at most ``needed``)."""

    origin: str  # "x" or "y"
    needed: float
    request_id: int


@dataclass(frozen=True)
class _LimitGrant:
    """The peer's reply: the new bound the requester may move its limit to."""

    origin: str
    granted: float
    request_id: int


@dataclass
class DemarcationStats:
    """Counters the experiments report."""

    updates_attempted: int = 0
    updates_applied: int = 0
    updates_denied: int = 0
    requests_sent: int = 0
    grants_received: int = 0
    grants_denied: int = 0


class DemarcationAgent:
    """One side of the protocol, co-located with its CM-Shell.

    The agent owns the local item (via the site's translator) and its limit
    item (a shell-private data item, so limit changes appear in the trace
    and the ``Lx <= Ly`` invariant is itself checkable).  Local applications
    submit updates through :meth:`attempt_update`, which models the local
    database's constraint manager enforcing ``X <= Lx`` / ``Ly <= Y``.
    """

    #: Message-type tag so shells' networks can route to the agent.
    def __init__(
        self,
        side: str,  # "x" (upper-bounded) or "y" (lower-bounding)
        shell: CMShell,
        network: Network,
        item_ref: DataItemRef,
        limit_ref: DataItemRef,
        peer_site: str,
        policy: SlackPolicy,
        initial_value: float,
        initial_limit: float,
    ):
        if side not in ("x", "y"):
            raise ValueError(f"side must be 'x' or 'y', got {side!r}")
        self.side = side
        self.shell = shell
        self.network = network
        self.item_ref = item_ref
        self.limit_ref = limit_ref
        self.peer_site = peer_site
        self.policy = policy
        self.stats = DemarcationStats()
        self._pending: dict[int, float] = {}  # request id -> desired value
        self._next_request = 1
        self.peer: Optional["DemarcationAgent"] = None
        translator = shell.translator_for(item_ref.name)
        translator.apply_spontaneous_write(item_ref, initial_value)
        shell.store.write(limit_ref, initial_limit, shell.sim.now)

    # -- local state helpers ---------------------------------------------------

    @property
    def value(self) -> float:
        """Current value of the local item (from the trace's live state)."""
        return float(self.shell.trace.current_value(self.item_ref))

    @property
    def limit(self) -> float:
        """Current value of the local limit item."""
        return float(self.shell.store.read_local(self.limit_ref))

    def _write_value(self, value: float) -> None:
        translator = self.shell.translator_for(self.item_ref.name)
        translator.apply_spontaneous_write(self.item_ref, value)

    def _write_limit(self, value: float) -> None:
        self.shell.store.write(self.limit_ref, value, self.shell.sim.now)

    def _locally_allowed(self, new_value: float) -> bool:
        if self.side == "x":
            return new_value <= self.limit
        return new_value >= self.limit

    # -- the application-facing operation ------------------------------------------

    def attempt_update(self, new_value: float) -> bool:
        """A local application tries to set the item to ``new_value``.

        Safe-direction changes (and changes within the local limit) apply
        immediately.  Otherwise the agent asks the peer for a limit change
        and the update stays pending; it applies when (and if) enough slack
        is granted.  Returns True when the update applied immediately.
        """
        self.stats.updates_attempted += 1
        if self._locally_allowed(new_value):
            self._write_value(new_value)
            self.stats.updates_applied += 1
            return True
        if self.policy is SlackPolicy.FROZEN:
            self.stats.updates_denied += 1
            return False
        request_id = self._next_request
        self._next_request += 1
        self._pending[request_id] = new_value
        self.stats.requests_sent += 1
        self.network.send(
            self.shell.site,
            self.peer_site,
            _LimitRequest(self.side, new_value, request_id),
        )
        return False

    # -- protocol message handling ---------------------------------------------------

    def handle_message(self, message: Message) -> None:
        """Entry point for protocol messages (wired by DemarcationProtocol)."""
        payload = message.payload
        if isinstance(payload, _LimitRequest):
            self._handle_request(payload)
        elif isinstance(payload, _LimitGrant):
            self._handle_grant(payload)

    def _handle_request(self, request: _LimitRequest) -> None:
        """The peer needs our limit moved so it can move its own.

        We perform the *safe* side of the handshake first: move our limit
        toward our item's current value as far as the policy allows, then
        grant the peer the new bound.

        Crossing-request guard: if we have an outstanding request of our own,
        we reply without moving our limit.  Otherwise two simultaneous
        opposite-direction handshakes could each rely on the other's
        pre-handshake limit and jointly break ``Lx <= Ly`` — the requester
        just sees a no-slack grant and denies its pending update.
        """
        if self._pending:
            self.network.send(
                self.shell.site,
                self.peer_site,
                _LimitGrant(self.side, self.limit, request.request_id),
            )
            return
        if self.side == "y":
            # Peer (X side) wants Lx >= needed; we may raise Ly up to Y.
            available = self.value  # Ly may rise to at most Y
            if request.needed > available:
                granted = self._grant_amount(self.limit, available, available)
            else:
                granted = self._grant_amount(
                    self.limit, request.needed, available
                )
            granted = max(granted, self.limit)  # never regress our own limit
            if granted > self.limit:
                self._write_limit(granted)
        else:
            # Peer (Y side) wants Ly <= needed; we may lower Lx down to X.
            available = self.value  # Lx may drop to at least X
            if request.needed < available:
                granted = self._grant_amount(self.limit, available, available)
            else:
                granted = self._grant_amount(
                    self.limit, request.needed, available
                )
            granted = min(granted, self.limit)
            if granted < self.limit:
                self._write_limit(granted)
        self.network.send(
            self.shell.site,
            self.peer_site,
            _LimitGrant(self.side, granted, request.request_id),
        )

    def _grant_amount(
        self, current_limit: float, needed: float, extreme: float
    ) -> float:
        """Where to move our own limit, per policy.

        ``extreme`` is the furthest safe position (our item's current value);
        ``needed`` is what the peer asked for, already clamped to safety.
        """
        if self.policy is SlackPolicy.EXACT:
            return needed
        if self.policy is SlackPolicy.EAGER:
            return extreme  # hand over all currently safe slack
        if self.policy is SlackPolicy.SPLIT:
            return (needed + extreme) / 2.0
        return current_limit  # FROZEN never moves

    def _handle_grant(self, grant: _LimitGrant) -> None:
        """The peer moved its limit; we may now move ours up to the grant."""
        self.stats.grants_received += 1
        if self.side == "x":
            # We may raise Lx to at most the granted Ly.
            if grant.granted > self.limit:
                self._write_limit(grant.granted)
        else:
            # We may lower Ly to at least the granted Lx.
            if grant.granted < self.limit:
                self._write_limit(grant.granted)
        desired = self._pending.pop(grant.request_id, None)
        if desired is None:
            return
        if self._locally_allowed(desired):
            self._write_value(desired)
            self.stats.updates_applied += 1
        else:
            self.stats.updates_denied += 1
            self.stats.grants_denied += 1


class DemarcationProtocol:
    """Wires two agents together over the network.

    Built by the manager's catalog when an inequality constraint is managed
    with the ``demarcation`` strategy.  Message routing piggybacks on the
    shells' network handlers: the protocol wraps each shell's inbound
    dispatch so protocol messages reach the agents.
    """

    def __init__(
        self,
        x_shell: CMShell,
        y_shell: CMShell,
        x_ref: DataItemRef,
        y_ref: DataItemRef,
        policy: SlackPolicy = SlackPolicy.SPLIT,
        initial_x: float = 0.0,
        initial_y: float = 0.0,
        initial_limit: Optional[float] = None,
    ):
        if initial_x > initial_y:
            raise ValueError(
                f"initial values violate X <= Y: {initial_x} > {initial_y}"
            )
        if initial_limit is None:
            initial_limit = (initial_x + initial_y) / 2.0
        if not initial_x <= initial_limit <= initial_y:
            raise ValueError(
                f"initial limit {initial_limit} outside "
                f"[{initial_x}, {initial_y}]"
            )
        network = x_shell.network
        limit_x = DataItemRef(f"Limit_{x_ref.name}")
        limit_y = DataItemRef(f"Limit_{y_ref.name}")
        self.x_agent = DemarcationAgent(
            "x", x_shell, network, x_ref, limit_x, y_shell.site, policy,
            initial_x, initial_limit,
        )
        self.y_agent = DemarcationAgent(
            "y", y_shell, network, y_ref, limit_y, x_shell.site, policy,
            initial_y, initial_limit,
        )
        self.x_agent.peer = self.y_agent
        self.y_agent.peer = self.x_agent
        self._hook_shell(x_shell, self.x_agent)
        self._hook_shell(y_shell, self.y_agent)

    @staticmethod
    def _hook_shell(shell: CMShell, agent: DemarcationAgent) -> None:
        original = shell._on_message

        def dispatch(message: Message) -> None:
            if isinstance(message.payload, (_LimitRequest, _LimitGrant)):
                agent.handle_message(message)
            else:
                original(message)

        shell._on_message = dispatch  # type: ignore[method-assign]
        shell.network._sites[shell.site].handler = dispatch
