"""Static per-rule effect summaries: what a rule may read and write.

The sharded dispatch path (PRs 8–9) parallelized *matching* only, because
nothing proved two rules' condition+RHS evaluations independent.  This
module supplies the missing proof obligation's first half: a **sound
over-approximation** of every data item a rule's condition may read and
every item its right-hand side may write, plus the two effects that are
not data accesses at all — firing across the network (``sends``) and
standing as a prohibition promise (``reports_failure``).

Soundness contract: the summary may be *wider* than the dynamic footprint
(an ``ANY`` argument where the value is data-dependent, a whole-family
``extent`` term for an enumerating read), never narrower.  The dynamic
race sanitizer (:mod:`repro.analysis.sanitizer`) exists to hold this
module to that contract: any observed access outside the claimed
footprint of a certified-independent pair is a soundness bug here, not a
scheduling bug there.

Summaries are extracted from the rule AST — templates carry the argument
terms the compiled accessor closures have already erased — and
*corroborated* against the compiled program where one exists: the
compiler folds statically-false steps away and decides enumeration
statically, so a compiled rule's step list must be a subset of the AST's.
Rules without a compiled program (``install(compiled=False)`` or a
:class:`~repro.core.errors.CompileError` fallback) are summarized from
the AST alone and flagged ``fallback=True`` (surfaced as CM703).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.compile import CompiledRule
from repro.core.conditions import Binary, Call, Expr, ItemRead, Name, Unary
from repro.core.events import EventKind
from repro.core.rules import Rule
from repro.core.terms import FAMILY_WILDCARD, Const, ItemPattern


class _AnyArg:
    """A footprint argument whose value is unknown statically."""

    _instance: "_AnyArg | None" = None

    def __new__(cls) -> "_AnyArg":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


#: The unknown-argument sentinel: overlaps every concrete value.
ANY = _AnyArg()


@dataclass(frozen=True)
class FootTerm:
    """One footprint term: a set of data items a rule may touch.

    ``args`` holds ground values where the template pins them and
    :data:`ANY` where they are variables or wildcards; ``args=None`` means
    the item shape itself is unknown (nothing can be ruled out).
    ``extent=True`` denotes whole-family access — an enumerating read
    touches every *current* instance, so it overlaps any write to the
    family no matter the arguments.
    """

    family: str
    args: Optional[tuple] = ()
    extent: bool = False

    def __str__(self) -> str:
        if self.extent:
            return f"{self.family}(**)"
        if self.args is None:
            return f"{self.family}(?)"
        if not self.args:
            return self.family
        rendered = ", ".join(
            "*" if a is ANY else repr(a) for a in self.args
        )
        return f"{self.family}({rendered})"

    def overlaps(self, other: "FootTerm") -> bool:
        """May the two terms denote a common data item?

        Disjointness must be *provable*: distinct ground families with
        distinct ground arguments.  Family wildcards, extents, and
        unknown shapes all overlap conservatively.
        """
        if (
            self.family != other.family
            and self.family != FAMILY_WILDCARD
            and other.family != FAMILY_WILDCARD
        ):
            return False
        if self.extent or other.extent:
            return True
        if self.args is None or other.args is None:
            return True
        if len(self.args) != len(other.args):
            # Same family, different arity: distinct items by construction
            # (DataItemRef equality includes the argument tuple).
            return False
        for mine, theirs in zip(self.args, other.args):
            if mine is ANY or theirs is ANY:
                continue
            if mine != theirs:
                return False
        return True


def pattern_term(pattern: ItemPattern, extent: bool = False) -> FootTerm:
    """The footprint term of an item pattern (ground args kept, rest ANY)."""
    args = tuple(
        arg.value if isinstance(arg, Const) else ANY for arg in pattern.args
    )
    return FootTerm(pattern.name, args, extent)


@dataclass(frozen=True)
class EffectSummary:
    """The sound effect summary of one rule.

    ``reads`` covers the LHS condition (binders included — they are
    condition conjuncts), every step condition, and every read request the
    RHS issues; ``writes`` covers W and WR steps.  ``sends`` is True when
    the rule's RHS executes at a peer shell — set by callers that know the
    installed routing, since a bare :class:`Rule` has no ``rhs_site``.
    """

    rule: str
    reads: tuple[FootTerm, ...] = ()
    writes: tuple[FootTerm, ...] = ()
    #: The subset of ``reads`` issued by the LHS condition alone (binders
    #: included).  This is what gates condition *hoisting*: a condition
    #: whose ``cond_reads`` no installed rule writes can be evaluated
    #: before the batch commits, and one with no reads at all can be
    #: evaluated on a worker process during the matching phase.
    cond_reads: tuple[FootTerm, ...] = ()
    #: RHS fires across the network (rhs_site != lhs site).
    sends: bool = False
    #: The rule is a prohibition promise (``E -> FALSE``); firing it is a
    #: no-op at the RHS, but the effect is recorded for completeness.
    reports_failure: bool = False
    #: No compiled program backed the extraction (AST fallback, CM703).
    fallback: bool = False

    def conflicts(self, other: "EffectSummary") -> Optional[tuple]:
        """The first write-write / write-read overlap, or ``None``.

        Returns ``(kind, mine, theirs)`` where kind is ``"ww"``, ``"wr"``
        (my write vs their read) or ``"rw"``.  Two summaries with no such
        overlap commute: each rule's condition reads nothing the other
        writes, and their writes land on provably distinct items (blind
        overwrites to distinct items commute; overlapping writes do not,
        since last-writer-wins order is observable).
        """
        for mine in self.writes:
            for theirs in other.writes:
                if mine.overlaps(theirs):
                    return ("ww", mine, theirs)
            for theirs in other.reads:
                if mine.overlaps(theirs):
                    return ("wr", mine, theirs)
        for mine in self.reads:
            for theirs in other.writes:
                if mine.overlaps(theirs):
                    return ("rw", mine, theirs)
        return None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "reads": [str(term) for term in self.reads],
            "writes": [str(term) for term in self.writes],
            "cond_reads": [str(term) for term in self.cond_reads],
            "sends": self.sends,
            "reports_failure": self.reports_failure,
            "fallback": self.fallback,
        }


def _expr_reads(expr: Expr, out: list[FootTerm]) -> None:
    """Collect the local data items an expression may read.

    Mirrors the evaluator's resolution rules exactly
    (:func:`repro.core.conditions._resolve_operand`): an upper-case bare
    name is an argument-less local item, a lower-case name is a rule
    variable (no local read), ``item(args)`` and ``exists(item)`` read the
    grounded pattern.
    """
    if isinstance(expr, Name):
        if expr.name[0].isupper():
            out.append(FootTerm(expr.name, ()))
        return
    if isinstance(expr, ItemRead):
        out.append(pattern_term(expr.pattern))
        return
    if isinstance(expr, Unary):
        _expr_reads(expr.operand, out)
        return
    if isinstance(expr, Binary):
        _expr_reads(expr.left, out)
        _expr_reads(expr.right, out)
        return
    if isinstance(expr, Call):
        for arg in expr.args:
            _expr_reads(arg, out)
        return
    # Literals (and any future leaf) read nothing.


_WRITE_KINDS = (EventKind.WRITE, EventKind.WRITE_REQUEST)


def _dedupe(terms: Iterable[FootTerm]) -> tuple[FootTerm, ...]:
    seen: list[FootTerm] = []
    for term in terms:
        if term not in seen:
            seen.append(term)
    return tuple(seen)


def effect_summary(
    rule: Rule,
    *,
    program: Optional[CompiledRule] = None,
    sends: bool = False,
) -> EffectSummary:
    """Extract the sound effect summary of one rule.

    ``program`` is the rule's compiled program when one exists; it
    corroborates the AST extraction (and clears the ``fallback`` flag) but
    the footprint terms always come from the templates, which still carry
    the argument terms the compiled closures have erased.
    """
    cond_reads: list[FootTerm] = []
    writes: list[FootTerm] = []
    for __, binder_expr in rule.binders:
        _expr_reads(binder_expr, cond_reads)
    _expr_reads(rule.condition, cond_reads)
    reads: list[FootTerm] = list(cond_reads)
    lhs_vars = (
        rule.lhs.variables() | {name for name, __ in rule.binders} | {"now"}
    )
    for step in rule.steps:
        tmpl = step.template
        if tmpl.kind is EventKind.FALSE:
            continue
        _expr_reads(step.condition, reads)
        if tmpl.kind in _WRITE_KINDS:
            writes.append(pattern_term(tmpl.item))
        elif tmpl.kind is EventKind.READ_REQUEST:
            enumerating = bool(tmpl.item.variables() - lhs_vars)
            reads.append(pattern_term(tmpl.item, extent=enumerating))
    if program is not None:
        _corroborate(program, writes)
    return EffectSummary(
        rule=rule.name,
        reads=_dedupe(reads),
        writes=_dedupe(writes),
        cond_reads=_dedupe(cond_reads),
        sends=sends,
        reports_failure=rule.is_prohibition,
        fallback=program is None,
    )


def _corroborate(program: CompiledRule, writes: list[FootTerm]) -> None:
    """Check the compiled step list against the AST-derived write set.

    The compiler folds statically-false steps away, so its steps must be a
    *subset* of the AST's; a compiled write on a family the AST walk did
    not record would mean the extraction missed an effect — widen to the
    whole family rather than certify on a provably incomplete summary.
    """
    known = {term.family for term in writes}
    for step in program.steps:
        if step.kind in _WRITE_KINDS and step.family not in known:
            writes.append(FootTerm(step.family, None))
            known.add(step.family)


def shell_effects(shell) -> dict[str, EffectSummary]:
    """Effect summaries for every rule installed at one CM-Shell, keyed by
    rule name, with ``sends`` resolved from the installed routing."""
    summaries: dict[str, EffectSummary] = {}
    for installed in shell._index:
        rhs_site = installed.rhs_site
        summaries[installed.rule.name] = effect_summary(
            installed.rule,
            program=installed.program,
            sends=rhs_site is not None and rhs_site != shell.site,
        )
    return summaries


__all__ = [
    "ANY",
    "EffectSummary",
    "FootTerm",
    "effect_summary",
    "pattern_term",
    "shell_effects",
]
