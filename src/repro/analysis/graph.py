"""The static trigger graph CM-Lint analyzes.

Nodes are rules: the strategy rules installed in each CM-Shell plus the
interface rules each translator's source offers (a write interface *is* the
rule ``WR(X, b) ->[δ] W(X, b)``; modelling it as a node lets one edge
relation cover the whole event flow ``Ws → N → strategy → WR → W``).

There is an edge A → B when some right-hand-side event template of A can
*unify* with B's left-hand-side template — i.e. some ground event could be
produced by A and trigger B.  Unification is decided purely on templates
(:func:`unify_templates`): no events are executed, so the graph is a sound
over-approximation of the runtime trigger relation (every runtime trigger
is an edge; an edge need not ever fire).

Edges record whether they are *guarded* — the producing step or the
consuming rule carries a condition beyond its binder equalities — and
whether they are *echo* edges: a committed write ``W(X)`` at a source that
offers a notify interface re-entering the rule system as if it were a
spontaneous write.  Echo edges are real only when a translator fails to
suppress its own writes (the echo-ablation failure mode), so cycle
detection treats them as a separate, weaker class.

Construction is near-linear in the rule count: candidate consumers are
looked up in a ``(kind, family)`` bucket index — the static twin of the
dispatcher's :class:`~repro.cm.dispatch.RuleIndex` — rather than by
scanning all node pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.conditions import TRUE, Binary, Expr, Name
from repro.core.events import EventKind
from repro.core.interfaces import InterfaceKind, InterfaceSpec
from repro.core.rules import Rule, RuleRole
from repro.core.templates import Template
from repro.core.terms import FAMILY_WILDCARD, Const, Term
from repro.core.timebase import Ticks


def _terms_unify(a: Term, b: Term) -> bool:
    """Whether two template terms admit a common ground value.

    Variables and wildcards unify with anything; two constants unify only
    when equal.  Repeated-variable consistency is ignored, which can only
    add edges (the graph stays an over-approximation).
    """
    if isinstance(a, Const) and isinstance(b, Const):
        return a.value == b.value
    return True


def unify_templates(a: Template, b: Template) -> bool:
    """Whether some ground event descriptor matches both templates."""
    if a.kind is EventKind.FALSE or b.kind is EventKind.FALSE:
        return False
    if a.kind is not b.kind:
        return False
    if (a.item is None) != (b.item is None):
        return False
    if a.item is not None and b.item is not None:
        if (
            a.item.name != b.item.name
            and a.item.name != FAMILY_WILDCARD
            and b.item.name != FAMILY_WILDCARD
        ):
            return False
        if len(a.item.args) != len(b.item.args):
            return False
        for ta, tb in zip(a.item.args, b.item.args):
            if not _terms_unify(ta, tb):
                return False
    if len(a.values) != len(b.values):
        return False
    for ta, tb in zip(a.values, b.values):
        if not _terms_unify(ta, tb):
            return False
    return True


def guard_conjuncts(rule: Rule) -> list[Expr]:
    """The rule condition's conjuncts that actually *guard* firing.

    Binder equalities (``b == X``: capture a value into a fresh variable)
    always succeed once evaluable, so they are not guards; everything else
    in the LHS condition is.
    """
    binder_vars = {name for name, __ in rule.binders}
    lhs_vars = rule.lhs.variables()
    guards: list[Expr] = []

    def walk(expr: Expr) -> None:
        if isinstance(expr, Binary) and expr.op == "and":
            walk(expr.left)
            walk(expr.right)
            return
        if isinstance(expr, Binary) and expr.op == "==":
            for side in (expr.left, expr.right):
                if (
                    isinstance(side, Name)
                    and side.name in binder_vars
                    and side.name not in lhs_vars
                ):
                    return  # a binder conjunct, not a guard
        guards.append(expr)

    if rule.condition is not TRUE:
        walk(rule.condition)
    return guards


@dataclass(frozen=True)
class Node:
    """One trigger-graph node: a rule, where it runs, and its provenance."""

    index: int
    rule: Rule
    #: Site whose shell processes the LHS event.
    site: str
    #: Site where the RHS executes (differs from ``site`` for cross-site
    #: strategy rules; the network hop between them is what guarantee
    #: feasibility charges for).
    rhs_site: str
    #: ``"strategy"`` or ``"interface"``.
    kind: str
    #: For interface nodes: which menu entry this rule is.
    iface_kind: Optional[InterfaceKind] = None
    #: For interface nodes: the family the interface is offered for.
    family: Optional[str] = None
    #: For periodic-notify interfaces and periodic strategy rules: the
    #: timer period (worst-case extra staleness a feasibility path pays).
    period: Optional[Ticks] = None
    #: The strategy or source this rule came from (display provenance).
    origin: str = ""

    @property
    def name(self) -> str:
        return self.rule.name

    def __str__(self) -> str:
        return f"{self.kind}:{self.rule.name}@{self.site}"


@dataclass(frozen=True)
class Edge:
    """A may-trigger edge: an RHS template of ``src`` unifies with the LHS
    template of ``dst``."""

    src: int
    dst: int
    #: The RHS template of the source rule that produces the linking event.
    template: Template
    #: True when the producing step or the consuming rule is conditional.
    guarded: bool
    #: Human-readable guard (empty when unguarded).
    guard: str = ""
    #: True for write→spontaneous-write echo edges (only real when a
    #: translator leaks its own writes back as notifications).
    echo: bool = False

    def __str__(self) -> str:
        marker = " [echo]" if self.echo else ""
        guard = f" when {self.guard}" if self.guard else ""
        return f"{self.src} -> {self.dst} via {self.template}{guard}{marker}"


class TriggerGraph:
    """The static trigger graph over a set of rule nodes."""

    def __init__(self, nodes: list[Node], edges: list[Edge]) -> None:
        self.nodes = nodes
        self.edges = edges
        self._out: list[list[Edge]] = [[] for __ in nodes]
        self._in: list[list[Edge]] = [[] for __ in nodes]
        for edge in edges:
            self._out[edge.src].append(edge)
            self._in[edge.dst].append(edge)

    def out_edges(self, index: int) -> list[Edge]:
        return self._out[index]

    def in_edges(self, index: int) -> list[Edge]:
        return self._in[index]

    def successors(self, index: int, *, echo: bool = True) -> list[int]:
        return [
            e.dst for e in self._out[index] if echo or not e.echo
        ]

    def strategy_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.kind == "strategy"]

    def interface_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.kind == "interface"]

    def __len__(self) -> int:
        return len(self.nodes)

    def describe(self) -> str:
        """Multi-line listing (debugging aid, exercised by the tests)."""
        lines = [f"trigger graph: {len(self.nodes)} nodes, "
                 f"{len(self.edges)} edges"]
        for node in self.nodes:
            lines.append(f"  [{node.index}] {node}: {node.rule}")
            for edge in self._out[node.index]:
                lines.append(f"       -> [{edge.dst}] "
                             f"{self.nodes[edge.dst].name}"
                             + (" [echo]" if edge.echo else "")
                             + (f" when {edge.guard}" if edge.guard else ""))
        return "\n".join(lines)


@dataclass
class _NodeDraft:
    rule: Rule
    site: str
    rhs_site: str
    kind: str
    iface_kind: Optional[InterfaceKind] = None
    family: Optional[str] = None
    period: Optional[Ticks] = None
    origin: str = ""


def _period_of(rule: Rule) -> Optional[Ticks]:
    if rule.lhs.kind is EventKind.PERIODIC and isinstance(
        rule.lhs.values[0], Const
    ):
        return rule.lhs.values[0].value
    return None


def _spec_draft(spec: InterfaceSpec, site: str, origin: str) -> _NodeDraft:
    return _NodeDraft(
        rule=spec.rule,
        site=site,
        rhs_site=site,
        kind="interface",
        iface_kind=spec.kind,
        family=spec.family,
        period=spec.period,
        origin=origin,
    )


#: Interface kinds that turn a spontaneous write into a notification.
NOTIFY_KINDS = (
    InterfaceKind.NOTIFY,
    InterfaceKind.CONDITIONAL_NOTIFY,
    InterfaceKind.PERIODIC_NOTIFY,
)


def _build(drafts: list[_NodeDraft]) -> TriggerGraph:
    nodes = [
        Node(
            index=i,
            rule=d.rule,
            site=d.site,
            rhs_site=d.rhs_site,
            kind=d.kind,
            iface_kind=d.iface_kind,
            family=d.family,
            period=d.period if d.period is not None else _period_of(d.rule),
            origin=d.origin,
        )
        for i, d in enumerate(drafts)
    ]

    # Bucket consumers by their LHS (kind, family) discriminator, the same
    # pre-filter the runtime dispatcher uses; None keys collect the
    # family-wildcard and item-less templates that any event of the kind
    # could reach.
    buckets: dict[tuple[EventKind, Optional[str]], list[Node]] = {}
    by_kind: dict[EventKind, list[Node]] = {}
    for node in nodes:
        lhs = node.rule.lhs
        buckets.setdefault((lhs.kind, lhs.dispatch_family), []).append(node)
        by_kind.setdefault(lhs.kind, []).append(node)
    guards = {node.index: guard_conjuncts(node.rule) for node in nodes}

    def consumers(template: Template) -> Iterable[Node]:
        kind = template.kind
        family = (
            template.item.name if template.item is not None else None
        )
        if family == FAMILY_WILDCARD:
            return by_kind.get(kind, [])
        candidates = list(buckets.get((kind, family), []))
        if family is not None:
            candidates.extend(buckets.get((kind, None), []))
        return candidates

    edges: list[Edge] = []
    seen: set[tuple[int, int, bool]] = set()
    for node in nodes:
        for step in node.rule.steps:
            template = step.template
            if template.kind is EventKind.FALSE:
                continue
            step_guarded = step.condition is not TRUE
            for target in consumers(template):
                if not unify_templates(template, target.rule.lhs):
                    continue
                key = (node.index, target.index, False)
                if key in seen:
                    continue
                seen.add(key)
                target_guards = guards[target.index]
                guarded = step_guarded or bool(target_guards)
                parts = []
                if step_guarded:
                    parts.append(str(step.condition))
                parts.extend(str(g) for g in target_guards)
                edges.append(
                    Edge(
                        src=node.index,
                        dst=target.index,
                        template=template,
                        guarded=guarded,
                        guard=" and ".join(parts),
                    )
                )

    # Echo edges: a committed write W(F) at a source offering a notify
    # interface *would* re-enter as Ws(F) -> N(F) if the translator failed
    # to suppress its own writes.  Sourced from write-interface nodes (the
    # only legal producers of W on database families).
    notify_by_family: dict[str, list[Node]] = {}
    for node in nodes:
        if node.kind == "interface" and node.iface_kind in NOTIFY_KINDS:
            assert node.family is not None
            notify_by_family.setdefault(node.family, []).append(node)
    for node in nodes:
        if node.kind != "interface" or node.iface_kind is not (
            InterfaceKind.WRITE
        ):
            continue
        for target in notify_by_family.get(node.family or "", []):
            key = (node.index, target.index, True)
            if key in seen:
                continue
            seen.add(key)
            target_guards = guards[target.index]
            for step in node.rule.steps:
                if step.template.kind is EventKind.WRITE:
                    echo_template = step.template
                    break
            else:  # pragma: no cover - write interfaces always emit W
                continue
            edges.append(
                Edge(
                    src=node.index,
                    dst=target.index,
                    template=echo_template,
                    guarded=bool(target_guards),
                    guard=" and ".join(str(g) for g in target_guards),
                    echo=True,
                )
            )
    return TriggerGraph(nodes, edges)


def build_trigger_graph(cm) -> TriggerGraph:
    """The trigger graph of a fully wired
    :class:`~repro.cm.manager.ConstraintManager`."""
    drafts: list[_NodeDraft] = []
    strategy_origin: dict[str, str] = {}
    for installed in getattr(cm, "installed", []):
        for rule in installed.strategy.rules:
            strategy_origin[rule.name] = installed.strategy.name
    for site, shell in cm.shells.items():
        for installed_rule in shell._index:
            rule = installed_rule.rule
            drafts.append(
                _NodeDraft(
                    rule=rule,
                    site=site,
                    rhs_site=installed_rule.rhs_site or site,
                    kind=(
                        "interface"
                        if rule.role is RuleRole.INTERFACE
                        else "strategy"
                    ),
                    origin=strategy_origin.get(rule.name, ""),
                )
            )
        seen: set[int] = set()
        for translator in shell.translators.values():
            if id(translator) in seen:
                continue
            seen.add(id(translator))
            for spec in translator.offered_interfaces().specs:
                drafts.append(
                    _spec_draft(spec, site, translator.source.name)
                )
    return _build(drafts)


def build_shell_graph(shell) -> TriggerGraph:
    """The trigger graph visible from a single CM-Shell.

    Covers the shell's installed rules and its local translators'
    interfaces; rules whose RHS runs at a remote site still appear (the
    remote consumers simply are not in view).
    """
    drafts: list[_NodeDraft] = []
    for installed_rule in shell._index:
        rule = installed_rule.rule
        drafts.append(
            _NodeDraft(
                rule=rule,
                site=shell.site,
                rhs_site=installed_rule.rhs_site or shell.site,
                kind=(
                    "interface"
                    if rule.role is RuleRole.INTERFACE
                    else "strategy"
                ),
            )
        )
    seen: set[int] = set()
    for translator in shell.translators.values():
        if id(translator) in seen:
            continue
        seen.add(id(translator))
        for spec in translator.offered_interfaces().specs:
            drafts.append(_spec_draft(spec, shell.site, translator.source.name))
    return _build(drafts)
