"""Dynamic happens-before race sanitizer for certified parallel phases.

The static planner (:mod:`repro.analysis.parplan`) certifies pairs of
rules as *independent* — claiming their footprints are disjoint, so a
parallel phase may evaluate them concurrently.  That claim is a theorem
about the effect summaries, and effect summaries are an abstraction of the
real programs.  This module is the abstraction's adversary: it shadows a
real run, records every store access a rule actually performs, and flags
any conflicting access pair (two rules, same item, at least one write)
between rules the plan certified independent.

**Every flag is a soundness bug in the static analysis**, never a mere
performance note: a certified pair that dynamically collides means the
effect summary under-approximated a footprint, and a parallel phase built
on it could reorder observable writes.  Flags therefore dump the flight
recorder (when one is attached) exactly like a failure notice would.

How concurrency is judged
-------------------------

The sanitizer keeps one vector clock per site, advanced on every private
write and merged across sites when a firing message arrives (the network
is per-channel FIFO, so receive-time merge over-approximates the true
sent snapshot — over-approximating happens-before can only *hide* cross
site orderings, and the flag predicate below never relies on them).

Within one site, the serial engine totally orders all accesses, so real
vector clocks alone would never report concurrency.  The sanitizer
instead judges *shadow concurrency*: two accesses by **different rules
that the plan certified independent** are treated as concurrent — the
serial order between them is exactly the artifact the certification
licenses the engine to discard.  Every ordering the planner actually
relies on (rule chaining, cross-site FIFO, barrier phases) maps to a
pair the plan keeps dependent, so no legitimate edge is ever discarded.

Conflicting pairs the plan *already* keeps serial (same phase denied, or
barrier) are counted as ``predicted_conflicts`` — evidence the static
analysis anticipated the collision, not a bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.items import DataItemRef, Value


@dataclass(frozen=True)
class RaceFlag:
    """One detected soundness violation: a certified-independent rule pair
    that dynamically collided on the same item."""

    site: str
    item: str
    rule_a: str
    rule_b: str
    #: ``"ww"`` both wrote, ``"rw"``/``"wr"`` read-vs-write.
    kind: str
    time: int
    clock: dict[str, int]

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "item": self.item,
            "rule_a": self.rule_a,
            "rule_b": self.rule_b,
            "kind": self.kind,
            "time": self.time,
            "clock": dict(self.clock),
        }


class _ReadProbe:
    """A :class:`~repro.core.conditions.LocalData` wrapper recording every
    ``read_local`` a rule's condition performs, then delegating."""

    __slots__ = ("_san", "_site", "_rule", "_store", "_now")

    def __init__(self, san: "RaceSanitizer", site, rule, store, now):
        self._san = san
        self._site = site
        self._rule = rule
        self._store = store
        self._now = now

    def read_local(self, ref: DataItemRef) -> Value:
        self._san.on_read(self._site, self._rule, ref, self._now)
        return self._store.read_local(ref)


@dataclass
class _Access:
    """Latest observed access of one rule to one item."""

    wrote: bool
    clock: dict[str, int] = field(default_factory=dict)


class RaceSanitizer:
    """Shadow a run, validating the parallel plan's independence claims.

    Attach via ``Scenario(sanitize=True)`` — the manager calls
    :meth:`register_shell` for every site, the shell calls the ``on_*``
    hooks from its condition-evaluation and RHS paths.  Zero overhead when
    not attached (shells guard every hook on ``_sanitizer is not None``).
    """

    def __init__(self, obs=None):
        self.obs = obs
        self._shells: dict[str, object] = {}
        #: site -> (plan, rule-count it was built for); invalidated when
        #: the shell's rule set grows (installs are not mid-run, but lazy
        #: construction must survive install-after-attach ordering).
        self._plans: dict[str, tuple] = {}
        self._clocks: dict[str, dict[str, int]] = {}
        #: (site, ref) -> {rule name: latest access}
        self._accesses: dict[tuple, dict[str, _Access]] = {}
        self._flag_keys: set[tuple] = set()
        self.flags: list[RaceFlag] = []
        self.predicted_conflicts = 0
        self.reads = 0
        self.writes = 0
        self.receives = 0

    # -- wiring ------------------------------------------------------------

    def register_shell(self, shell) -> None:
        """Track a shell; its site's plan is built lazily on first access."""
        self._shells[shell.site] = shell
        self._clocks.setdefault(shell.site, {shell.site: 0})
        shell.attach_sanitizer(self)

    def plan_for(self, site: str):
        """The site's current parallel plan (``None`` if no shell or the
        shell has no rules)."""
        shell = self._shells.get(site)
        if shell is None:
            return None
        generation = len(shell._index)
        cached = self._plans.get(site)
        if cached is not None and cached[1] == generation:
            return cached[0]
        if generation == 0:
            return None
        from repro.analysis.parplan import build_parallel_plan

        plan = build_parallel_plan(shell)
        self._plans[site] = (plan, generation)
        return plan

    def reader(self, site: str, rule: str, store, now) -> _ReadProbe:
        """The store wrapper shells evaluate sanitized conditions against."""
        return _ReadProbe(self, site, rule, store, now)

    # -- hooks (called by shells) -----------------------------------------

    def on_read(self, site: str, rule: str, ref: DataItemRef, now) -> None:
        self.reads += 1
        self._record(site, rule, ref, False, now)

    def on_write(self, site: str, rule: str, ref: DataItemRef, now) -> None:
        self.writes += 1
        clock = self._clocks.setdefault(site, {site: 0})
        clock[site] = clock.get(site, 0) + 1
        self._record(site, rule, ref, True, now)

    def on_receive(self, dst: str, src: str) -> None:
        """Merge the sender's clock into the receiver's (FIFO channels make
        the receive-time snapshot a sound happens-before witness)."""
        self.receives += 1
        mine = self._clocks.setdefault(dst, {dst: 0})
        for site, tick in self._clocks.get(src, {}).items():
            if tick > mine.get(site, 0):
                mine[site] = tick
        mine[dst] = mine.get(dst, 0) + 1

    # -- core --------------------------------------------------------------

    def _record(
        self, site: str, rule: str, ref: DataItemRef, wrote: bool, now
    ) -> None:
        entry = self._accesses.setdefault((site, ref), {})
        for other, access in entry.items():
            if other == rule or not (wrote or access.wrote):
                continue
            plan = self.plan_for(site)
            if plan is not None and plan.independent(rule, other):
                kind = (
                    "ww"
                    if wrote and access.wrote
                    else ("wr" if access.wrote else "rw")
                )
                self._flag(site, rule, other, ref, kind, now)
            else:
                self.predicted_conflicts += 1
        mine = entry.get(rule)
        clock = dict(self._clocks.get(site, ()))
        if mine is None:
            entry[rule] = _Access(wrote=wrote, clock=clock)
        else:
            mine.wrote = mine.wrote or wrote
            mine.clock = clock

    def _flag(
        self, site: str, rule: str, other: str, ref: DataItemRef,
        kind: str, now,
    ) -> None:
        key = (site, ref, frozenset((rule, other)))
        if key in self._flag_keys:
            return
        self._flag_keys.add(key)
        flag = RaceFlag(
            site=site,
            item=str(ref),
            rule_a=min(rule, other),
            rule_b=max(rule, other),
            kind=kind,
            time=int(now),
            clock=dict(self._clocks.get(site, ())),
        )
        self.flags.append(flag)
        obs = self.obs
        flight = getattr(obs, "flight", None) if obs is not None else None
        if flight is not None:
            flight.record(site, "race", now, flag.to_dict())
            # A flagged race is a static-analysis soundness bug: freeze the
            # surrounding context exactly like an unrecovered failure.
            flight.dump(f"race:{site}:{flag.rule_a}/{flag.rule_b}", now)

    # -- results -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True while no certified-independent pair has collided."""
        return not self.flags

    def report(self) -> dict:
        """The sanitizer verdict for run reports and equivalence harnesses."""
        return {
            "enabled": True,
            "ok": self.ok,
            "races": [flag.to_dict() for flag in self.flags],
            "race_count": len(self.flags),
            "predicted_conflicts": self.predicted_conflicts,
            "reads": self.reads,
            "writes": self.writes,
            "receives": self.receives,
            "sites": sorted(self._clocks),
        }
