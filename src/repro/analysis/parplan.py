"""Pairwise commutativity analysis and certified parallel phases.

Given one shell's installed rules and their effect summaries
(:mod:`repro.analysis.effects`), this module partitions the rule set into
**certified parallel phases**: groups whose condition+RHS evaluations may
proceed concurrently because every pair's footprints are provably
disjoint (or the overlap is provably benign — blind overwrites to
distinct items commute; overlapping writes do not, since last-writer-wins
order is observable in the trace).

Two effects escape footprint reasoning entirely and force a rule into the
serial **barrier phase**:

- *cross-site sends* — a ``FireMessage`` enqueues on a FIFO channel, so
  reordering two sends reorders the peer's executions; network order must
  follow trace order (CM704);
- *wildcard-family writes* — a write through a ``*``-family template has
  an unbounded footprint, so nothing is provably disjoint from it
  (CM702).

Chained private writes are absorbed first: a rule whose ``W`` step can
trigger another local rule executes that rule's RHS *inline* (the shell's
rule-chaining path), so the triggering rule's effective footprint is the
transitive closure over the local trigger edges — the same unification
the PR-5 trigger graph uses.

The plan certifies two executable refinements the dispatcher consumes:

- ``hoistable`` — rules whose condition reads nothing *any* local rule
  (transitively) writes: their conditions may be evaluated for a whole
  batch before any RHS commits;
- ``store_free`` — the subset whose condition reads no local data at all:
  those conditions can run on shard worker processes during the matching
  phase, off the GIL.

RHS commits always stay in batch order — certification licenses parallel
*evaluation*, never observable reordering — which is what keeps a
plan-driven execution's trace byte-identical to the serial kernel's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.effects import EffectSummary, effect_summary
from repro.analysis.graph import unify_templates
from repro.core.events import EventKind
from repro.core.terms import FAMILY_WILDCARD

#: Barrier reasons (stable strings; the report and CM-Lint reuse them).
REASON_SEND = "cross-site send"
REASON_WILDCARD_WRITE = "wildcard-family write"


@dataclass(frozen=True)
class Conflict:
    """One non-commuting rule pair and the overlapping footprint terms."""

    rule_a: str
    rule_b: str
    #: ``"ww"`` (write-write), ``"wr"``/``"rw"`` (write vs read), with
    #: ``extent=True`` terms marking enumerating-read overlaps.
    kind: str
    term_a: str
    term_b: str
    #: True when the read side of the overlap is a whole-family extent
    #: (an enumerating read) — the CM705 shape.
    enumerating: bool = False

    def to_dict(self) -> dict:
        return {
            "rule_a": self.rule_a,
            "rule_b": self.rule_b,
            "kind": self.kind,
            "term_a": self.term_a,
            "term_b": self.term_b,
            "enumerating": self.enumerating,
        }


@dataclass(frozen=True)
class Phase:
    """One group of rules whose evaluations may proceed concurrently.

    ``barrier=True`` marks the serial phase: its rules are *not* certified
    (cross-site sends, wildcard writes) and run exactly as today.
    """

    rules: tuple[str, ...]
    barrier: bool = False

    def to_dict(self) -> dict:
        return {"rules": list(self.rules), "barrier": self.barrier}


@dataclass(frozen=True)
class ParallelPlan:
    """The certified parallel-phase partition of one shell's rule set."""

    site: str
    phases: tuple[Phase, ...]
    barrier_reasons: dict[str, str] = field(default_factory=dict)
    conflicts: tuple[Conflict, ...] = ()
    hoistable: frozenset = frozenset()
    store_free: frozenset = frozenset()
    summaries: dict[str, EffectSummary] = field(default_factory=dict)
    _phase_of: dict[str, int] = field(default_factory=dict)

    @property
    def certified_pairs(self) -> int:
        """Unordered rule pairs certified independent (same open phase)."""
        return sum(
            len(phase.rules) * (len(phase.rules) - 1) // 2
            for phase in self.phases
            if not phase.barrier
        )

    def phase_of(self, rule_name: str) -> Optional[int]:
        return self._phase_of.get(rule_name)

    def independent(self, a: str, b: str) -> bool:
        """The static claim the race sanitizer checks: were ``a`` and ``b``
        certified to commute (placed in the same non-barrier phase)?"""
        if a == b:
            return False
        index = self._phase_of.get(a)
        if index is None or index != self._phase_of.get(b):
            return False
        return not self.phases[index].barrier

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "phases": [phase.to_dict() for phase in self.phases],
            "certified_pairs": self.certified_pairs,
            "barrier_reasons": dict(self.barrier_reasons),
            "conflicts": [c.to_dict() for c in self.conflicts],
            "hoistable": sorted(self.hoistable),
            "store_free": sorted(self.store_free),
            "fallback_rules": sorted(
                name
                for name, summary in self.summaries.items()
                if summary.fallback
            ),
        }


def _merge(base: EffectSummary, chained: EffectSummary) -> EffectSummary:
    """Absorb a chained rule's effects into the triggering rule's summary."""

    def union(mine, theirs):
        merged = list(mine)
        for term in theirs:
            if term not in merged:
                merged.append(term)
        return tuple(merged)

    return EffectSummary(
        rule=base.rule,
        reads=union(base.reads, chained.reads),
        writes=union(base.writes, chained.writes),
        # The chained rule's condition evaluates mid-RHS, not when the
        # triggering rule's own LHS condition does — so cond_reads (the
        # hoisting gate) stays the triggering rule's own.
        cond_reads=base.cond_reads,
        sends=base.sends or chained.sends,
        reports_failure=base.reports_failure,
        fallback=base.fallback or chained.fallback,
    )


#: One planner input: ``(rule, compiled program or None, sends)``.
PlanEntry = tuple


def shell_entries(shell) -> list[PlanEntry]:
    """The planner inputs for one wired shell's installed rules."""
    return [
        (
            inst.rule,
            inst.program,
            inst.rhs_site is not None and inst.rhs_site != shell.site,
        )
        for inst in shell._index
    ]


def effective_summaries(entries: list[PlanEntry]) -> dict[str, EffectSummary]:
    """Per-rule summaries with chained private writes absorbed to fixpoint.

    A ``W`` step whose template unifies with another local rule's LHS
    executes that rule inline (the shell's rule-chaining path), so the
    triggering rule's effective footprint includes the chained rule's.
    """
    summaries = {
        rule.name: effect_summary(rule, program=program, sends=sends)
        for rule, program, sends in entries
    }
    chains: dict[str, set[str]] = {}
    for rule, __, __sends in entries:
        targets: set[str] = set()
        for step in rule.steps:
            if step.template.kind is not EventKind.WRITE:
                continue
            for other, __p, __s in entries:
                if other.name != rule.name and unify_templates(
                    step.template, other.lhs
                ):
                    targets.add(other.name)
        if targets:
            chains[rule.name] = targets
    changed = bool(chains)
    while changed:
        changed = False
        for name, targets in chains.items():
            current = summaries[name]
            for target in targets:
                merged = _merge(current, summaries[target])
                if merged != current:
                    summaries[name] = current = merged
                    changed = True
    return summaries


def build_parallel_plan(shell) -> ParallelPlan:
    """Partition one wired shell's installed rules into certified phases."""
    return plan_from_entries(shell.site, shell_entries(shell))


def plan_from_entries(site: str, entries: list[PlanEntry]) -> ParallelPlan:
    """Partition a rule set into certified phases (shell-free form, so
    CM-Lint can plan from trigger-graph nodes without a live shell)."""
    summaries = effective_summaries(entries)
    order = [rule.name for rule, __, __s in entries]

    barrier_reasons: dict[str, str] = {}
    for name in order:
        summary = summaries[name]
        if summary.sends:
            barrier_reasons[name] = REASON_SEND
        elif any(t.family == FAMILY_WILDCARD for t in summary.writes):
            barrier_reasons[name] = REASON_WILDCARD_WRITE

    conflicts: list[Conflict] = []
    open_rules = [name for name in order if name not in barrier_reasons]
    conflict_of: dict[tuple[str, str], Conflict] = {}
    for i, a in enumerate(open_rules):
        for b in open_rules[i + 1 :]:
            found = summaries[a].conflicts(summaries[b])
            if found is None:
                continue
            kind, term_a, term_b = found
            read_side = term_b if kind == "wr" else term_a
            conflict = Conflict(
                rule_a=a,
                rule_b=b,
                kind=kind,
                term_a=str(term_a),
                term_b=str(term_b),
                enumerating=kind in ("wr", "rw") and read_side.extent,
            )
            conflicts.append(conflict)
            conflict_of[(a, b)] = conflict

    # Greedy interval coloring in installation order: first phase whose
    # members all commute with the candidate.  Deterministic, and optimal
    # enough — phase count is bounded by the conflict graph's clique size.
    phases: list[list[str]] = []
    phase_of: dict[str, int] = {}
    for name in open_rules:
        placed = False
        for index, members in enumerate(phases):
            if all(
                (m, name) not in conflict_of and (name, m) not in conflict_of
                for m in members
            ):
                members.append(name)
                phase_of[name] = index
                placed = True
                break
        if not placed:
            phase_of[name] = len(phases)
            phases.append([name])

    built = [Phase(rules=tuple(members)) for members in phases]
    if barrier_reasons:
        barrier_index = len(built)
        built.append(
            Phase(rules=tuple(barrier_reasons), barrier=True)
        )
        for name in barrier_reasons:
            phase_of[name] = barrier_index

    # Hoisting gates: a condition is hoistable when nothing any local rule
    # writes (transitively) overlaps what it reads — including the rule's
    # own writes, since an earlier firing of the same rule in the batch
    # writes before a later firing's condition would have run.
    all_writes = [
        term for summary in summaries.values() for term in summary.writes
    ]
    hoistable: set[str] = set()
    store_free: set[str] = set()
    for name in order:
        cond_reads = summaries[name].cond_reads
        if not cond_reads:
            store_free.add(name)
            hoistable.add(name)
            continue
        if not any(
            read.overlaps(write) for read in cond_reads for write in all_writes
        ):
            hoistable.add(name)

    return ParallelPlan(
        site=site,
        phases=tuple(built),
        barrier_reasons=barrier_reasons,
        conflicts=tuple(conflicts),
        hoistable=frozenset(hoistable),
        store_free=frozenset(store_free),
        summaries=summaries,
        _phase_of=phase_of,
    )


__all__ = [
    "Conflict",
    "ParallelPlan",
    "Phase",
    "REASON_SEND",
    "REASON_WILDCARD_WRITE",
    "build_parallel_plan",
    "effective_summaries",
    "plan_from_entries",
    "shell_entries",
]
