"""Text and JSON reporters for CM-Lint results.

The CLI lints a set of named targets (experiments and example scripts) and
renders either a human-readable digest or a JSON document; CI runs the JSON
form, fails on any error-severity diagnostic, and archives the report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.analysis.diagnostics import LintReport


def merge_reports(reports: list[LintReport]) -> LintReport:
    """Merge per-scenario reports for one target, deduplicating findings.

    A target that wires several scenarios (e.g. an experiment sweeping
    strategy kinds) repeats most of its rule set; identical findings are
    collapsed so the report reads per-configuration, not per-build.
    """
    merged = LintReport()
    seen: set[tuple] = set()
    for report in reports:
        for finding in report.diagnostics:
            key = (finding.code, finding.rule, finding.site, finding.message)
            if key in seen:
                continue
            seen.add(key)
            merged.diagnostics.append(finding)
        for finding in report.suppressed:
            key = (finding.code, finding.rule, finding.site, finding.message)
            if key in seen:
                continue
            seen.add(key)
            merged.suppressed.append(finding)
    merged.diagnostics.sort(key=lambda d: (-d.severity.rank, d.code))
    return merged


def render_text(results: dict[str, LintReport]) -> str:
    """Human-readable multi-target digest."""
    lines = []
    total_errors = 0
    total_warnings = 0
    for target, report in results.items():
        counts = report.counts()
        total_errors += counts["error"]
        total_warnings += counts["warning"]
        status = "ok" if report.ok else "FAIL"
        lines.append(f"== lint {target}: {status} ==")
        if report.diagnostics or report.suppressed:
            for line in report.render().splitlines()[1:]:
                lines.append(line)
        else:
            lines.append("  clean")
    lines.append(
        f"lint summary: {len(results)} target(s), {total_errors} error(s), "
        f"{total_warnings} warning(s)"
    )
    return "\n".join(lines)


def render_explain(code: str, results: dict[str, LintReport]) -> str:
    """Deep-dive digest for one diagnostic code (CLI ``--explain``).

    Prints the registry entry for ``code`` followed by every matching
    finding across the linted targets — for the CM7xx commutativity codes
    that is the offending rule pair and the overlapping footprint term the
    static analysis could not prove disjoint (carried in the hint).
    Suppressed findings are included (marked), since ``--explain`` is a
    diagnosis tool, not a gate.
    """
    from repro.analysis.diagnostics import CODES

    code = code.upper()
    registered = CODES.get(code)
    if registered is None:
        known = ", ".join(sorted(CODES))
        return f"unknown diagnostic code {code!r} (known: {known})"
    severity, meaning = registered
    lines = [f"{code} ({severity.value}): {meaning}", ""]
    hits = 0
    for target, report in results.items():
        findings = [
            (finding, False)
            for finding in report.diagnostics
            if finding.code == code
        ] + [
            (finding, True)
            for finding in report.suppressed
            if finding.code == code
        ]
        if not findings:
            continue
        lines.append(f"== {target} ==")
        for finding, suppressed in findings:
            hits += 1
            mark = " (suppressed)" if suppressed else ""
            where = []
            if finding.site is not None:
                where.append(f"site {finding.site}")
            if finding.rule is not None:
                where.append(f"rule {finding.rule}")
            location = f" [{', '.join(where)}]" if where else ""
            lines.append(f"  finding{location}{mark}:")
            lines.append(f"    {finding.message}")
            if finding.hint:
                lines.append(f"    -> {finding.hint}")
        lines.append("")
    if hits == 0:
        lines.append(
            f"no {code} findings across {len(results)} linted target(s)"
        )
    else:
        lines.append(
            f"{hits} {code} finding(s) across {len(results)} linted "
            f"target(s)"
        )
    return "\n".join(lines)


def results_to_dict(results: dict[str, LintReport]) -> dict:
    """JSON-ready aggregate across targets."""
    return {
        "ok": all(report.ok for report in results.values()),
        "targets": {
            target: report.to_dict() for target, report in results.items()
        },
    }


def write_json(results: dict[str, LintReport], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(results_to_dict(results), indent=2) + "\n",
        encoding="utf-8",
    )
    return path
