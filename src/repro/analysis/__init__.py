"""CM-Lint: static analysis of constraint-management configurations.

The paper's toolkit assumes administrators pick interface/strategy pairs
from a library of proven combinations; this package is the mechanized form
of that assumption.  It builds a static **trigger graph** over a wired
(but not yet run) :class:`~repro.cm.manager.ConstraintManager` — nodes are
installed strategy rules and offered interface rules, edges are template
unifications — and runs a battery of checks producing structured
:class:`Diagnostic` findings with stable ``CMxxx`` codes.

Entry points:

- :func:`lint_manager` / :func:`lint_shell` — analyze a wired manager or a
  single shell;
- ``python -m repro --lint <target>|--all`` — the CLI, over every
  experiment and example script;
- ``CMShell.install(..., strict=True)`` — raise on error findings at
  install time.
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    LintReport,
    Severity,
    describe_codes,
)
from repro.analysis.effects import (
    EffectSummary,
    FootTerm,
    effect_summary,
    shell_effects,
)
from repro.analysis.graph import (
    Edge,
    Node,
    TriggerGraph,
    build_shell_graph,
    build_trigger_graph,
    unify_templates,
)
from repro.analysis.lint import (
    LintContext,
    lint_manager,
    lint_shell,
    manager_context,
    run_checks,
)
from repro.analysis.parplan import (
    ParallelPlan,
    Phase,
    build_parallel_plan,
    plan_from_entries,
)
from repro.analysis.sanitizer import RaceSanitizer

__all__ = [
    "CODES",
    "Diagnostic",
    "Edge",
    "EffectSummary",
    "FootTerm",
    "LintContext",
    "LintReport",
    "Node",
    "ParallelPlan",
    "Phase",
    "RaceSanitizer",
    "Severity",
    "TriggerGraph",
    "build_parallel_plan",
    "build_shell_graph",
    "build_trigger_graph",
    "describe_codes",
    "effect_summary",
    "lint_manager",
    "lint_shell",
    "manager_context",
    "plan_from_entries",
    "run_checks",
    "shell_effects",
    "unify_templates",
]
