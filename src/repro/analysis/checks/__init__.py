"""The pluggable check battery CM-Lint runs over a trigger graph.

Each check is a callable ``(ctx, report) -> None`` taking the
:class:`~repro.analysis.lint.LintContext` and appending
:class:`~repro.analysis.diagnostics.Diagnostic` findings to the report.
``ALL_CHECKS`` is the default battery, in the order the families are
numbered; callers may run a subset (strict installation mode skips the
checks that need manager-wide context).
"""

from __future__ import annotations

from repro.analysis.checks.commutativity import check_commutativity
from repro.analysis.checks.conflicts import check_write_conflicts
from repro.analysis.checks.cycles import check_cycles
from repro.analysis.checks.dead import check_dead_rules
from repro.analysis.checks.feasibility import check_feasibility
from repro.analysis.checks.interface import check_interface_compliance
from repro.analysis.checks.variables import check_variable_safety

#: The default battery: (family name, check callable).
ALL_CHECKS = [
    ("interface-compliance", check_interface_compliance),
    ("variable-safety", check_variable_safety),
    ("cycles", check_cycles),
    ("dead-rules", check_dead_rules),
    ("write-conflicts", check_write_conflicts),
    ("guarantee-feasibility", check_feasibility),
    ("commutativity", check_commutativity),
]

__all__ = [
    "ALL_CHECKS",
    "check_interface_compliance",
    "check_variable_safety",
    "check_cycles",
    "check_dead_rules",
    "check_write_conflicts",
    "check_feasibility",
    "check_commutativity",
]
