"""Interface compliance (CM1xx): every operation a strategy rule performs
on a source item must be granted by an installed interface rule.

This is the static form of the paper's configuration-time interface survey:
a write request needs a write interface, a read request a read interface, a
notification-triggered LHS some notify-flavoured interface, and every
referenced family must have a registered source (or be shell-private) at
all.  The runtime performs some of these checks lazily (a missing
translator surfaces as a ``ConfigurationError`` on first dispatch); the
lint check — and the eager validation it backs — moves them to install
time.
"""

from __future__ import annotations

from repro.analysis.diagnostics import diagnostic
from repro.analysis.graph import Node
from repro.core.events import EventKind
from repro.core.interfaces import InterfaceKind
from repro.core.terms import FAMILY_WILDCARD

CHECK = "interface-compliance"


def _flag_unknown(ctx, report, node: Node, family: str, what: str) -> None:
    report.add(
        diagnostic(
            "CM104",
            f"rule {node.rule.name!r} {what} family {family!r}, which no "
            f"registered source provides",
            site=node.site,
            rule=node.rule.name,
            check=CHECK,
            hint=(
                "register the source (cm.add_source / site().source()) "
                "before installing the strategy, or use a W event for "
                "shell-private items"
            ),
        )
    )


def check_interface_compliance(ctx, report) -> None:
    interfaces = ctx.interfaces
    for node in ctx.graph.strategy_nodes():
        rule = node.rule
        lhs = rule.lhs
        if lhs.kind is EventKind.NOTIFY:
            family = lhs.item_family
            if (
                family is not None
                and family != FAMILY_WILDCARD
                and not ctx.is_private(family)
            ):
                if not ctx.family_known(family):
                    _flag_unknown(ctx, report, node, family, "triggers on")
                elif not any(
                    interfaces.has(family, k)
                    for k in (
                        InterfaceKind.NOTIFY,
                        InterfaceKind.CONDITIONAL_NOTIFY,
                        InterfaceKind.PERIODIC_NOTIFY,
                    )
                ):
                    report.add(
                        diagnostic(
                            "CM103",
                            f"rule {rule.name!r} triggers on N({family}) "
                            f"but {family!r} offers no notify interface; "
                            f"the rule will never fire",
                            site=node.site,
                            rule=rule.name,
                            check=CHECK,
                            hint=(
                                f"offer a notify interface for {family!r} "
                                f"in its CM-RID, or use a polling strategy"
                            ),
                        )
                    )
        if ctx.scope == "shell" and node.rhs_site != node.site:
            # Single-shell view: the RHS executes at a remote site whose
            # translators and interfaces are out of scope here.
            continue
        for step in rule.steps:
            template = step.template
            family = template.item_family
            if family is None or family == FAMILY_WILDCARD:
                continue
            kind = template.kind
            if kind is EventKind.WRITE_REQUEST:
                if not ctx.family_known(family) or ctx.is_private(family):
                    _flag_unknown(
                        ctx, report, node, family, "requests a write on"
                    )
                elif not interfaces.has(family, InterfaceKind.WRITE):
                    report.add(
                        diagnostic(
                            "CM101",
                            f"rule {rule.name!r} requests WR({family}) but "
                            f"{family!r} offers no write interface",
                            site=node.rhs_site,
                            rule=rule.name,
                            check=CHECK,
                            hint=(
                                f"offer a write interface for {family!r} "
                                f"in its CM-RID"
                            ),
                        )
                    )
            elif kind is EventKind.READ_REQUEST:
                if not ctx.family_known(family) or ctx.is_private(family):
                    _flag_unknown(
                        ctx, report, node, family, "requests a read on"
                    )
                elif not interfaces.has(family, InterfaceKind.READ):
                    report.add(
                        diagnostic(
                            "CM102",
                            f"rule {rule.name!r} requests RR({family}) but "
                            f"{family!r} offers no read interface",
                            site=node.rhs_site,
                            rule=rule.name,
                            check=CHECK,
                            hint=(
                                f"offer a read interface for {family!r} "
                                f"in its CM-RID"
                            ),
                        )
                    )
            elif kind is EventKind.WRITE:
                if ctx.has_translator(family, node.rhs_site):
                    report.add(
                        diagnostic(
                            "CM105",
                            f"rule {rule.name!r} writes W({family}) "
                            f"directly, but {family!r} is a database "
                            f"family at site {node.rhs_site!r}",
                            site=node.rhs_site,
                            rule=rule.name,
                            check=CHECK,
                            hint="emit a WR (write request) instead",
                        )
                    )
