"""Guarantee feasibility (CM6xx): can the installed rules actually meet a
metric guarantee's κ?

For each metric guarantee over families X → Y (``follows``/``leads`` with a
``within`` bound), the check sums worst-case rule δs and channel latencies
along trigger-graph paths from the events that *carry an X change* to the
committed writes of Y:

- a notify interface for X starts a path at cost 0 (the change is pushed);
- a periodic-notify interface, or a periodic strategy rule that reaches a
  read interface for X, starts a path at cost *period* (worst case: the
  change lands right after a poll);
- every rule node on a path contributes its δ, plus the worst-case latency
  of the network hop between its LHS site and its RHS site;
- the path ends when a write interface (or private write) commits Y.

The minimum over all paths is the best bound the configuration can
guarantee.  The estimate is **conservative**: templates are unified, not
executed, so the path set over-approximates runtime behaviour, and every
hop is charged its worst case — a κ the check accepts can still be missed
under failures, but a κ it rejects (CM601) is unachievable even on a
perfect run.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Optional

from repro.analysis.diagnostics import diagnostic
from repro.analysis.graph import Edge, Node, TriggerGraph
from repro.core.events import EventKind
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import Ticks, to_seconds

CHECK = "guarantee-feasibility"

_INF = float("inf")


def _worst_case_latency(network, src: str, dst: str) -> Optional[Ticks]:
    """Worst-case one-way latency for a channel; ``None`` when unbounded
    (or when no network is in scope)."""
    if src == dst:
        return 0
    if network is None:
        return None
    model = network._channel_latency.get((src, dst), network.default_latency)
    return model.worst_case()


def _node_cost(node: Node, network) -> tuple[float, bool]:
    """(worst-case ticks this node adds, hit-an-unbounded-channel flag)."""
    cost: float = node.rule.delay
    if node.site != node.rhs_site:
        hop = _worst_case_latency(network, node.site, node.rhs_site)
        if hop is None:
            return _INF, True
        cost += hop
    return cost, False


def _writers_of(graph: TriggerGraph, family: str) -> list[Node]:
    """Nodes whose execution commits a W on ``family``."""
    writers = []
    for node in graph.nodes:
        if (
            node.kind == "interface"
            and node.iface_kind is InterfaceKind.WRITE
            and node.family == family
        ):
            writers.append(node)
        elif node.kind == "strategy" and any(
            step.template.kind is EventKind.WRITE
            and step.template.item_family == family
            for step in node.rule.steps
        ):
            writers.append(node)
    return writers


def _distances_to(
    graph: TriggerGraph,
    targets: list[Node],
    network,
    keep: Callable[[Edge], bool],
) -> tuple[dict[int, float], bool]:
    """Worst-case cost from each node's LHS firing to a committed target
    write, minimized over paths (Dijkstra on the reversed graph).

    Returns the distance map and whether any path was cut by an unbounded
    channel.
    """
    dist: dict[int, float] = {}
    unbounded_seen = False
    heap: list[tuple[float, int]] = []
    for target in targets:
        cost, unbounded = _node_cost(target, network)
        unbounded_seen |= unbounded
        if cost < dist.get(target.index, _INF):
            dist[target.index] = cost
            heapq.heappush(heap, (cost, target.index))
    while heap:
        d, index = heapq.heappop(heap)
        if d > dist.get(index, _INF):
            continue
        for edge in graph.in_edges(index):
            if edge.echo or not keep(edge):
                continue
            pred = graph.nodes[edge.src]
            cost, unbounded = _node_cost(pred, network)
            unbounded_seen |= unbounded
            candidate = d + cost
            if candidate < dist.get(pred.index, _INF):
                dist[pred.index] = candidate
                heapq.heappush(heap, (candidate, pred.index))
    return dist, unbounded_seen


def _reaches(graph: TriggerGraph, start: int, goal_indices: set[int]) -> bool:
    if start in goal_indices:
        return True
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for edge in graph.out_edges(node):
            if edge.echo or edge.dst in seen:
                continue
            if edge.dst in goal_indices:
                return True
            seen.add(edge.dst)
            queue.append(edge.dst)
    return False


def _sources_for(graph: TriggerGraph, x_family: str) -> list[tuple[Node, Ticks, bool]]:
    """(node, extra worst-case staleness, source-is-guarded) triples for
    the nodes where an X change enters the rule system."""
    read_indices = {
        node.index
        for node in graph.nodes
        if node.kind == "interface"
        and node.iface_kind is InterfaceKind.READ
        and node.family == x_family
    }
    sources: list[tuple[Node, Ticks, bool]] = []
    for node in graph.nodes:
        if node.kind == "interface" and node.family == x_family:
            if node.iface_kind in (
                InterfaceKind.NOTIFY,
                InterfaceKind.CONDITIONAL_NOTIFY,
            ):
                sources.append(
                    (
                        node,
                        0,
                        node.iface_kind is InterfaceKind.CONDITIONAL_NOTIFY,
                    )
                )
            elif node.iface_kind is InterfaceKind.PERIODIC_NOTIFY:
                sources.append((node, node.period or 0, False))
        elif (
            node.kind == "strategy"
            and node.rule.lhs.kind is EventKind.SPONTANEOUS_WRITE
            and node.rule.lhs.item_family == x_family
        ):
            sources.append((node, 0, False))
        elif (
            node.kind == "strategy"
            and node.period is not None
            and read_indices
            and _reaches(graph, node.index, read_indices)
        ):
            # A poll loop: the X value is observed at most ``period`` after
            # it was written, then flows along the read-response chain.
            sources.append((node, node.period, False))
    return sources


def check_feasibility(ctx, report) -> None:
    graph: TriggerGraph = ctx.graph
    network = ctx.network
    for guarantee in ctx.guarantees:
        x_family = getattr(guarantee, "x_family", None)
        y_family = getattr(guarantee, "y_family", None)
        within = getattr(guarantee, "within", None)
        if x_family is None or y_family is None or within is None:
            continue
        targets = _writers_of(graph, y_family)
        sources = _sources_for(graph, x_family)
        dist_all, cut_by_unbounded = _distances_to(
            graph, targets, network, keep=lambda e: True
        )
        best = _INF
        for node, extra, __ in sources:
            d = dist_all.get(node.index, _INF)
            if d + extra < best:
                best = d + extra
        if not targets or not sources or best == _INF:
            if cut_by_unbounded and sources and targets:
                report.add(
                    diagnostic(
                        "CM604",
                        f"guarantee {guarantee.name!r}: every delivery "
                        f"path crosses a channel with an unbounded "
                        f"latency model; feasibility cannot be proven "
                        f"statically",
                        check=CHECK,
                        hint=(
                            "use FixedLatency or UniformLatency on the "
                            "path's channels to make the bound checkable"
                        ),
                    )
                )
                continue
            report.add(
                diagnostic(
                    "CM602",
                    f"guarantee {guarantee.name!r}: no trigger-graph path "
                    f"carries {x_family!r} changes to {y_family!r} writes",
                    check=CHECK,
                    hint=(
                        "check that the strategy's rules are installed "
                        "and the needed interfaces are offered"
                    ),
                )
            )
            continue
        if within < best:
            report.add(
                diagnostic(
                    "CM601",
                    f"guarantee {guarantee.name!r} promises "
                    f"κ={to_seconds(within):g}s, but the best achievable "
                    f"worst-case bound along any delivery path is "
                    f"{to_seconds(int(best)):g}s",
                    check=CHECK,
                    hint=(
                        f"raise κ to at least {to_seconds(int(best)):g}s, "
                        f"or tighten the interface bounds / channel "
                        f"latencies on the path"
                    ),
                )
            )
            continue
        dist_unguarded, __ = _distances_to(
            graph, targets, network, keep=lambda e: not e.guarded
        )
        unguarded_best = _INF
        for node, extra, source_guarded in sources:
            if source_guarded:
                continue
            d = dist_unguarded.get(node.index, _INF)
            if d + extra < unguarded_best:
                unguarded_best = d + extra
        if unguarded_best == _INF:
            report.add(
                diagnostic(
                    "CM603",
                    f"guarantee {guarantee.name!r}: every delivery path "
                    f"within κ is conditionally guarded; the bound holds "
                    f"only when the guards fire",
                    check=CHECK,
                )
            )
