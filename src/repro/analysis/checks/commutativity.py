"""Commutativity & parallel-phase certification diagnostics (CM7xx).

The static planner (:mod:`repro.analysis.parplan`) partitions each site's
strategy rules into certified parallel phases; this check surfaces what
*limits* that certification: non-commuting pairs that share a dispatch
shard (CM701), unbounded wildcard-write footprints (CM702), AST-fallback
effect summaries (CM703), send-forced barriers (CM704), and
enumerating-read/write overlaps (CM705).

All five codes describe parallel certification, so the check is silent
when the scenario does not shard dispatch (``dispatch_shards <= 1``):
serial configurations have nothing to certify and their lint snapshots
stay unchanged.
"""

from __future__ import annotations

from repro.analysis.diagnostics import diagnostic
from repro.analysis.parplan import (
    REASON_SEND,
    REASON_WILDCARD_WRITE,
    plan_from_entries,
)
from repro.cm.store import shard_of
from repro.core.compile import compile_rule
from repro.core.errors import CompileError

CHECK = "commutativity"


def _dispatch_shard(rule, shards: int) -> int:
    """The shard a rule's LHS events land on — the family hash for keyed
    templates, the barrier shard 0 for catch-all and item-less ones."""
    family = rule.lhs.dispatch_family
    if family is None:
        return 0
    return shard_of(family, shards)


def _site_plans(ctx):
    """Per site: ``(plan, rules_by_name)`` built from the trigger graph's
    strategy nodes (no live shell needed)."""
    by_site: dict[str, list] = {}
    for node in ctx.graph.strategy_nodes():
        try:
            program = compile_rule(node.rule)
        except CompileError:
            program = None
        by_site.setdefault(node.site, []).append(
            (node.rule, program, node.rhs_site != node.site)
        )
    return {
        site: (
            plan_from_entries(site, entries),
            {rule.name: rule for rule, __, __s in entries},
        )
        for site, entries in by_site.items()
    }


def check_commutativity(ctx, report) -> None:
    shards = getattr(ctx, "dispatch_shards", 1)
    if shards <= 1:
        return
    for site, (plan, rules) in sorted(_site_plans(ctx).items()):
        for name, reason in sorted(plan.barrier_reasons.items()):
            if reason == REASON_SEND:
                report.add(
                    diagnostic(
                        "CM704",
                        f"rule {name!r} fires across the network; its "
                        f"phase is the serial barrier (FIFO send order "
                        f"must follow trace order)",
                        site=site,
                        rule=name,
                        check=CHECK,
                        hint="keep send-heavy rules out of hot phases, or "
                        "move the RHS to the LHS site",
                    )
                )
            elif reason == REASON_WILDCARD_WRITE:
                report.add(
                    diagnostic(
                        "CM702",
                        f"rule {name!r} writes through a family-wildcard "
                        f"template; its footprint cannot be bounded, so "
                        f"no pair containing it is certifiable",
                        site=site,
                        rule=name,
                        check=CHECK,
                        hint="name the written family explicitly to bound "
                        "the footprint",
                    )
                )
        for name, summary in sorted(plan.summaries.items()):
            if summary.fallback:
                report.add(
                    diagnostic(
                        "CM703",
                        f"rule {name!r} has no compiled program; its "
                        f"effect summary is the AST fallback (sound but "
                        f"possibly wider)",
                        site=site,
                        rule=name,
                        check=CHECK,
                    )
                )
        for conflict in plan.conflicts:
            overlap = f"{conflict.term_a} vs {conflict.term_b}"
            if conflict.enumerating:
                report.add(
                    diagnostic(
                        "CM705",
                        f"rules {conflict.rule_a!r} and "
                        f"{conflict.rule_b!r} cannot be certified: an "
                        f"enumerating read spans a family the other "
                        f"writes ({overlap})",
                        site=site,
                        rule=conflict.rule_a,
                        check=CHECK,
                        hint=f"overlapping footprint: {overlap}",
                    )
                )
                continue
            shard_a = _dispatch_shard(rules[conflict.rule_a], shards)
            shard_b = _dispatch_shard(rules[conflict.rule_b], shards)
            if shard_a != shard_b:
                continue
            report.add(
                diagnostic(
                    "CM701",
                    f"rules {conflict.rule_a!r} and {conflict.rule_b!r} "
                    f"share dispatch shard {shard_a} but do not commute "
                    f"({conflict.kind} overlap on {overlap}); their "
                    f"evaluations stay serial",
                    site=site,
                    rule=conflict.rule_a,
                    check=CHECK,
                    hint=f"overlapping footprint: {overlap}",
                )
            )
