"""Dead & shadowed rules (CM4xx).

A strategy rule is *dead* when no chain of events can ever reach its LHS:
the trigger graph has no path to it from any **root** — an event source
the outside world or the scheduler drives directly:

- periodic rules and periodic-notify interfaces (the shell's timers);
- spontaneous-write-triggered interfaces (notify / conditional notify) for
  families whose source has *not* promised no-spontaneous-writes — the
  applications' own updates.

A rule is *shadowed* when another rule at the same shell matches a
superset of its events with no extra guard and the identical right-hand
side: dispatch fires **all** matching rules, so both fire and the RHS is
duplicated (double write requests are the usual symptom).
"""

from __future__ import annotations

from collections import deque

from repro.analysis.diagnostics import diagnostic
from repro.analysis.graph import Node, TriggerGraph, guard_conjuncts
from repro.core.events import EventKind
from repro.core.interfaces import InterfaceKind
from repro.core.templates import Template
from repro.core.terms import FAMILY_WILDCARD, Const, Term

CHECK = "dead-rules"

#: Interface kinds that promise the family is never spontaneously written.
_QUIET_KINDS = (InterfaceKind.NO_SPONTANEOUS_WRITE,)


def graph_roots(graph: TriggerGraph, interfaces) -> list[Node]:
    """Nodes the outside world (applications, timers) drives directly."""
    roots: list[Node] = []
    for node in graph.nodes:
        lhs = node.rule.lhs
        if lhs.kind is EventKind.PERIODIC:
            roots.append(node)
            continue
        if lhs.kind is EventKind.SPONTANEOUS_WRITE:
            family = lhs.item_family
            quiet = (
                family is not None
                and family != FAMILY_WILDCARD
                and any(interfaces.has(family, k) for k in _QUIET_KINDS)
            )
            if not quiet:
                roots.append(node)
    return roots


def reachable_from_roots(graph: TriggerGraph, interfaces) -> set[int]:
    """Indices reachable from any root over non-echo edges."""
    seen: set[int] = set()
    queue = deque(n.index for n in graph_roots(graph, interfaces))
    seen.update(queue)
    while queue:
        node = queue.popleft()
        for edge in graph.out_edges(node):
            if edge.echo or edge.dst in seen:
                continue
            seen.add(edge.dst)
            queue.append(edge.dst)
    return seen


def _term_subsumes(general: Term, specific: Term) -> bool:
    if isinstance(general, Const):
        return isinstance(specific, Const) and general.value == specific.value
    return True  # variables and wildcards accept anything


def template_subsumes(general: Template, specific: Template) -> bool:
    """Every ground event matching ``specific`` also matches ``general``."""
    if general.kind is not specific.kind:
        return False
    if general.kind is EventKind.FALSE:
        return False
    if (general.item is None) != (specific.item is None):
        return False
    if general.item is not None and specific.item is not None:
        if (
            general.item.name != specific.item.name
            and general.item.name != FAMILY_WILDCARD
        ):
            return False
        if len(general.item.args) != len(specific.item.args):
            return False
        for g, s in zip(general.item.args, specific.item.args):
            if not _term_subsumes(g, s):
                return False
    if len(general.values) != len(specific.values):
        return False
    for g, s in zip(general.values, specific.values):
        if not _term_subsumes(g, s):
            return False
    return True


def check_dead_rules(ctx, report) -> None:
    graph: TriggerGraph = ctx.graph
    reachable = reachable_from_roots(graph, ctx.interfaces)
    for node in graph.strategy_nodes():
        if node.index in reachable:
            continue
        report.add(
            diagnostic(
                "CM401",
                f"rule {node.rule.name!r} (LHS {node.rule.lhs}) is "
                f"unreachable: no source event or periodic timer can ever "
                f"trigger it",
                site=node.site,
                rule=node.rule.name,
                check=CHECK,
                hint=(
                    "check that the triggering interface is offered and "
                    "that an upstream rule produces the LHS event"
                ),
            )
        )

    # Shadowing: group strategy nodes by site + LHS kind + LHS family so
    # the pairwise scan only touches plausibly-overlapping rules (a concrete
    # family can only be subsumed by the same family or the wildcard, so
    # wildcard-LHS rules are cross-checked against every family's bucket).
    groups: dict[tuple[str, EventKind, object], list[Node]] = {}
    wildcards: dict[tuple[str, EventKind], list[Node]] = {}
    for node in graph.strategy_nodes():
        family = node.rule.lhs.item_family
        if family == FAMILY_WILDCARD:
            wildcards.setdefault(
                (node.site, node.rule.lhs.kind), []
            ).append(node)
        groups.setdefault(
            (node.site, node.rule.lhs.kind, family), []
        ).append(node)
    for (site, kind, family), members in groups.items():
        generals = list(members)
        if family != FAMILY_WILDCARD:
            generals += wildcards.get((site, kind), [])
        if len(generals) < 2:
            continue
        for specific in members:
            for general in generals:
                if _shadows(general, specific):
                    report.add(
                        diagnostic(
                            "CM402",
                            f"rule {specific.rule.name!r} is shadowed by "
                            f"{general.rule.name!r}: the same events match "
                            f"both and their right-hand sides are "
                            f"identical, so every trigger fires the RHS "
                            f"twice",
                            site=specific.site,
                            rule=specific.rule.name,
                            check=CHECK,
                            hint="remove one of the duplicated rules",
                        )
                    )
                    break  # one shadow finding per rule is enough


def _shadows(general: Node, specific: Node) -> bool:
    """True when ``general`` makes ``specific`` fire its RHS twice."""
    return (
        general is not specific
        and general.rule.name != specific.rule.name
        and template_subsumes(general.rule.lhs, specific.rule.lhs)
        and not guard_conjuncts(general.rule)  # general may not fire
        and general.rule.steps == specific.rule.steps
        and general.rhs_site == specific.rhs_site
    )
