"""Cycle & echo detection (CM3xx) over the trigger graph.

A cycle in the trigger graph means a set of rules that can re-trigger each
other.  Three classes, in decreasing severity:

- **unguarded hard cycle** (CM301): every edge of some cycle is
  unconditional and non-echo — once entered, the rules fire forever (the
  runtime's chain-depth limit will eventually kill the run).
- **echo cycle** (CM302): the cycle closes only through a write→notify
  *echo* edge — a committed CM write re-entering as a spontaneous-write
  notification.  Translators suppress their own writes, so this is benign
  in a correct deployment, but it is exactly the failure mode the echo
  ablation demonstrates: one leaky translator and the loop is live.
- **guarded cycle** (CM303): a condition guards some edge of every cycle;
  the loop terminates as long as the guard converges (e.g. cached
  propagation's ``cache(n) != b`` stops re-propagating once the cache
  agrees).  Reported as info, showing the guarding condition.

Self-loops are cycles of length one and classify identically.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.diagnostics import diagnostic
from repro.analysis.graph import Edge, TriggerGraph

CHECK = "cycles"


def _sccs(
    node_count: int, edges_of: Callable[[int], list[Edge]]
) -> list[list[int]]:
    """Tarjan's strongly connected components, iteratively.

    Returns only the non-trivial SCCs: size > 1, or a single node with a
    self-edge.
    """
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    result: list[list[int]] = []
    counter = 0

    for root in range(node_count):
        if root in index_of:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            out = edges_of(node)
            while edge_index < len(out):
                succ = out[edge_index].dst
                edge_index += 1
                if succ not in index_of:
                    work[-1] = (node, edge_index)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or any(
                    e.dst == node for e in edges_of(node)
                ):
                    result.append(sorted(component))
            if work:
                parent, __ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


def _cyclic_within(
    members: set[int],
    graph: TriggerGraph,
    keep: Callable[[Edge], bool],
) -> bool:
    """Whether the member-induced subgraph (edges passing ``keep``) has a
    cycle."""

    def edges_of(node: int) -> list[Edge]:
        return [
            e
            for e in graph.out_edges(node)
            if e.dst in members and keep(e)
        ]

    # Reuse Tarjan over the full index space; nodes outside ``members``
    # simply have no edges and form trivial components.
    return bool(_sccs(len(graph.nodes), edges_of))


def _describe(graph: TriggerGraph, members: list[int]) -> str:
    names = [graph.nodes[m].name for m in members]
    sites = sorted({graph.nodes[m].site for m in members})
    return (
        f"{' -> '.join(names)} (site{'s' if len(sites) > 1 else ''} "
        f"{', '.join(sites)})"
    )


def check_cycles(ctx, report) -> None:
    graph: TriggerGraph = ctx.graph
    for members in _sccs(len(graph.nodes), graph.out_edges):
        member_set = set(members)
        anchor = graph.nodes[members[0]]
        internal = [
            e
            for m in members
            for e in graph.out_edges(m)
            if e.dst in member_set
        ]
        if _cyclic_within(
            member_set, graph, lambda e: not e.guarded and not e.echo
        ):
            report.add(
                diagnostic(
                    "CM301",
                    f"unguarded trigger cycle: "
                    f"{_describe(graph, members)}; these rules re-trigger "
                    f"each other unconditionally",
                    site=anchor.site,
                    rule=anchor.name,
                    check=CHECK,
                    hint=(
                        "guard one edge of the cycle with a convergence "
                        "condition (e.g. only propagate when the value "
                        "actually changed)"
                    ),
                )
            )
        elif _cyclic_within(member_set, graph, lambda e: not e.echo):
            guards = sorted(
                {e.guard for e in internal if e.guard and not e.echo}
            )
            report.add(
                diagnostic(
                    "CM303",
                    f"guarded trigger cycle: {_describe(graph, members)}; "
                    f"benign while the guard(s) "
                    f"{guards} converge",
                    site=anchor.site,
                    rule=anchor.name,
                    check=CHECK,
                )
            )
        else:
            echo_families = sorted(
                {
                    graph.nodes[e.src].family or "?"
                    for e in internal
                    if e.echo
                }
            )
            report.add(
                diagnostic(
                    "CM302",
                    f"echo-closed trigger cycle: "
                    f"{_describe(graph, members)}; live only if a "
                    f"translator leaks its own writes on "
                    f"{', '.join(echo_families)} back as notifications",
                    site=anchor.site,
                    rule=anchor.name,
                    check=CHECK,
                    hint=(
                        "translators must suppress notifications for "
                        "CM-initiated writes (the echo ablation shows "
                        "what happens otherwise)"
                    ),
                )
            )


def find_cycles(graph: TriggerGraph) -> list[list[int]]:
    """Public helper: all non-trivial SCCs of the graph (tests use it)."""
    return _sccs(len(graph.nodes), graph.out_edges)


__all__ = ["check_cycles", "find_cycles"]
