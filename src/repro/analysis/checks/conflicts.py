"""Write-write conflict detection (CM5xx) — the static cousin of a race
detector.

Two strategy rules at different sites whose right-hand sides write the same
item family, with no trigger-graph path ordering one after the other, can
interleave arbitrarily at the owning site: per-channel FIFO only orders
messages on one channel, so the final value depends on network timing.  If
one rule (transitively) triggers the other, their firings are causally
ordered and the pair is fine.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.diagnostics import diagnostic
from repro.analysis.graph import Node, TriggerGraph
from repro.core.events import EventKind
from repro.core.terms import FAMILY_WILDCARD

CHECK = "write-conflicts"

_WRITE_KINDS = (EventKind.WRITE_REQUEST, EventKind.WRITE)


def _writers_by_family(graph: TriggerGraph) -> dict[str, list[Node]]:
    writers: dict[str, list[Node]] = {}
    for node in graph.strategy_nodes():
        families = {
            step.template.item_family
            for step in node.rule.steps
            if step.template.kind in _WRITE_KINDS
            and step.template.item_family
            and step.template.item_family != FAMILY_WILDCARD
        }
        for family in families:
            writers.setdefault(family, []).append(node)
    return writers


def _reachable(graph: TriggerGraph, start: int) -> set[int]:
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for edge in graph.out_edges(node):
            if edge.echo or edge.dst in seen:
                continue
            seen.add(edge.dst)
            queue.append(edge.dst)
    return seen


def check_write_conflicts(ctx, report) -> None:
    graph: TriggerGraph = ctx.graph
    reach_cache: dict[int, set[int]] = {}

    def reaches(a: int, b: int) -> bool:
        if a not in reach_cache:
            reach_cache[a] = _reachable(graph, a)
        return b in reach_cache[a]

    for family, writers in sorted(_writers_by_family(graph).items()):
        if len(writers) < 2:
            continue
        for i, first in enumerate(writers):
            for second in writers[i + 1 :]:
                if first.site == second.site:
                    # Same shell: one event queue processes both firings;
                    # their order is deterministic.
                    continue
                if reaches(first.index, second.index) or reaches(
                    second.index, first.index
                ):
                    continue
                report.add(
                    diagnostic(
                        "CM501",
                        f"rules {first.rule.name!r} (site {first.site}) "
                        f"and {second.rule.name!r} (site {second.site}) "
                        f"both write family {family!r} with no "
                        f"trigger-graph ordering between them; the final "
                        f"value depends on message timing",
                        site=first.site,
                        rule=first.rule.name,
                        check=CHECK,
                        hint=(
                            "route both writes through one owning rule, "
                            "or make one rule trigger the other"
                        ),
                    )
                )
