"""Variable safety (CM2xx): every rule variable a condition or RHS uses
must be bindable before it is needed.

The rule language resolves a lower-case name to a rule variable and an
upper-case name to a local data item.  A lower-case name that neither the
LHS template nor a binder equality binds raises ``BindingError`` at
evaluation time — which the shell treats as "condition not applicable", so
the rule silently never fires.  That is a configuration bug worth an error
at lint time.

The check also surfaces (as info) rules the compiler cannot specialize:
they run correctly on the interpreted fallback path, but a hot-path rule
set full of fallbacks loses the compiled-dispatch speedup.
"""

from __future__ import annotations

from repro.analysis.diagnostics import diagnostic
from repro.analysis.graph import guard_conjuncts
from repro.core.compile import compile_rule
from repro.core.conditions import TRUE, Expr
from repro.core.errors import CompileError
from repro.core.rules import IMPLICIT_VARIABLES, Rule

CHECK = "variable-safety"


def _lower_vars(expr: Expr) -> set[str]:
    """Names in an expression that resolve as rule variables (lower-case)."""
    return {v for v in expr.variables() if v and v[0].islower()}


def _unbound_in_rule(rule: Rule) -> list[tuple[str, set[str]]]:
    """(context description, unbound variables) pairs for one rule."""
    lhs_vars = rule.lhs.variables() | IMPLICIT_VARIABLES
    binder_vars = {name for name, __ in rule.binders}
    bound = lhs_vars | binder_vars
    problems: list[tuple[str, set[str]]] = []
    for name, expr in rule.binders:
        unbound = _lower_vars(expr) - lhs_vars
        if unbound:
            problems.append((f"binder {name} == {expr}", unbound))
    for guard in guard_conjuncts(rule):
        unbound = _lower_vars(guard) - bound
        if unbound:
            problems.append((f"condition {guard}", unbound))
    for step in rule.steps:
        if step.condition is TRUE:
            continue
        unbound = _lower_vars(step.condition) - bound
        if unbound:
            problems.append((f"step condition {step.condition}", unbound))
    return problems


def check_variable_safety(ctx, report) -> None:
    for node in ctx.graph.strategy_nodes():
        rule = node.rule
        for context, unbound in _unbound_in_rule(rule):
            report.add(
                diagnostic(
                    "CM201",
                    f"rule {rule.name!r}: {context} uses variable(s) "
                    f"{sorted(unbound)} never bound by the LHS template "
                    f"{rule.lhs} or a binder; the rule can never fire",
                    site=node.site,
                    rule=rule.name,
                    check=CHECK,
                    hint=(
                        "bind the variable on the LHS template, add a "
                        "binder conjunct (var == expr), or use an "
                        "upper-case name for a local data item"
                    ),
                )
            )
        try:
            compile_rule(rule)
        except CompileError as exc:
            report.add(
                diagnostic(
                    "CM202",
                    f"rule {rule.name!r} cannot be compiled and will run "
                    f"on the interpreted fallback path: {exc}",
                    site=node.site,
                    rule=rule.name,
                    check=CHECK,
                )
            )
