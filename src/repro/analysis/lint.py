"""CM-Lint entry points: analyze a wired manager or a single shell.

``lint_manager(cm)`` is the full analysis: it builds the static trigger
graph over every shell's installed rules plus every translator's offered
interface rules, then runs the whole check battery.  ``lint_shell(shell)``
is the reduced, single-site view used by strict installation mode — checks
needing manager-wide context (guarantee feasibility, cross-site conflict
ordering) degrade gracefully because remote rules simply are not nodes.

No events are executed and nothing is mutated; linting a configuration is
safe at any point after wiring, including mid-install.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.checks import ALL_CHECKS
from repro.analysis.diagnostics import LintReport
from repro.analysis.graph import (
    TriggerGraph,
    build_shell_graph,
    build_trigger_graph,
)
from repro.core.interfaces import InterfaceSet


@dataclass
class LintContext:
    """Everything a check may consult.  Optional fields are ``None`` when
    linting a single shell without its manager."""

    graph: TriggerGraph
    interfaces: InterfaceSet
    #: ``"manager"`` or ``"shell"`` — how much of the world is in view.
    scope: str = "manager"
    #: Families -> sites hosting a translator for them.
    translator_sites: dict[str, set[str]] = field(default_factory=dict)
    #: Families registered somewhere (translator-backed or shell-private).
    known_families: set[str] = field(default_factory=set)
    #: Shell-private families (registered, but no translator owns them).
    private_families: set[str] = field(default_factory=set)
    network: Optional[object] = None
    guarantees: list = field(default_factory=list)
    #: Dispatch shard count of the linted configuration (1 = serial).
    #: The commutativity check (CM7xx) only speaks when dispatch is
    #: sharded — parallel certification is meaningless otherwise.
    dispatch_shards: int = 1

    def family_known(self, family: str) -> bool:
        if self.scope == "shell":
            # A single shell cannot see remote registrations; only claim
            # knowledge of what is locally resolvable.
            return family in self.translator_sites or (
                family in self.known_families
            )
        return family in self.known_families

    def is_private(self, family: str) -> bool:
        return family in self.private_families

    def has_translator(self, family: str, site: str) -> bool:
        return site in self.translator_sites.get(family, ())


def _translator_map(shells) -> dict[str, set[str]]:
    sites: dict[str, set[str]] = {}
    for site, shell in shells.items():
        for family in shell.translators:
            sites.setdefault(family, set()).add(site)
    return sites


def manager_context(cm) -> LintContext:
    """The full-view lint context for a wired ConstraintManager."""
    translator_sites = _translator_map(cm.shells)
    known = set(cm.locations.families())
    private = {f for f in known if f not in translator_sites}
    guarantees = [
        guarantee
        for installed in cm.installed
        for guarantee in installed.guarantees
    ]
    return LintContext(
        graph=build_trigger_graph(cm),
        interfaces=cm.interfaces(),
        scope="manager",
        translator_sites=translator_sites,
        known_families=known,
        private_families=private,
        network=cm.scenario.network,
        guarantees=guarantees,
        dispatch_shards=getattr(cm.scenario, "dispatch_shards", 1),
    )


def shell_context(shell) -> LintContext:
    """The single-site lint context strict installation mode uses."""
    translator_sites: dict[str, set[str]] = {
        family: {shell.site} for family in shell.translators
    }
    interfaces = InterfaceSet()
    seen: set[int] = set()
    for translator in shell.translators.values():
        if id(translator) in seen:
            continue
        seen.add(id(translator))
        for spec in translator.offered_interfaces().specs:
            interfaces.add(spec)
    # Private families at shell scope: anything a local rule W-writes that
    # no translator owns is (by construction) shell-private store data.
    known = set(translator_sites)
    return LintContext(
        graph=build_shell_graph(shell),
        interfaces=interfaces,
        scope="shell",
        translator_sites=translator_sites,
        known_families=known,
        network=shell.network,
        dispatch_shards=(
            shell._sharded.shards if shell._sharded is not None else 1
        ),
    )


def run_checks(
    context: LintContext,
    suppress: tuple[str, ...] = (),
    checks=ALL_CHECKS,
) -> LintReport:
    """Run a check battery over a prepared context."""
    report = LintReport()
    for __, check in checks:
        check(context, report)
    return report.finalize(suppress)


def lint_manager(cm, *, suppress: tuple[str, ...] = ()) -> LintReport:
    """Statically analyze a fully wired ConstraintManager."""
    return run_checks(manager_context(cm), suppress)


#: Check families that are meaningful with only one shell in view.  The
#: single-site view cannot reason about remote reachability, ordering, or
#: guarantee paths, so dead-rule, conflict, and feasibility checks would
#: produce spurious findings there.
SHELL_CHECK_NAMES = (
    "interface-compliance",
    "variable-safety",
    "cycles",
    "commutativity",
)


def lint_shell(shell, *, suppress: tuple[str, ...] = ()) -> LintReport:
    """Statically analyze one CM-Shell's installed rules and interfaces."""
    checks = [
        entry for entry in ALL_CHECKS if entry[0] in SHELL_CHECK_NAMES
    ]
    return run_checks(shell_context(shell), suppress, checks)
