"""Named lint targets: every experiment and example script, wired but not
run.

Each experiment module exposes ``build_for_lint()`` returning one wired
:class:`~repro.cm.manager.ConstraintManager` (or a list of them, for
experiments that sweep configurations); example scripts expose the same
hook and are loaded by file path, since ``examples/`` is not a package.  A
module may declare ``LINT_SUPPRESS = ("CM501", "CM402:rule-name", ...)`` as
its inline allowlist — suppressed findings stay visible in the report's
``suppressed`` section rather than disappearing.
"""

from __future__ import annotations

import importlib
import importlib.util
from pathlib import Path
from typing import Optional

from repro.analysis.diagnostics import LintReport
from repro.analysis.lint import lint_manager
from repro.analysis.reporters import merge_reports
from repro.core.errors import ConfigurationError

#: Experiment lint targets, mirroring ``experiments/runner.py`` ids.
EXPERIMENT_TARGETS: dict[str, str] = {
    "e1_propagation": "repro.experiments.e1_propagation",
    "e2_polling": "repro.experiments.e2_polling",
    "e3_caching": "repro.experiments.e3_caching",
    "e4_demarcation": "repro.experiments.e4_demarcation",
    "e5_referential": "repro.experiments.e5_referential",
    "e6_monitor": "repro.experiments.e6_monitor",
    "e7_periodic": "repro.experiments.e7_periodic",
    "e8_failures": "repro.experiments.e8_failures",
    "e9_reconfig": "repro.experiments.e9_reconfig",
    "e10_scale": "repro.experiments.e10_scale",
    "e11_arithmetic": "repro.experiments.e11_arithmetic",
    "ablations": "repro.experiments.ablations",
}


def examples_dir() -> Optional[Path]:
    """The repository's ``examples/`` directory, when running from a
    checkout (absent in installed distributions)."""
    candidate = Path(__file__).resolve().parents[3] / "examples"
    if candidate.is_dir() and any(candidate.glob("*.py")):
        return candidate
    return None


def example_targets() -> dict[str, Path]:
    """Example-script lint targets keyed as ``example:<stem>``."""
    directory = examples_dir()
    if directory is None:
        return {}
    return {
        f"example:{path.stem}": path
        for path in sorted(directory.glob("*.py"))
    }


def available_targets() -> list[str]:
    """All lintable target names (experiments first, then examples)."""
    return list(EXPERIMENT_TARGETS) + list(example_targets())


def _load_example(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"repro_lint_example_{path.stem}", path
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _lint_module(module) -> LintReport:
    builder = getattr(module, "build_for_lint", None)
    if builder is None:
        raise ConfigurationError(
            f"{module.__name__} has no build_for_lint() hook"
        )
    built = builder()
    managers = built if isinstance(built, (list, tuple)) else [built]
    suppress = tuple(getattr(module, "LINT_SUPPRESS", ()))
    reports = [lint_manager(cm, suppress=suppress) for cm in managers]
    for cm in managers:
        cm.stop()  # wiring starts timers; leave nothing scheduled behind
    return merge_reports(reports)


def lint_target(name: str) -> LintReport:
    """Lint one named target."""
    if name in EXPERIMENT_TARGETS:
        module = importlib.import_module(EXPERIMENT_TARGETS[name])
        return _lint_module(module)
    examples = example_targets()
    if name in examples:
        return _lint_module(_load_example(examples[name]))
    raise ConfigurationError(
        f"unknown lint target {name!r} "
        f"(have: {', '.join(available_targets())})"
    )


def lint_all() -> dict[str, LintReport]:
    """Lint every available target."""
    return {name: lint_target(name) for name in available_targets()}
