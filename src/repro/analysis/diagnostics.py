"""Structured diagnostics for the CM-Lint static analyzer.

A :class:`Diagnostic` is one finding: a stable code (``CM101``), a severity,
a message, and provenance (site, rule, check family) plus an optional fix
hint.  Codes are stable across releases so suppression lists and CI
baselines can reference them; the registry below is the single source of
truth for what each code means (the TUTORIAL table is generated from the
same text).

Severity semantics follow the usual linter convention:

- ``error`` — the configuration is wrong: a rule can never run, will fail
  at runtime, or a promised guarantee is provably unachievable.  Strict
  installation mode and the CI lint job fail on these.
- ``warning`` — suspicious but possibly intended (dead rules, unordered
  write-write pairs, echo-prone cycles).
- ``info`` — observations useful when tuning (guarded cycles with their
  guard, compile fallbacks).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional


class Severity(Enum):
    """Diagnostic severity, orderable (error > warning > info)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


#: The stable code registry: code -> (default severity, one-line meaning).
#: Checks must use codes from this table; :func:`describe_codes` renders it
#: for the CLI and the TUTORIAL.
CODES: dict[str, tuple[Severity, str]] = {
    # interface compliance (CM1xx)
    "CM101": (
        Severity.ERROR,
        "rule issues a write request (WR) on a family whose source offers "
        "no write interface",
    ),
    "CM102": (
        Severity.ERROR,
        "rule issues a read request (RR) on a family whose source offers "
        "no read interface",
    ),
    "CM103": (
        Severity.ERROR,
        "rule triggers on a notification (N) for a family whose source "
        "offers no notify-flavoured interface",
    ),
    "CM104": (
        Severity.ERROR,
        "rule references an item family no registered source provides",
    ),
    "CM105": (
        Severity.ERROR,
        "rule writes (W) a database family directly; database items need a "
        "write request (WR)",
    ),
    # variable safety (CM2xx)
    "CM201": (
        Severity.ERROR,
        "condition uses a rule variable never bound by the LHS template or "
        "a binder equality; the rule can never fire",
    ),
    "CM202": (
        Severity.INFO,
        "rule cannot be compiled and will run on the interpreted fallback "
        "path",
    ),
    # cycles & echo (CM3xx)
    "CM301": (
        Severity.ERROR,
        "unguarded cycle in the trigger graph; the rules re-trigger each "
        "other forever",
    ),
    "CM302": (
        Severity.WARNING,
        "cycle closed only by write-notify echo; safe only while "
        "translators suppress echo notifications",
    ),
    "CM303": (
        Severity.INFO,
        "trigger-graph cycle guarded by a condition (benign while the "
        "guard converges)",
    ),
    # dead & shadowed rules (CM4xx)
    "CM401": (
        Severity.WARNING,
        "rule is unreachable from any source event or periodic timer",
    ),
    "CM402": (
        Severity.WARNING,
        "rule is shadowed by an equivalent rule that matches the same "
        "events; both fire, duplicating the right-hand side",
    ),
    # write-write conflicts (CM5xx)
    "CM501": (
        Severity.WARNING,
        "two rules at different sites write the same item family with no "
        "trigger-graph ordering between them",
    ),
    # guarantee feasibility (CM6xx)
    "CM601": (
        Severity.ERROR,
        "metric guarantee's κ is smaller than the best worst-case bound "
        "achievable along any trigger-graph path",
    ),
    "CM602": (
        Severity.WARNING,
        "metric guarantee has no trigger-graph path carrying X changes to "
        "Y writes",
    ),
    "CM603": (
        Severity.INFO,
        "metric guarantee's only delivery paths are conditionally guarded; "
        "the bound holds only when the guards fire",
    ),
    "CM604": (
        Severity.INFO,
        "a channel on the delivery path has an unbounded latency model; "
        "feasibility cannot be proven statically",
    ),
    # commutativity & parallel phases (CM7xx) — emitted only when the
    # scenario shards dispatch (parallel matching configured), since the
    # findings describe limits on parallel certification.
    "CM701": (
        Severity.WARNING,
        "two rules sharing a dispatch shard do not commute; their phase "
        "must evaluate serially",
    ),
    "CM702": (
        Severity.WARNING,
        "rule writes through a family-wildcard template; its write "
        "footprint is unbounded and forces the serial barrier phase",
    ),
    "CM703": (
        Severity.INFO,
        "effect summary derived from the rule AST alone (compile "
        "fallback); the footprint may be wider than the compiled "
        "program's",
    ),
    "CM704": (
        Severity.INFO,
        "cross-site send forces a phase barrier; network FIFO order must "
        "follow trace order",
    ),
    "CM705": (
        Severity.WARNING,
        "enumerating read spans a whole family another rule writes; the "
        "pair cannot be certified parallel",
    ),
}


def describe_codes() -> str:
    """The codes table, one line per code (CLI ``--lint --codes``)."""
    lines = []
    for code, (severity, meaning) in sorted(CODES.items()):
        lines.append(f"{code}  {severity.value:7s}  {meaning}")
    return "\n".join(lines)


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    site: Optional[str] = None
    rule: Optional[str] = None
    check: str = ""
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code: {self.code!r}")

    def __str__(self) -> str:
        where = []
        if self.site is not None:
            where.append(f"site {self.site}")
        if self.rule is not None:
            where.append(f"rule {self.rule}")
        location = f" [{', '.join(where)}]" if where else ""
        text = f"{self.code} {self.severity.value}{location}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "site": self.site,
            "rule": self.rule,
            "check": self.check,
            "hint": self.hint,
        }


def diagnostic(
    code: str,
    message: str,
    *,
    site: Optional[str] = None,
    rule: Optional[str] = None,
    check: str = "",
    hint: Optional[str] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a diagnostic with the code's registered default severity."""
    default, __ = CODES[code]
    return Diagnostic(
        code=code,
        severity=severity or default,
        message=message,
        site=site,
        rule=rule,
        check=check,
        hint=hint,
    )


@dataclass
class LintReport:
    """All findings of one analyzer run, ordered most severe first.

    ``suppressed`` holds findings removed by an allowlist entry — they are
    kept (and serialized) so a suppression is always visible, never silent.
    A suppression entry is either a bare code (``"CM501"``) or
    ``"code:rule-name"`` to scope it to one rule.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)

    def add(self, finding: Diagnostic) -> None:
        self.diagnostics.append(finding)

    def extend(self, findings: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    def finalize(self, suppress: Iterable[str] = ()) -> "LintReport":
        """Apply suppressions and sort by severity (stable within rank)."""
        allow = set(suppress)
        kept: list[Diagnostic] = []
        for finding in self.diagnostics:
            scoped = f"{finding.code}:{finding.rule}"
            if finding.code in allow or scoped in allow:
                self.suppressed.append(finding)
            else:
                kept.append(finding)
        kept.sort(key=lambda d: (-d.severity.rank, d.code))
        self.diagnostics = kept
        return self

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings and infos do not fail)."""
        return not self.errors

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    def counts(self) -> dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for finding in self.diagnostics:
            counts[finding.severity.value] += 1
        return counts

    def render(self) -> str:
        counts = self.counts()
        lines = [
            f"lint: {counts['error']} error(s), {counts['warning']} "
            f"warning(s), {counts['info']} info"
        ]
        for finding in self.diagnostics:
            lines.append(f"  {finding}")
        for finding in self.suppressed:
            lines.append(f"  suppressed: {finding}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "counts": self.counts(),
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
