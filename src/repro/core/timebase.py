"""Virtual time base for the constraint-management framework.

The paper states all interface and strategy rules with explicit delay bounds
("within delta seconds").  To make those bounds exact and the simulation fully
deterministic, the library represents time internally as **integer
microseconds** of virtual time.  The public API accepts and returns float
seconds; conversion helpers live here so no other module hand-rolls the
arithmetic.

The module also defines a few calendar helpers used by the periodic-guarantee
scenario of Section 6.4 (banking days with an update window), based on a
simulated day that starts at virtual time 0 = midnight of day 0.
"""

from __future__ import annotations

MICROSECONDS_PER_SECOND = 1_000_000
SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86_400

#: One simulated day, in ticks.
DAY = SECONDS_PER_DAY * MICROSECONDS_PER_SECOND
#: One simulated hour, in ticks.
HOUR = SECONDS_PER_HOUR * MICROSECONDS_PER_SECOND
#: One simulated minute, in ticks.
MINUTE = SECONDS_PER_MINUTE * MICROSECONDS_PER_SECOND

# A "tick" is one microsecond of virtual time.
Ticks = int


def seconds(value: float) -> Ticks:
    """Convert float seconds to integer ticks (microseconds).

    Rounds to the nearest tick, so ``seconds(0.1)`` is exactly ``100_000``.
    """
    return round(value * MICROSECONDS_PER_SECOND)


def minutes(value: float) -> Ticks:
    """Convert minutes to ticks."""
    return seconds(value * SECONDS_PER_MINUTE)


def hours(value: float) -> Ticks:
    """Convert hours to ticks."""
    return seconds(value * SECONDS_PER_HOUR)


def days(value: float) -> Ticks:
    """Convert days to ticks."""
    return seconds(value * SECONDS_PER_DAY)


def to_seconds(ticks: Ticks) -> float:
    """Convert ticks back to float seconds (for reporting)."""
    return ticks / MICROSECONDS_PER_SECOND


def time_of_day(ticks: Ticks) -> Ticks:
    """Ticks elapsed since the most recent simulated midnight."""
    return ticks % DAY


def day_number(ticks: Ticks) -> int:
    """The simulated day index containing ``ticks`` (day 0 starts at 0)."""
    return ticks // DAY


def clock_time(hour: int, minute: int = 0, second: int = 0) -> Ticks:
    """Ticks-since-midnight for a wall-clock time like 17:15.

    Used to express windows such as "no updates between 5 p.m. and 8 a.m."
    from the Section 6.4 banking scenario.
    """
    if not 0 <= hour < 24:
        raise ValueError(f"hour out of range: {hour}")
    if not 0 <= minute < 60:
        raise ValueError(f"minute out of range: {minute}")
    if not 0 <= second < 60:
        raise ValueError(f"second out of range: {second}")
    return hours(hour) + minutes(minute) + seconds(second)


def format_ticks(ticks: Ticks) -> str:
    """Human-readable rendering, e.g. ``'d1 17:15:00.250000'``."""
    day = day_number(ticks)
    rem = time_of_day(ticks)
    hour, rem = divmod(rem, HOUR)
    minute, rem = divmod(rem, MINUTE)
    second, micros = divmod(rem, MICROSECONDS_PER_SECOND)
    return f"d{day} {hour:02d}:{minute:02d}:{second:02d}.{micros:06d}"
