"""Text syntax for interface and strategy rules.

The paper writes rules as ``E1 ∧ C ->δ E2``.  The toolkit's concrete syntax
keeps that shape in ASCII::

    N(salary1(n), b) -> [5] WR(salary2(n), b)
    Ws(X, b) -> [0] FALSE
    Ws(X, a, b) & abs(b - a) > a * 0.1 -> [2] N(X, b)
    P(300) & X == b -> [0.5] N(X, b)
    N(X, b) -> [5] (Cx != b) ? WR(Y, b), W(Cx, b)

Elements:

- Event templates ``KIND(item, values...)`` with ``KIND`` one of
  ``W Ws WR RR R N P``; ``FALSE`` is the never-occurring event.
- The first argument of an item-bearing event is the data item, possibly
  parameterized (``salary1(n)``); remaining arguments are value terms:
  variables (identifiers), literals, or the wildcard ``*``.
- ``& C`` after the LHS event gives the left-hand condition.
- ``[δ]`` gives the delay bound in (float) seconds.
- The RHS is a comma-separated sequence of steps, each optionally guarded
  with ``cond ?``.
- Documents may contain several rules introduced by ``rule NAME:`` and
  ``#``-comments.

Identifiers in conditions resolve dynamically: bound rule variables first,
then local data items (Section 3.2's shell-private data such as ``Cx``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.conditions import (
    TRUE,
    Binary,
    Call,
    Expr,
    ItemRead,
    Literal,
    Name,
    Unary,
)
from repro.core.errors import DslSyntaxError
from repro.core.events import EventKind
from repro.core.items import MISSING
from repro.core.rules import RhsStep, Rule, RuleRole
from repro.core.templates import FALSE_TEMPLATE, Template, template
from repro.core.terms import WILDCARD, Const, ItemPattern, Term, Var
from repro.core.timebase import seconds

_EVENT_KINDS = {
    "W": EventKind.WRITE,
    "Ws": EventKind.SPONTANEOUS_WRITE,
    "WR": EventKind.WRITE_REQUEST,
    "RR": EventKind.READ_REQUEST,
    "R": EventKind.READ_RESPONSE,
    "N": EventKind.NOTIFY,
    "P": EventKind.PERIODIC,
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<arrow>->)
  | (?P<cmp><=|>=|==|!=|<|>)
  | (?P<number>\d+\.\d+|\d+|\.\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<sym>[()\[\],?&:*+\-/])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    line: int
    column: int


def tokenize(text: str) -> list[Token]:
    """Lex DSL text into tokens (whitespace and comments dropped)."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DslSyntaxError(
                f"unexpected character {text[pos]!r}",
                line=line,
                column=pos - line_start + 1,
            )
        kind = match.lastgroup or ""
        value = match.group()
        column = pos - line_start + 1
        pos = match.end()
        if kind == "newline":
            tokens.append(Token("newline", value, line, column))
            line += 1
            line_start = pos
            continue
        if kind in ("ws", "comment"):
            continue
        tokens.append(Token(kind, value, line, column))
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self, skip_newlines: bool = True) -> Token:
        index = self.index
        while skip_newlines and self.tokens[index].kind == "newline":
            index += 1
        return self.tokens[index]

    def advance(self, skip_newlines: bool = True) -> Token:
        while skip_newlines and self.tokens[self.index].kind == "newline":
            self.index += 1
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.advance()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise DslSyntaxError(
                f"expected {wanted!r}, found {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return token

    def accept(self, kind: str, text: str | None = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def error(self, message: str) -> DslSyntaxError:
        token = self.peek()
        return DslSyntaxError(message, line=token.line, column=token.column)

    # -- literals and terms -----------------------------------------------

    def parse_literal_value(self, token: Token):
        if token.kind == "number":
            text = token.text
            return float(text) if "." in text else int(text)
        if token.kind == "string":
            return token.text[1:-1]
        if token.kind == "ident":
            if token.text == "true":
                return True
            if token.text == "false":
                return False
            if token.text == "MISSING":
                return MISSING
        raise DslSyntaxError(
            f"expected a literal, found {token.text!r}",
            line=token.line,
            column=token.column,
        )

    def parse_term(self) -> Term:
        """A term inside an event template: var, literal, or wildcard."""
        token = self.peek()
        if token.kind == "sym" and token.text == "*":
            self.advance()
            return WILDCARD
        if token.kind == "ident" and token.text not in ("true", "false", "MISSING"):
            self.advance()
            return Var(token.text)
        if token.kind == "sym" and token.text == "-":
            self.advance()
            number = self.expect("number")
            value = self.parse_literal_value(number)
            return Const(-value)
        self.advance()
        return Const(self.parse_literal_value(token))

    def parse_item_pattern(self) -> ItemPattern:
        name = self.expect("ident").text
        args: list[Term] = []
        if self.accept("sym", "("):
            if not self.accept("sym", ")"):
                args.append(self.parse_term())
                while self.accept("sym", ","):
                    args.append(self.parse_term())
                self.expect("sym", ")")
        return ItemPattern(name, tuple(args))

    # -- event templates ---------------------------------------------------

    def parse_event(self) -> Template:
        token = self.expect("ident")
        if token.text == "FALSE":
            return FALSE_TEMPLATE
        kind = _EVENT_KINDS.get(token.text)
        if kind is None:
            raise DslSyntaxError(
                f"unknown event kind {token.text!r} "
                f"(expected one of {sorted(_EVENT_KINDS)} or FALSE)",
                line=token.line,
                column=token.column,
            )
        self.expect("sym", "(")
        if kind is EventKind.PERIODIC:
            number = self.advance()
            period_seconds = self.parse_literal_value(number)
            self.expect("sym", ")")
            return Template(kind, None, (Const(seconds(period_seconds)),))
        item = self.parse_item_pattern()
        values: list[Term] = []
        while self.accept("sym", ","):
            values.append(self.parse_term())
        self.expect("sym", ")")
        return template(kind, item, *values)

    # -- condition expressions ----------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept("ident", "or"):
            left = Binary("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept("ident", "and"):
            left = Binary("and", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept("ident", "not"):
            return Unary("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "cmp":
            self.advance()
            right = self.parse_additive()
            return Binary(token.text, left, right)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "sym" and token.text in ("+", "-"):
                self.advance()
                left = Binary(token.text, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind == "sym" and token.text in ("*", "/"):
                self.advance()
                left = Binary(token.text, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.accept("sym", "-"):
            return Unary("-", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.peek()
        if token.kind == "sym" and token.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("sym", ")")
            return inner
        if token.kind in ("number", "string"):
            self.advance()
            return Literal(self.parse_literal_value(token))
        if token.kind == "ident":
            if token.text in ("true", "false", "MISSING"):
                self.advance()
                return Literal(self.parse_literal_value(token))
            name = self.advance().text
            if self.peek(skip_newlines=False).kind == "sym" and (
                self.peek(skip_newlines=False).text == "("
            ):
                self.advance()
                args: list[Expr] = []
                if not self.accept("sym", ")"):
                    args.append(self.parse_expr())
                    while self.accept("sym", ","):
                        args.append(self.parse_expr())
                    self.expect("sym", ")")
                if name in ("abs", "exists"):
                    return Call(name, tuple(args))
                return ItemRead(ItemPattern(name, tuple(
                    self._expr_to_term(a) for a in args)))
            return Name(name)
        raise self.error(f"expected an expression, found {token.text!r}")

    def _expr_to_term(self, expr: Expr) -> Term:
        if isinstance(expr, Name):
            return Var(expr.name)
        if isinstance(expr, Literal):
            return Const(expr.value)
        raise self.error(
            "data-item arguments must be variables or literals"
        )

    # -- rules ---------------------------------------------------------------

    def parse_rule_body(self, name: str, role: RuleRole) -> Rule:
        source_start = self.peek()
        lhs = self.parse_event()
        condition: Expr = TRUE
        if self.accept("sym", "&"):
            condition = self.parse_expr()
        self.expect("arrow")
        self.expect("sym", "[")
        number = self.advance()
        delay_seconds = self.parse_literal_value(number)
        self.expect("sym", "]")
        steps: list[RhsStep] = []
        steps.append(self.parse_step())
        while self.accept("sym", ","):
            steps.append(self.parse_step())
        return Rule(
            name=name,
            lhs=lhs,
            condition=condition,
            delay=seconds(delay_seconds),
            steps=tuple(steps),
            role=role,
            source=f"line {source_start.line}",
        )

    def parse_step(self) -> RhsStep:
        # A step is either "event" or "cond ? event".  Both can start with an
        # identifier, so try an expression first and backtrack if no '?'.
        saved = self.index
        try:
            condition = self.parse_expr()
        except DslSyntaxError:
            self.index = saved
            return RhsStep(template=self.parse_event())
        if self.accept("sym", "?"):
            return RhsStep(template=self.parse_event(), condition=condition)
        self.index = saved
        return RhsStep(template=self.parse_event())

    def parse_document(self, role: RuleRole) -> list[Rule]:
        rules: list[Rule] = []
        counter = 0
        while self.peek().kind != "eof":
            if self.accept("ident", "rule"):
                name = self.expect("ident").text
                self.expect("sym", ":")
            else:
                counter += 1
                name = f"rule_{counter}"
            rules.append(self.parse_rule_body(name, role))
        return rules


def parse_rule(
    text: str, name: str = "anonymous", role: RuleRole = RuleRole.STRATEGY
) -> Rule:
    """Parse one rule body, e.g. ``"N(X, b) -> [5] WR(Y, b)"``."""
    parser = _Parser(tokenize(text))
    rule = parser.parse_rule_body(name, role)
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise DslSyntaxError(
            f"trailing input after rule: {trailing.text!r}",
            line=trailing.line,
            column=trailing.column,
        )
    return rule


def parse_rules(text: str, role: RuleRole = RuleRole.STRATEGY) -> list[Rule]:
    """Parse a document of rules, each optionally introduced by ``rule NAME:``."""
    parser = _Parser(tokenize(text))
    return parser.parse_document(role)


def parse_condition(text: str) -> Expr:
    """Parse a bare condition expression."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise DslSyntaxError(
            f"trailing input after expression: {trailing.text!r}",
            line=trailing.line,
            column=trailing.column,
        )
    return expr


def parse_event_template(text: str) -> Template:
    """Parse a bare event template, e.g. ``"N(salary1(n), b)"``."""
    parser = _Parser(tokenize(text))
    tmpl = parser.parse_event()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise DslSyntaxError(
            f"trailing input after event template: {trailing.text!r}",
            line=trailing.line,
            column=trailing.column,
        )
    return tmpl
