"""The library of proven (interfaces, strategy) -> guarantees combinations.

Section 4.1 of the paper: "During initialization, the CM-Shells query the
CM-Translators about the local capabilities and services...  The CM then
suggests strategies that are applicable to these interfaces, along with the
associated guarantees."  This module is that menu: given a declared
constraint and the interfaces actually offered for its item families, it
returns every applicable strategy from the proven library, each paired with
the guarantees the paper establishes for it (with metric bounds computed
from the offered interface bounds).

The correspondences encoded here are the paper's own results:

==================  =====================================  ============================
strategy            requires                               guarantees
==================  =====================================  ============================
propagation         src notify, dst write                  (1) follows, (2) leads*,
                                                           (3) strictly follows,
                                                           (4) metric follows
cached propagation  as propagation                         same as propagation
polling             src read, dst write                    (1), (3), (4) — **not** (2)
monitor             src+dst notify (plain items)           Flag/Tb window (Section 6.3)
eod-batch           src read + update-window, dst write    periodic copy (Section 6.4)
eod-cleanup         parent read+write, child read          referential grace (Section 6.2)
demarcation         both numeric, writable, local checks   X <= Y always (Section 6.1)
==================  =====================================  ============================

(*) leads additionally requires the notify interface to be unconditional —
a conditional notify filters updates, so values can be missed, exactly why
the paper distinguishes the two notify flavours.  The follows-family
guarantees additionally require the destination to promise "no spontaneous
writes": if local applications can scribble on the copy, no strategy can
promise it only holds source values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.constraints import (
    ArithmeticConstraint,
    Constraint,
    CopyConstraint,
    InequalityConstraint,
    ReferentialConstraint,
)
from repro.core.guarantees import (
    Guarantee,
    PeriodicCopyGuarantee,
    ReferentialGuarantee,
    follows,
    leads,
    strictly_follows,
)
from repro.core.guarantees.invariants import InvariantGuarantee
from repro.core.guarantees.monitor import MonitorGuarantee
from repro.core.interfaces import InterfaceKind, InterfaceSet
from repro.core.items import DataItemRef, Locations
from repro.core.strategies import (
    StrategySpec,
    cached_propagation,
    eod_batch,
    eod_cleanup,
    monitor,
    polling,
    propagation,
)
from repro.core.timebase import (
    Ticks,
    clock_time,
    minutes,
    seconds,
    to_seconds,
)


@dataclass
class Suggestion:
    """One applicable strategy with its proven guarantees."""

    strategy: StrategySpec
    guarantees: tuple[Guarantee, ...]
    rationale: str

    def __str__(self) -> str:
        lines = [f"{self.strategy.name}: {self.rationale}"]
        for guarantee in self.guarantees:
            lines.append(f"  guarantees {guarantee}")
        return "\n".join(lines)


@dataclass
class SuggestionContext:
    """Everything the catalog consults: offered interfaces, item locations,
    and operator options (rule delays, polling periods, app site, ...)."""

    interfaces: InterfaceSet
    locations: Locations
    options: dict[str, Any] = field(default_factory=dict)

    def option(self, key: str, default: Any) -> Any:
        """An operator option with a default."""
        return self.options.get(key, default)


#: Extra slack added to computed metric bounds: covers shell processing and
#: message transmission, which the DBA estimates in practice (Section 4.2.2).
DEFAULT_MARGIN: Ticks = seconds(1)


def suggest(constraint: Constraint, context: SuggestionContext) -> list[Suggestion]:
    """All proven strategies applicable to a constraint, best first."""
    if isinstance(constraint, CopyConstraint):
        return _suggest_copy(constraint, context)
    if isinstance(constraint, InequalityConstraint):
        return _suggest_inequality(constraint, context)
    if isinstance(constraint, ReferentialConstraint):
        return _suggest_referential(constraint, context)
    if isinstance(constraint, ArithmeticConstraint):
        return _suggest_arithmetic(constraint, context)
    return []


# -- copy constraints --------------------------------------------------------------


def _suggest_copy(
    constraint: CopyConstraint, context: SuggestionContext
) -> list[Suggestion]:
    interfaces = context.interfaces
    src, dst = constraint.src_family, constraint.dst_family
    params = constraint.params
    delay: Ticks = context.option("rule_delay", seconds(1))
    suggestions: list[Suggestion] = []

    dst_writable = interfaces.has(dst, InterfaceKind.WRITE)
    dst_quiet = interfaces.has(dst, InterfaceKind.NO_SPONTANEOUS_WRITE)
    src_notifies = interfaces.has(src, InterfaceKind.NOTIFY)
    src_notifies_conditionally = interfaces.has(
        src, InterfaceKind.CONDITIONAL_NOTIFY
    )
    src_readable = interfaces.has(src, InterfaceKind.READ)

    if (src_notifies or src_notifies_conditionally) and dst_writable:
        notify_kind = (
            InterfaceKind.NOTIFY
            if src_notifies
            else InterfaceKind.CONDITIONAL_NOTIFY
        )
        kappa = (
            interfaces.bound(src, notify_kind)
            + delay
            + interfaces.bound(dst, InterfaceKind.WRITE)
            + DEFAULT_MARGIN
        )
        guarantees: list[Guarantee] = []
        if dst_quiet:
            guarantees.append(follows(src, dst))
            guarantees.append(strictly_follows(src, dst))
            if src_notifies:
                # A *conditional* notify can filter updates, leaving the
                # copy holding a stale value for arbitrarily long — so the
                # metric bound (4) is only sound for unconditional notify,
                # and so is leads (2).
                guarantees.append(
                    follows(src, dst, within_seconds=to_seconds(kappa))
                )
                guarantees.append(
                    leads(src, dst, horizon_slack_seconds=to_seconds(kappa))
                )
        rationale = (
            "source pushes notifications and destination accepts writes"
            + ("" if dst_quiet else
               " (no follows-family guarantees: the destination admits "
               "spontaneous writes)")
            + ("" if src_notifies else
               " (no leads or metric guarantee: the notify interface is "
               "conditional, so updates can be filtered and copies can stay "
               "stale)")
        )
        suggestions.append(
            Suggestion(
                propagation(src, dst, delay, params),
                tuple(guarantees),
                rationale,
            )
        )
        dst_site = context.locations.site_of(dst)
        suggestions.append(
            Suggestion(
                cached_propagation(src, dst, delay, params, dst_site=dst_site),
                tuple(guarantees),
                rationale + "; cache suppresses redundant write requests",
            )
        )

    if (
        interfaces.has(src, InterfaceKind.PERIODIC_NOTIFY)
        and dst_writable
        and not (src_notifies or src_notifies_conditionally)
    ):
        spec = interfaces.get(src, InterfaceKind.PERIODIC_NOTIFY)
        assert spec.period is not None
        kappa = (
            spec.period
            + spec.bound
            + delay
            + interfaces.bound(dst, InterfaceKind.WRITE)
            + DEFAULT_MARGIN
        )
        guarantees = []
        if dst_quiet:
            guarantees.extend(
                (
                    follows(src, dst),
                    strictly_follows(src, dst),
                    follows(src, dst, within_seconds=to_seconds(kappa)),
                )
            )
        suggestions.append(
            Suggestion(
                propagation(src, dst, delay, params),
                tuple(guarantees),
                "the source pushes its current value periodically "
                "(server-side polling): updates inside one period can be "
                "missed, so the leads guarantee (2) is NOT offered",
            )
        )

    if src_readable and dst_writable:
        period: Ticks = context.option("polling_period", seconds(60))
        # Polling chains two rule firings (P -> RR, then R -> WR), so the
        # worst case charges the rule delay twice; the margin absorbs
        # clock skew and the cross-site request hop.
        kappa = (
            period
            + delay
            + interfaces.bound(src, InterfaceKind.READ)
            + delay
            + interfaces.bound(dst, InterfaceKind.WRITE)
            + DEFAULT_MARGIN
        )
        guarantees = []
        if dst_quiet:
            guarantees.extend(
                (
                    follows(src, dst),
                    strictly_follows(src, dst),
                    follows(src, dst, within_seconds=to_seconds(kappa)),
                )
            )
        suggestions.append(
            Suggestion(
                polling(src, dst, period, delay, params),
                tuple(guarantees),
                "source is readable; polling misses updates that share a "
                "polling interval, so the leads guarantee (2) is NOT offered",
            )
        )

    if (
        src_readable
        and dst_writable
        and interfaces.has(src, InterfaceKind.UPDATE_WINDOW)
    ):
        window = interfaces.get(src, InterfaceKind.UPDATE_WINDOW)
        assert window.window_start is not None and window.window_end is not None
        fire_at: Ticks = context.option("eod_fire_at", window.window_start)
        settle: Ticks = context.option("eod_settle", minutes(15))
        suggestions.append(
            Suggestion(
                eod_batch(src, dst, fire_at, delay, params),
                (
                    PeriodicCopyGuarantee(
                        src, dst, fire_at + settle, window.window_end
                    ),
                ),
                "source promises a daily no-update window; one batch "
                "propagation per day yields a periodic guarantee",
            )
        )

    if (
        not params
        and (src_notifies or src_notifies_conditionally)
        and (
            interfaces.has(dst, InterfaceKind.NOTIFY)
            or interfaces.has(dst, InterfaceKind.CONDITIONAL_NOTIFY)
        )
        and not dst_writable
    ):
        suggestions.append(_monitor_suggestion(constraint, context, delay))

    return suggestions


def _monitor_suggestion(
    constraint: CopyConstraint, context: SuggestionContext, delay: Ticks
) -> Suggestion:
    interfaces = context.interfaces
    src, dst = constraint.src_family, constraint.dst_family
    app_site: str = context.option(
        "app_site", context.locations.site_of(dst)
    )
    strategy = monitor(src, dst, app_site, delay)

    def notify_bound(family: str) -> Ticks:
        if interfaces.has(family, InterfaceKind.NOTIFY):
            return interfaces.bound(family, InterfaceKind.NOTIFY)
        return interfaces.bound(family, InterfaceKind.CONDITIONAL_NOTIFY)

    kappa = (
        max(notify_bound(src), notify_bound(dst)) + delay + DEFAULT_MARGIN
    )
    guarantee = MonitorGuarantee(
        DataItemRef(src),
        DataItemRef(dst),
        DataItemRef(strategy.metadata["flag_family"]),
        DataItemRef(strategy.metadata["tb_family"]),
        kappa,
    )
    return Suggestion(
        strategy,
        (guarantee,),
        "neither item is writable by the CM; the constraint can only be "
        "monitored via Flag/Tb auxiliary data",
    )


# -- inequality constraints ------------------------------------------------------------


def _suggest_inequality(
    constraint: InequalityConstraint, context: SuggestionContext
) -> list[Suggestion]:
    from repro.protocols.demarcation import SlackPolicy

    x_family, y_family = constraint.x_family, constraint.y_family
    x_ref, y_ref = DataItemRef(x_family), DataItemRef(y_family)
    policy = context.option("demarcation_policy", SlackPolicy.SPLIT)
    strategy = StrategySpec(
        name=f"demarcation({x_family} <= {y_family})",
        kind="demarcation",
        description=(
            "maintain local limits with safe-first limit-change handshakes"
        ),
        executor="native",
        metadata={"policy": policy},
    )
    limit_x = DataItemRef(f"Limit_{x_family}")
    limit_y = DataItemRef(f"Limit_{y_family}")
    guarantees: tuple[Guarantee, ...] = (
        InvariantGuarantee(
            f"{x_family} <= {y_family} always",
            [x_ref, y_ref],
            lambda state: state[x_ref] <= state[y_ref],
            f"({x_family} <= {y_family})@t for all t",
        ),
        InvariantGuarantee(
            f"Limit_{x_family} <= Limit_{y_family} always",
            [limit_x, limit_y],
            lambda state: state[limit_x] <= state[limit_y],
            f"(Limit_{x_family} <= Limit_{y_family})@t for all t",
        ),
    )
    return [
        Suggestion(
            strategy,
            guarantees,
            "both items are numeric and locally constrainable; the "
            "Demarcation Protocol keeps the inequality valid at all times",
        )
    ]


# -- arithmetic constraints ---------------------------------------------------------------


def _suggest_arithmetic(
    constraint: ArithmeticConstraint, context: SuggestionContext
) -> list[Suggestion]:
    """The Section 7.1 decomposition: caches + local recompute.

    Requires every operand to push notifications and the target to accept
    writes.  Guarantees: per-operand follows/leads onto the caches, plus the
    derived sum-follows on the target.
    """
    from repro.core.guarantees.arithmetic import SumFollowsGuarantee
    from repro.core.strategies import arithmetic_maintenance

    interfaces = context.interfaces
    target = constraint.target_family
    operands = constraint.operand_families
    if not interfaces.has(target, InterfaceKind.WRITE):
        return []
    delay: Ticks = context.option("rule_delay", seconds(1))
    target_site = context.locations.site_of(target)
    all_notify = all(
        interfaces.has(op, InterfaceKind.NOTIFY) for op in operands
    )
    all_read = all(
        interfaces.has(op, InterfaceKind.READ) for op in operands
    )
    suggestions: list[Suggestion] = []

    def cache_and_sum_guarantees(
        caches, include_leads: bool, cache_kappa_of
    ) -> list[Guarantee]:
        guarantees: list[Guarantee] = []
        for operand, cache in zip(operands, caches):
            guarantees.append(follows(operand, cache))
            if include_leads:
                guarantees.append(
                    leads(
                        operand,
                        cache,
                        horizon_slack_seconds=to_seconds(
                            cache_kappa_of(operand)
                        ),
                    )
                )
        sum_kappa = (
            delay
            + interfaces.bound(target, InterfaceKind.WRITE)
            + DEFAULT_MARGIN
        )
        guarantees.append(
            SumFollowsGuarantee(
                DataItemRef(target),
                [DataItemRef(cache) for cache in caches],
                sum_kappa,
            )
        )
        return guarantees

    if all_notify:
        strategy = arithmetic_maintenance(
            target, operands, target_site, delay
        )
        caches = strategy.metadata["cache_families"]
        guarantees = cache_and_sum_guarantees(
            caches,
            include_leads=True,
            cache_kappa_of=lambda op: (
                interfaces.bound(op, InterfaceKind.NOTIFY)
                + delay
                + DEFAULT_MARGIN
            ),
        )
        suggestions.append(
            Suggestion(
                strategy,
                tuple(guarantees),
                "operands push notifications and the target accepts writes; "
                "the constraint decomposes into cache copies plus a local "
                "recompute (Section 7.1)",
            )
        )
    if all_read:
        period: Ticks = context.option("polling_period", seconds(60))
        strategy = arithmetic_maintenance(
            target, operands, target_site, delay,
            transport="poll", period=period,
        )
        caches = strategy.metadata["cache_families"]
        guarantees = cache_and_sum_guarantees(
            caches, include_leads=False, cache_kappa_of=lambda op: 0
        )
        suggestions.append(
            Suggestion(
                strategy,
                tuple(guarantees),
                "operands are readable; caches are refreshed by polling "
                "(operand values can be missed, so no per-cache leads "
                "guarantee)",
            )
        )
    return suggestions


# -- referential constraints --------------------------------------------------------------


def _suggest_referential(
    constraint: ReferentialConstraint, context: SuggestionContext
) -> list[Suggestion]:
    interfaces = context.interfaces
    parent, child = constraint.parent_family, constraint.child_family
    suggestions: list[Suggestion] = []
    delay: Ticks = context.option("rule_delay", seconds(1))
    fire_at: Ticks = context.option("cleanup_fire_at", clock_time(23, 0))
    parent_manageable = interfaces.has(parent, InterfaceKind.READ) and (
        interfaces.has(parent, InterfaceKind.WRITE)
    )
    child_readable = interfaces.has(child, InterfaceKind.READ)
    if parent_manageable and child_readable:
        from repro.core.timebase import days

        grace = constraint.grace + minutes(30)  # cleanup-run margin
        suggestions.append(
            Suggestion(
                eod_cleanup(parent, child, fire_at, delay),
                (ReferentialGuarantee(parent, child, grace),),
                "the parent database permits deletions, so orphan parents "
                "are removed by a daily cleanup (Section 6.2)",
            )
        )
    return suggestions
