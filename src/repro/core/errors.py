"""Exception taxonomy for the constraint-management library.

Raw-information-source errors (the errno-like codes translators classify into
metric/logical failures, Section 5 of the paper) live in
:mod:`repro.ris.base`; everything framework-level is defined here.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SpecError(ReproError):
    """An interface, strategy, or guarantee specification is malformed."""


class DslSyntaxError(SpecError):
    """The rule/guarantee DSL text failed to parse.

    Carries the offending position so callers can point at the source.
    """

    def __init__(self, message: str, *, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class CompileError(ReproError):
    """A rule could not be compiled into an executable program.

    Raised by :func:`repro.core.compile.compile_rule` for expression or
    template shapes the compiler does not specialize.  Callers (the
    CM-Shell's ``install``) treat it as "fall back to the tree-walking
    reference evaluator", never as a hard failure.
    """


class BindingError(ReproError):
    """A rule fired with unbound right-hand-side variables, or a template
    was instantiated with an incomplete interpretation."""


class ConfigurationError(ReproError):
    """The toolkit was wired up inconsistently (unknown site, duplicate
    item registration, strategy referencing an item with no interface, ...)."""


class UnsupportedOperationError(ConfigurationError):
    """A strategy requires a CM-Interface operation the translator for the
    underlying source does not provide (e.g. writing a read-only source)."""


class TraceError(ReproError):
    """An execution trace violates the valid-execution properties of
    Appendix A.2, or was queried inconsistently."""


class CheckError(ReproError):
    """The guarantee checker was given a formula it cannot evaluate."""
