"""Events: the six-tuples of Appendix A.1.

An event is ``(time, desc, old, new, rule, trigger)`` plus, in this
implementation, a globally unique sequence number and the site at which the
event occurs (each event has a unique site, Section 3.2).

Event *descriptors* name what happened.  The descriptor set from the paper:

==========  =====================================================
``W``       the database performs the write ``X <- b`` (generated)
``Ws``      an application writes ``X`` spontaneously: ``X: a -> b``
``WR``      the database receives a CM write request for ``X <- b``
``RR``      the database receives a CM read request for ``X``
``R``       the CM receives the read response ``X = b``
``N``       the CM receives a notification of ``X <- b``
``P``       a periodic event with period ``p`` (occurs by definition)
``F``       the false event — never occurs (used in templates only)
==========  =====================================================

Spontaneous events (``Ws``, and ``P`` which occurs by definition) have null
``rule``/``trigger``; generated events carry the rule whose firing produced
them and the event that triggered the rule (valid-execution properties 4-5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional

from repro.core.interpretations import Interpretation
from repro.core.items import DataItemRef, Value
from repro.core.timebase import Ticks, format_ticks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.rules import Rule


class EventKind(Enum):
    """The descriptor vocabulary of the rule language."""

    WRITE = "W"
    SPONTANEOUS_WRITE = "Ws"
    WRITE_REQUEST = "WR"
    READ_REQUEST = "RR"
    READ_RESPONSE = "R"
    NOTIFY = "N"
    PERIODIC = "P"
    FALSE = "F"

    @property
    def is_write(self) -> bool:
        """Kinds that change the value of a data item."""
        return self in (EventKind.WRITE, EventKind.SPONTANEOUS_WRITE)

    @property
    def value_arity(self) -> int:
        """Number of value components after the item argument."""
        return _VALUE_ARITY[self]

    @property
    def takes_item(self) -> bool:
        """Whether the descriptor's first argument is a data item."""
        return self not in (EventKind.PERIODIC, EventKind.FALSE)


_VALUE_ARITY = {
    EventKind.WRITE: 1,
    EventKind.SPONTANEOUS_WRITE: 2,  # (old, new); template shorthand Ws(X, b)
    EventKind.WRITE_REQUEST: 1,
    EventKind.READ_REQUEST: 0,
    EventKind.READ_RESPONSE: 1,
    EventKind.NOTIFY: 1,
    EventKind.PERIODIC: 1,  # the period p
    EventKind.FALSE: 0,
}


@dataclass(frozen=True)
class EventDesc:
    """A ground event descriptor, e.g. ``N(salary1('e042'), 95000)``."""

    kind: EventKind
    item: Optional[DataItemRef]
    values: tuple[Value, ...] = ()

    def __post_init__(self) -> None:
        if self.kind.takes_item and self.item is None:
            raise ValueError(f"{self.kind.value} descriptor requires an item")
        if not self.kind.takes_item and self.item is not None:
            raise ValueError(f"{self.kind.value} descriptor takes no item")
        if len(self.values) != self.kind.value_arity:
            raise ValueError(
                f"{self.kind.value} takes {self.kind.value_arity} value(s), "
                f"got {len(self.values)}"
            )

    def __str__(self) -> str:
        parts: list[str] = []
        if self.item is not None:
            parts.append(str(self.item))
        parts.extend(repr(v) for v in self.values)
        return f"{self.kind.value}({', '.join(parts)})"


def write_desc(ref: DataItemRef, value: Value) -> EventDesc:
    """``W(X, b)`` — the database performs ``X <- b``."""
    return EventDesc(EventKind.WRITE, ref, (value,))


def spontaneous_write_desc(
    ref: DataItemRef, old_value: Value, new_value: Value
) -> EventDesc:
    """``Ws(X, a, b)`` — an application updates ``X`` from ``a`` to ``b``."""
    return EventDesc(EventKind.SPONTANEOUS_WRITE, ref, (old_value, new_value))


def write_request_desc(ref: DataItemRef, value: Value) -> EventDesc:
    """``WR(X, b)`` — the CM requests the write ``X <- b``."""
    return EventDesc(EventKind.WRITE_REQUEST, ref, (value,))


def read_request_desc(ref: DataItemRef) -> EventDesc:
    """``RR(X)`` — the CM requests a read of ``X``."""
    return EventDesc(EventKind.READ_REQUEST, ref, ())


def read_response_desc(ref: DataItemRef, value: Value) -> EventDesc:
    """``R(X, b)`` — the CM receives the read response ``X = b``."""
    return EventDesc(EventKind.READ_RESPONSE, ref, (value,))


def notify_desc(ref: DataItemRef, value: Value) -> EventDesc:
    """``N(X, b)`` — the CM is notified of the update ``X <- b``."""
    return EventDesc(EventKind.NOTIFY, ref, (value,))


def periodic_desc(period: Ticks) -> EventDesc:
    """``P(p)`` — the periodic event with period ``p`` ticks."""
    return EventDesc(EventKind.PERIODIC, None, (period,))


_event_seq = itertools.count(1)


def reset_event_sequence() -> None:
    """Reset the global event numbering (used between test scenarios)."""
    global _event_seq
    _event_seq = itertools.count(1)


def reserve_event_seqs(count: int) -> int:
    """Reserve ``count`` consecutive sequence numbers; return the first.

    Batched trace recording claims numbering for a whole block up front so
    the per-event ``next(_event_seq)`` call (and the default-factory hop
    into it) drops out of the hot loop, while events materialized lazily
    later still get exactly the numbers a sequential recording would have
    assigned.
    """
    global _event_seq
    first = next(_event_seq)
    _event_seq = itertools.count(first + count)
    return first


@dataclass(frozen=True)
class Event:
    """One occurrence: the Appendix A six-tuple plus sequence number and site.

    ``old``/``new`` are interpretations over the constraint-relevant items;
    for write events they differ exactly on the written item.  ``rule`` and
    ``trigger`` are null for spontaneous events.
    """

    time: Ticks
    site: str
    desc: EventDesc
    old: Interpretation
    new: Interpretation
    rule: Optional["Rule"] = None
    trigger: Optional["Event"] = None
    seq: int = field(default_factory=lambda: next(_event_seq))

    @property
    def is_spontaneous(self) -> bool:
        """Spontaneous events have no generating rule (Appendix A property 4)."""
        return self.rule is None

    @property
    def written_value(self) -> Value:
        """The value written, for ``W``/``Ws`` descriptors."""
        if self.desc.kind is EventKind.WRITE:
            return self.desc.values[0]
        if self.desc.kind is EventKind.SPONTANEOUS_WRITE:
            return self.desc.values[1]
        raise ValueError(f"not a write event: {self.desc}")

    def __str__(self) -> str:
        return f"[{format_ticks(self.time)} @{self.site}] {self.desc}"
